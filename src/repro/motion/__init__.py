"""SIXDOF-like rigid-body dynamics and prescribed motions.

Step (2) of the paper's per-timestep loop: "move grid components
associated with moving bodies subject to applied and aerodynamic loads
(or according to a prescribed path)".  The paper's SIXDOF model [4]
integrates the rigid-body equations from aerodynamic loads; all three
test cases can equally use prescribed paths (the store case does, "with
negligible change in the parallel performance").

* :mod:`rigid` — rigid-body state with quaternion attitude;
* :mod:`sixdof` — RK4 integration of forces/moments into motion;
* :mod:`prescribed` — the paper's three motions: sinusoidal pitch
  (airfoil), slow descent (delta wing), and a store-separation
  trajectory (gravity drop + pitch-away).
"""

from repro.motion.rigid import RigidBodyState, Quaternion
from repro.motion.sixdof import SixDof, Loads
from repro.motion.prescribed import (
    PitchOscillation,
    SixDofMotion,
    SteadyDescent,
    StoreSeparation,
    PrescribedMotion,
)

__all__ = [
    "RigidBodyState",
    "Quaternion",
    "SixDof",
    "Loads",
    "PitchOscillation",
    "SixDofMotion",
    "SteadyDescent",
    "StoreSeparation",
    "PrescribedMotion",
]
