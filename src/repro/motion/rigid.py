"""Rigid-body state with quaternion attitude.

The 6-DOF state is (position, velocity, attitude quaternion, body
angular rates).  Quaternions avoid gimbal lock for arbitrary store
tumbling and compose cheaply into the :class:`repro.grids.RigidMotion`
transforms the grid system consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grids.motion import RigidMotion


class Quaternion:
    """Unit quaternion (scalar-first convention)."""

    __slots__ = ("q",)

    def __init__(self, w: float, x: float, y: float, z: float):
        self.q = np.array([w, x, y, z], dtype=float)

    @classmethod
    def identity(cls) -> "Quaternion":
        return cls(1.0, 0.0, 0.0, 0.0)

    @classmethod
    def from_axis_angle(cls, axis, angle: float) -> "Quaternion":
        a = np.asarray(axis, dtype=float)
        norm = np.linalg.norm(a)
        if norm == 0:
            raise ValueError("axis must be nonzero")
        a = a / norm
        half = 0.5 * angle
        s = np.sin(half)
        return cls(np.cos(half), a[0] * s, a[1] * s, a[2] * s)

    def normalized(self) -> "Quaternion":
        n = np.linalg.norm(self.q)
        if n == 0:
            raise ValueError("zero quaternion")
        out = Quaternion(*(self.q / n))
        return out

    def multiply(self, other: "Quaternion") -> "Quaternion":
        w1, x1, y1, z1 = self.q
        w2, x2, y2, z2 = other.q
        return Quaternion(
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        )

    def rotation_matrix(self) -> np.ndarray:
        w, x, y, z = self.normalized().q
        return np.array(
            [
                [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
                [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
                [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
            ]
        )

    def derivative(self, omega_body: np.ndarray) -> np.ndarray:
        """dq/dt for body angular rates omega (rad/s)."""
        w, x, y, z = self.q
        p, q_, r = omega_body
        return 0.5 * np.array(
            [
                -x * p - y * q_ - z * r,
                w * p + y * r - z * q_,
                w * q_ + z * p - x * r,
                w * r + x * q_ - y * p,
            ]
        )

    def __repr__(self) -> str:
        return f"Quaternion({', '.join(f'{v:.6g}' for v in self.q)})"


@dataclass
class RigidBodyState:
    """Instantaneous 6-DOF state (3-D; 2-D bodies use the z-rotation)."""

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    attitude: Quaternion = field(default_factory=Quaternion.identity)
    omega_body: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def motion_from_reference(self, ndim: int = 3) -> RigidMotion:
        """Rigid transform taking reference-pose grid coordinates to the
        current pose (rotation about the body origin, then translation)."""
        R3 = self.attitude.rotation_matrix()
        if ndim == 3:
            return RigidMotion(R3, self.position.copy())
        return RigidMotion(R3[:2, :2], self.position[:2].copy())

    def copy(self) -> "RigidBodyState":
        return RigidBodyState(
            self.position.copy(),
            self.velocity.copy(),
            Quaternion(*self.attitude.q),
            self.omega_body.copy(),
        )
