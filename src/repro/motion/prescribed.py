"""Prescribed grid motions for the paper's three test cases.

* :class:`PitchOscillation` — the 2-D oscillating airfoil (section
  4.1): alpha(t) = alpha0 * sin(omega * t) about a pitch axis;
* :class:`SteadyDescent` — the descending delta wing (section 4.2):
  the wing system translates at a slow constant velocity (M = 0.064)
  relative to the background;
* :class:`StoreSeparation` — the wing/pylon/finned-store case (section
  4.3): "the motion of the store is specified in this case rather than
  computed from the aerodynamic forces" — a gravity drop with nose-down
  pitch-away, matching a Mach 1.6 ejection qualitatively.

Every motion maps time to a :class:`repro.grids.RigidMotion` applied to
the body's reference (t = 0) grid coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grids.motion import RigidMotion


class PrescribedMotion:
    """Base class: subclasses implement :meth:`at`."""

    def at(self, t: float) -> RigidMotion:  # pragma: no cover - interface
        raise NotImplementedError

    def displacement_rate(self, t: float, dt: float) -> float:
        """Largest pointwise displacement per ``dt`` near the origin —
        used by tests to confirm donors move less than ~one cell/step."""
        a = self.at(t)
        b = self.at(t + dt)
        probe = np.eye(a.ndim)
        return float(np.abs(b.apply(probe) - a.apply(probe)).max())


@dataclass
class PitchOscillation(PrescribedMotion):
    """alpha(t) = alpha0 sin(omega t) about ``center`` (2-D).

    Paper values: alpha0 = 5 deg, omega = pi/2.
    """

    alpha0: float = np.deg2rad(5.0)
    omega: float = np.pi / 2.0
    center: tuple = (0.25, 0.0)

    def alpha(self, t: float) -> float:
        return self.alpha0 * np.sin(self.omega * t)

    def at(self, t: float) -> RigidMotion:
        return RigidMotion.rotation2d(self.alpha(t), center=self.center)


@dataclass
class SteadyDescent(PrescribedMotion):
    """Constant-velocity translation (any dimension)."""

    velocity: tuple = (0.0, -0.064, 0.0)

    def at(self, t: float) -> RigidMotion:
        v = np.asarray(self.velocity, dtype=float)
        return RigidMotion.translation_of(v * t)


class SixDofMotion(PrescribedMotion):
    """Free motion: a 6-DOF body integrated on demand.

    Adapts :class:`repro.motion.sixdof.SixDof` to the prescribed-motion
    interface the drivers consume — the paper notes "the free motion can
    be computed with negligible change in the parallel performance", and
    this adapter is how the store case exercises that claim.  States are
    integrated with a fixed internal step and cached; ``at(t)`` uses the
    last state at or before ``t`` (loads are step-frozen anyway).
    """

    def __init__(self, body, loads_fn, internal_dt: float = 0.01, ndim: int = 3):
        if internal_dt <= 0:
            raise ValueError("internal_dt must be positive")
        self.body = body
        self.loads_fn = loads_fn
        self.internal_dt = internal_dt
        self.ndim = ndim
        self._states = [body.state.copy()]  # state at k * internal_dt

    def _integrate_to(self, t: float) -> None:
        needed = int(np.floor(t / self.internal_dt + 1e-12))
        while len(self._states) <= needed:
            k = len(self._states) - 1
            self.body.state = self._states[-1].copy()
            loads = self.loads_fn(self.body.state, k * self.internal_dt)
            self.body.step(loads, self.internal_dt)
            self._states.append(self.body.state.copy())

    def at(self, t: float) -> RigidMotion:
        if t < 0:
            raise ValueError("t must be >= 0")
        self._integrate_to(t)
        k = int(np.floor(t / self.internal_dt + 1e-12))
        return self._states[k].motion_from_reference(self.ndim)


@dataclass
class StoreSeparation(PrescribedMotion):
    """Store ejection: downward drop accelerating under gravity plus a
    nose-down pitch rate, 3-D, about the store reference point."""

    eject_velocity: float = 0.1   # initial downward speed
    gravity: float = 0.05         # nondimensional g
    pitch_rate: float = 0.02      # rad per unit time, nose down
    max_pitch: float = np.deg2rad(20.0)
    center: tuple = (0.5, 0.0, 0.0)
    drop_axis: int = 1            # -y is "down"

    def at(self, t: float) -> RigidMotion:
        drop = self.eject_velocity * t + 0.5 * self.gravity * t * t
        trans = np.zeros(3)
        trans[self.drop_axis] = -drop
        # Positive z-rotation lowers points ahead (-x) of the pivot:
        # nose-down for a store whose nose sits at smaller x.
        pitch = min(self.pitch_rate * t, self.max_pitch)
        rot = RigidMotion.rotation3d((0.0, 0.0, 1.0), pitch, center=self.center)
        return rot.then(RigidMotion.translation_of(trans))
