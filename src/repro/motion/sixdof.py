"""Six-degree-of-freedom rigid-body integrator.

Integrates Newton-Euler equations with RK4: translational dynamics in
the inertial frame, rotational dynamics in the body frame with a
diagonal inertia tensor (adequate for the near-axisymmetric store
bodies of the paper's cases).  Loads (forces, moments, e.g. from
:meth:`repro.solver.solver2d.Solver2D.surface_forces` plus gravity and
ejector forces) are supplied by a callback evaluated at the step start
and held constant across the step — the loose flow/motion coupling the
paper's first-order-in-time scheme implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.motion.rigid import Quaternion, RigidBodyState


@dataclass
class Loads:
    """Forces (inertial frame) and moments (body frame) on a body."""

    force: np.ndarray = field(default_factory=lambda: np.zeros(3))
    moment: np.ndarray = field(default_factory=lambda: np.zeros(3))


class SixDof:
    """RK4 rigid-body integrator with constant loads per step."""

    def __init__(
        self,
        mass: float,
        inertia: np.ndarray | float,
        state: RigidBodyState | None = None,
    ):
        if mass <= 0:
            raise ValueError(f"mass must be positive, got {mass}")
        self.mass = float(mass)
        inertia = np.asarray(inertia, dtype=float)
        if inertia.ndim == 0:
            inertia = np.full(3, float(inertia))
        if inertia.shape != (3,) or np.any(inertia <= 0):
            raise ValueError("inertia must be 3 positive principal values")
        self.inertia = inertia
        self.state = state if state is not None else RigidBodyState()

    # ------------------------------------------------------------------

    def step(self, loads: Loads, dt: float) -> RigidBodyState:
        """Advance the state by ``dt`` under constant ``loads``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        s = self.state
        y = self._pack(s)

        def rhs(yv: np.ndarray) -> np.ndarray:
            pos, vel, q, om = self._unpack(yv)
            acc = loads.force / self.mass
            # Euler's equations with diagonal inertia.
            Ix, Iy, Iz = self.inertia
            p, q_, r = om
            dom = np.array(
                [
                    (loads.moment[0] - (Iz - Iy) * q_ * r) / Ix,
                    (loads.moment[1] - (Ix - Iz) * r * p) / Iy,
                    (loads.moment[2] - (Iy - Ix) * p * q_) / Iz,
                ]
            )
            dq = Quaternion(*q).derivative(om)
            return np.concatenate([vel, acc, dq, dom])

        k1 = rhs(y)
        k2 = rhs(y + 0.5 * dt * k1)
        k3 = rhs(y + 0.5 * dt * k2)
        k4 = rhs(y + dt * k3)
        ynew = y + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        pos, vel, q, om = self._unpack(ynew)
        self.state = RigidBodyState(
            pos, vel, Quaternion(*q).normalized(), om
        )
        return self.state

    # ------------------------------------------------------------------

    @staticmethod
    def _pack(s: RigidBodyState) -> np.ndarray:
        return np.concatenate(
            [s.position, s.velocity, s.attitude.q, s.omega_body]
        )

    @staticmethod
    def _unpack(y: np.ndarray):
        return y[0:3], y[3:6], y[6:10], y[10:13]

    def run(
        self,
        loads_fn: Callable[[RigidBodyState, float], Loads],
        dt: float,
        nsteps: int,
    ) -> list[RigidBodyState]:
        """Integrate ``nsteps`` with state/time-dependent loads; returns
        the trajectory (one state per step)."""
        t = 0.0
        out = []
        for _ in range(nsteps):
            self.step(loads_fn(self.state, t), dt)
            t += dt
            out.append(self.state.copy())
        return out
