"""Algorithm 2: the dynamic load balance scheme (paper section 3.0).

After a specified number of timesteps the driver measures I(p), the
number of inter-grid boundary points *received for search* on each
processor — the donor-search service load.  With Ibar the global
average, any processor with f(p) = I(p)/Ibar > f0 marks its component
grid for one extra processor, and the static routine is re-run with
those counts enforced as minimums.

``f0`` semantics (paper): f0 ~ infinity keeps the static partition (the
flow solution stays optimal); f0 ~ 1 keeps re-optimising for the
connectivity solution at the flow solver's expense.  The best value is
problem dependent (the paper uses f0 = 5 for the store-separation case,
where the worst observed imbalance was f(p) ~ 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs.rollup import IgbpRollup
from repro.partition.assignment import Partition, build_partition
from repro.partition.static_lb import static_balance


def dynamic_rebalance(
    partition: Partition,
    igbp_received: np.ndarray | IgbpRollup,
    f0: float,
) -> Partition | None:
    """One application of Algorithm 2.

    Parameters
    ----------
    partition:
        The current (static) partition.
    igbp_received:
        I(p): per-rank counts of non-local IGBPs received in search
        requests since the last check — either a raw array or an
        :class:`repro.obs.rollup.IgbpRollup` (the driver's tracing
        rollup), whose accumulated window is used.
    f0:
        User load-balance factor.  ``math.inf`` disables rebalancing.

    Returns
    -------
    A new :class:`Partition`, or ``None`` when no processor exceeds f0
    (or rebalancing is impossible, e.g. no processors to spare).
    """
    if isinstance(igbp_received, IgbpRollup):
        igbp_received = igbp_received.accumulated()
    igbp_received = np.asarray(igbp_received, dtype=float)
    if igbp_received.shape != (partition.nprocs,):
        raise ValueError(
            f"I(p) must have one entry per rank "
            f"({partition.nprocs}), got {igbp_received.shape}"
        )
    if math.isinf(f0):
        return None
    if f0 <= 0:
        raise ValueError(f"f0 must be positive, got {f0}")
    ibar = igbp_received.mean()
    if ibar == 0:
        return None

    f = igbp_received / ibar
    # np(n) condition: +1 processor for every overloaded processor's grid.
    increments = [0] * partition.ngrids
    for rank in np.nonzero(f > f0)[0]:
        increments[partition.grid_of_rank(int(rank))] += 1
    if not any(increments):
        return None

    # The np(n) condition is a *minimum* only for flagged grids; grids
    # without overloaded processors are free to shrink (down to one
    # processor) so the flagged grids can grow.
    mins = [
        base + inc if inc > 0 else 1
        for base, inc in zip(partition.procs_per_grid, increments)
    ]
    # Scale back if the requested minimums exceed the machine.
    while sum(mins) > partition.nprocs:
        worst = max(
            range(len(mins)),
            key=lambda i: mins[i] - partition.procs_per_grid[i],
        )
        if mins[worst] <= 1:
            return None  # nothing left to trade
        mins[worst] -= 1
    if all(
        m <= base for m, base in zip(mins, partition.procs_per_grid)
    ):
        return None  # constraints already satisfied: nothing would change

    gridpoints = [int(np.prod(d)) for d in partition.grid_dims]
    balance = static_balance(
        gridpoints,
        partition.nprocs,
        min_points_constraints=mins,
    )
    return build_partition(
        list(partition.grid_dims),
        partition.nprocs,
        procs_per_grid=list(balance.procs_per_grid),
    )


@dataclass
class DynamicRebalancer:
    """Stateful wrapper used by the OVERFLOW-D1 driver.

    Accumulates the I(p) window in an
    :class:`repro.obs.rollup.IgbpRollup` between checks; every
    ``check_interval`` timesteps it applies :func:`dynamic_rebalance`
    and reports whether the partition changed.  The window rollup (and
    its f(p) = I(p)/Ibar series) is exposed as :attr:`window` for
    observability.
    """

    f0: float
    check_interval: int = 5
    max_rebalances: int = 4  # stop churning once the partition settles

    def __post_init__(self) -> None:
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.window = IgbpRollup()
        self._rebalances = 0
        self.history: list[tuple[int, tuple[int, ...]]] = []

    def record(self, igbp_received: np.ndarray) -> None:
        """Accumulate one timestep's I(p).

        A sample with a different rank count (the partition was rebuilt)
        restarts the window — :meth:`IgbpRollup.record` semantics.
        """
        self.window.record(igbp_received)

    def record_epoch(self, igbp: IgbpRollup) -> None:
        """Accumulate a whole epoch's I(p) rollup from the driver."""
        self.window.merge(igbp)

    def maybe_rebalance(self, partition: Partition, step: int) -> Partition | None:
        """Apply Algorithm 2 if a check is due; returns the new partition
        or None when nothing changed."""
        if (
            math.isinf(self.f0)
            or self.window.nsteps < self.check_interval
            or self._rebalances >= self.max_rebalances
        ):
            return None
        new = dynamic_rebalance(partition, self.window, self.f0)
        self.window = IgbpRollup()
        if new is not None:
            self._rebalances += 1
            self.history.append((step, new.procs_per_grid))
        return new
