"""Partition: the concrete grid→processors / processor→subdomain maps.

The OVERFLOW parallel approach assigns a *processor group* to each
component grid (paper Fig. 2); inside a group, the grid is divided into
index-space subdomains by the prime-factor routine.  Ranks are numbered
globally: grid 0's subdomains first, then grid 1's, and so on — matching
the paper's setup where every processor executes its own code for its
portion of exactly one grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.grids.subdomain import Box, Subdomain
from repro.partition.decompose import prime_factor_decompose
from repro.partition.static_lb import StaticBalanceResult, static_balance


@dataclass
class Partition:
    """Assignment of every processor to one subdomain of one grid."""

    grid_dims: tuple[tuple[int, ...], ...]
    procs_per_grid: tuple[int, ...]
    subdomains: tuple[Subdomain, ...]  # indexed by global rank
    balance: StaticBalanceResult | None = None

    def __post_init__(self) -> None:
        if len(self.subdomains) != sum(self.procs_per_grid):
            raise ValueError("rank count inconsistent with procs_per_grid")

    # ------------------------------------------------------------------

    @property
    def nprocs(self) -> int:
        return len(self.subdomains)

    @property
    def ngrids(self) -> int:
        return len(self.grid_dims)

    def subdomain_of(self, rank: int) -> Subdomain:
        return self.subdomains[rank]

    def grid_of_rank(self, rank: int) -> int:
        return self.subdomains[rank].grid_index

    def ranks_of_grid(self, grid_index: int) -> list[int]:
        return [
            sd.rank for sd in self.subdomains if sd.grid_index == grid_index
        ]

    def points_per_rank(self) -> np.ndarray:
        return np.array([sd.npoints for sd in self.subdomains], dtype=np.int64)

    def load_imbalance(self) -> float:
        """max/avg gridpoints per rank (1.0 = perfect)."""
        pts = self.points_per_rank()
        return float(pts.max() / pts.mean())

    def __repr__(self) -> str:
        return (
            f"Partition({self.ngrids} grids over {self.nprocs} ranks, "
            f"imbalance={self.load_imbalance():.3f})"
        )


def build_partition(
    grid_dims: list[tuple[int, ...]],
    nprocs: int,
    procs_per_grid: list[int] | None = None,
    min_procs_constraints: list[int] | None = None,
    dtau: float = 0.1,
    exclude_ranks: Iterable[int] | None = None,
) -> Partition:
    """Static load balance + prime-factor decomposition in one call.

    ``procs_per_grid`` overrides Algorithm 1 when given (used by tests
    and by the dynamic rebalancer, which computes its own counts).

    ``exclude_ranks`` removes fail-stopped processors before balancing
    (elastic recovery, :mod:`repro.resilience`): Algorithm 1 runs over
    the survivor count and the returned :class:`Partition` covers
    survivor ranks renumbered contiguously ``0..n_survivors-1``
    (ULFM-style shrink).
    """
    gridpoints = [int(np.prod(d)) for d in grid_dims]
    excluded = sorted(set(int(r) for r in exclude_ranks or ()))
    balance: StaticBalanceResult | None = None
    if procs_per_grid is None:
        balance = static_balance(
            gridpoints,
            nprocs,
            dtau=dtau,
            min_points_constraints=min_procs_constraints,
            exclude_ranks=excluded,
        )
        procs_per_grid = list(balance.procs_per_grid)
    elif excluded:
        raise ValueError(
            "exclude_ranks cannot be combined with an explicit "
            "procs_per_grid (the override already fixes the counts)"
        )
    nprocs -= len(excluded)
    if sum(procs_per_grid) != nprocs:
        raise ValueError(
            f"procs_per_grid sums to {sum(procs_per_grid)}, expected {nprocs}"
        )
    subdomains: list[Subdomain] = []
    rank = 0
    for gi, (dims, np_n) in enumerate(zip(grid_dims, procs_per_grid)):
        for box in prime_factor_decompose(tuple(dims), np_n):
            subdomains.append(Subdomain(grid_index=gi, rank=rank, box=box))
            rank += 1
    return Partition(
        grid_dims=tuple(tuple(d) for d in grid_dims),
        procs_per_grid=tuple(procs_per_grid),
        subdomains=tuple(subdomains),
        balance=balance,
    )
