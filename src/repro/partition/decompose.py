"""Prime-factor subdomain decomposition (paper section 3.0, Fig. 4).

Once Algorithm 1 fixes np(n) processors for grid n, the grid's index
space is split into np(n) boxes "as close to cubic as possible": the
prime factors of np(n) are applied largest-first, each dividing the
current largest index dimension, which minimises subdomain surface area
and hence halo communication.

:func:`strip_decompose` (naive 1-D slabs) exists for the ablation bench
comparing communication volume against the prime-factor scheme.
"""

from __future__ import annotations

from repro.grids.subdomain import Box, interior_face_points


def prime_factors(n: int) -> list[int]:
    """Prime factorisation in descending order (e.g. 12 -> [3, 2, 2])."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return sorted(out, reverse=True)


def prime_factor_decompose(dims: tuple[int, ...], nparts: int) -> list[Box]:
    """Split ``dims`` index space into ``nparts`` near-cubic boxes.

    Each prime factor (largest first) splits the currently largest
    dimension of every box.  When the largest dimension is too short for
    a factor, the largest *splittable* dimension is used instead; if no
    dimension can take the factor the grid is too small and we raise.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    boxes = [Box.whole(tuple(dims))]
    for f in prime_factors(nparts):
        new: list[Box] = []
        for b in boxes:
            axis = _largest_splittable_axis(b, f)
            new.extend(b.split(axis, f))
        boxes = new
    return boxes


def _largest_splittable_axis(box: Box, factor: int) -> int:
    order = sorted(range(box.ndim), key=lambda a: -box.shape[a])
    for axis in order:
        if box.shape[axis] >= factor:
            return axis
    raise ValueError(
        f"box of shape {box.shape} cannot be split by factor {factor}"
    )


def strip_decompose(dims: tuple[int, ...], nparts: int) -> list[Box]:
    """Naive 1-D slab decomposition along the largest dimension
    (ablation baseline: much larger interior surface area)."""
    whole = Box.whole(tuple(dims))
    axis = _largest_splittable_axis(whole, nparts)
    return whole.split(axis, nparts)


def total_halo_points(boxes: list[Box], dims: tuple[int, ...]) -> int:
    """Total interior-face points over a decomposition — proportional to
    the per-sweep halo-exchange volume."""
    return sum(interior_face_points(b, tuple(dims)) for b in boxes)
