"""Algorithm 1: the static load balance routine (paper section 3.0).

Given the gridpoint count g(n) of each component grid and the total
number of processors NP, decide how many processors np(n) each grid
receives so that gridpoints per processor are as even as possible::

    eps = G / NP ; tau = 0
    DO until sum(np) == NP:
        np(n) = max(1, int(g(n) / eps))
        tau += dtau
        eps = eps_0 adjusted by (1 + tau)
    END DO

Notes on fidelity:

* As printed in the paper, the update ``eps = eps * (1 + tau)`` *grows*
  eps, which can only shrink the integer counts ``int(g/eps)`` — the
  loop could never reach NP from the usual under-count.  The described
  behaviour (tolerance grows until the counts reach NP) requires eps to
  shrink, so we use ``eps = eps0 / (1 + tau)`` when the initial total is
  below NP, and the printed growing form for the (rarer) over-count that
  the ``np >= 1`` clamp can cause with many tiny grids.
* The paper's non-convergence fallback is implemented verbatim: "the
  value of the grid index n is added to g(n) and the method is
  repeated", breaking ties between equally-sized grids (their
  two-equal-grids / three-processors example).
* ``tau`` at convergence is returned as the paper's measure of the
  degree of static load imbalance (tau = 0 means perfectly balanced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class StaticBalanceResult:
    """Outcome of Algorithm 1."""

    procs_per_grid: tuple[int, ...]
    tau: float                  # tolerance at convergence (imbalance measure)
    iterations: int             # tolerance-loop iterations used
    perturbations: int          # how many times the g(n) += n fallback fired
    used_repair: bool           # greedy repair fallback engaged (see below)

    @property
    def nprocs(self) -> int:
        return sum(self.procs_per_grid)

    def points_per_proc(self, gridpoints: list[int]) -> list[float]:
        return [
            g / np_ for g, np_ in zip(gridpoints, self.procs_per_grid)
        ]

    def imbalance(self, gridpoints: list[int]) -> float:
        """max/avg gridpoints-per-processor over the partition."""
        per = self.points_per_proc(gridpoints)
        avg = sum(gridpoints) / self.nprocs
        return max(per) / avg if avg else 1.0


def _counts(gridpoints: list[int], eps: float) -> list[int]:
    return [max(1, int(g / eps)) for g in gridpoints]


def static_balance(
    gridpoints: list[int],
    nprocs: int,
    dtau: float = 0.1,
    max_tolerance_iters: int = 400,
    max_perturbations: int = 64,
    min_points_constraints: list[int] | None = None,
    exclude_ranks: Iterable[int] | None = None,
) -> StaticBalanceResult:
    """Run Algorithm 1.

    Parameters
    ----------
    gridpoints:
        g(n): points per component grid (inclusive of points later
        blanked by hole cutting, as the paper specifies).
    nprocs:
        NP: total processors.
    dtau:
        Tolerance increment (paper suggests ~0.1).
    min_points_constraints:
        Optional per-grid *minimum* processor counts — how Algorithm 2
        re-enters Algorithm 1 "with the above np(n) condition enforced".
    exclude_ranks:
        Processors removed from service (fail-stopped nodes, see
        :mod:`repro.resilience`).  Algorithm 1 runs over the *surviving*
        processor count ``NP - len(exclude_ranks)``; the returned
        ``procs_per_grid`` sums to the survivor count.  Rank ids must be
        unique and in ``[0, nprocs)``.
    max_tolerance_iters / max_perturbations:
        Safety bounds.  If the paper's loop plus perturbation fallback
        still has not converged, a greedy repair adjusts counts by +-1
        on the least/most loaded grids until the total is exact; the
        result flags ``used_repair`` so callers can tell.
    """
    n = len(gridpoints)
    if n == 0:
        raise ValueError("no grids")
    if any(g <= 0 for g in gridpoints):
        raise ValueError(f"gridpoint counts must be positive: {gridpoints}")
    if exclude_ranks:
        excluded = sorted(set(int(r) for r in exclude_ranks))
        bad = [r for r in excluded if not (0 <= r < nprocs)]
        if bad:
            raise ValueError(
                f"exclude_ranks out of range [0, {nprocs}): {bad}"
            )
        nprocs = nprocs - len(excluded)
    if nprocs < n:
        raise ValueError(
            f"{nprocs} processors cannot cover {n} grids (each grid "
            "needs at least one whole processor in this scheme)"
        )
    mins = list(min_points_constraints or [1] * n)
    if len(mins) != n:
        raise ValueError("constraint length mismatch")
    if sum(mins) > nprocs:
        raise ValueError(
            f"minimum processor constraints {mins} exceed NP={nprocs}"
        )

    g = [float(x) for x in gridpoints]
    total_iters = 0
    for perturbation in range(max_perturbations + 1):
        result = _tolerance_loop(g, mins, nprocs, dtau, max_tolerance_iters)
        if result is not None:
            counts, tau, iters = result
            return StaticBalanceResult(
                tuple(counts), tau, total_iters + iters, perturbation, False
            )
        total_iters += max_tolerance_iters
        # Paper's fallback: perturb g(n) by the grid index (1-based) to
        # break integer-arithmetic ties, then repeat.
        g = [gv + (i + 1) for i, gv in enumerate(g)]

    # Deterministic greedy repair so production callers always get a
    # valid partition: move single processors between grids, taking from
    # the grid with the fewest points per processor and giving to the
    # grid with the most.
    eps0 = sum(g) / nprocs
    counts = [max(m, c) for m, c in zip(mins, _counts(g, eps0))]
    while sum(counts) != nprocs:
        if sum(counts) < nprocs:
            idx = max(range(n), key=lambda i: g[i] / counts[i])
            counts[idx] += 1
        else:
            candidates = [i for i in range(n) if counts[i] > mins[i]]
            if not candidates:
                raise RuntimeError("constraints make the partition infeasible")
            idx = min(candidates, key=lambda i: g[i] / counts[i])
            counts[idx] -= 1
    tau = _final_tau(g, counts, nprocs)
    return StaticBalanceResult(
        tuple(counts), tau, total_iters, max_perturbations, True
    )


def _tolerance_loop(
    g: list[float],
    mins: list[int],
    nprocs: int,
    dtau: float,
    max_iters: int,
) -> tuple[list[int], float, int] | None:
    """One pass of the paper's DO-loop; None if it does not converge."""
    eps0 = sum(g) / nprocs

    def counts_at(tau: float, shrink: bool) -> list[int]:
        eps = eps0 / (1.0 + tau) if shrink else eps0 * (1.0 + tau)
        return [max(m, c) for m, c in zip(mins, _counts(g, eps))]

    start = counts_at(0.0, shrink=True)
    if sum(start) == nprocs:
        return start, 0.0, 0
    shrink = sum(start) < nprocs
    tau = 0.0
    for it in range(1, max_iters + 1):
        tau += dtau
        counts = counts_at(tau, shrink)
        total = sum(counts)
        if total == nprocs:
            return counts, tau, it
        # Crossed NP without hitting it exactly: integer jump skipped the
        # target; the tolerance loop cannot converge for this g.
        if (shrink and total > nprocs) or (not shrink and total < nprocs):
            return None
    return None


def _final_tau(g: list[float], counts: list[int], nprocs: int) -> float:
    """Imbalance measure consistent with the paper's tau semantics."""
    eps0 = sum(g) / nprocs
    worst = max(gv / c for gv, c in zip(g, counts))
    return max(0.0, worst / eps0 - 1.0)
