"""Algorithm 3: the grouping strategy for the adaptive Cartesian scheme
(paper section 5.0).

The adaptive off-body scheme generates hundreds to thousands of small
Cartesian grids.  Grids are gathered into M groups, one per node, such
that (a) gridpoints are distributed evenly and (b) grids in a group are
connected (overlapping) to each other where possible, maximising
intra-group connectivity and minimising inter-node communication.

Verbatim from the paper::

    Loop through N grids (largest-to-smallest), n
        Loop through M groups (smallest-to-largest), m
            IF group m is empty, assign grid n to group m
            ELSE if grid n is connected to any member of group m,
                assign grid n to group m
        End loop on M
        If grid n was not assigned, assign it to the smallest group
    End loop on N
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GroupingResult:
    """Assignment of grids to groups."""

    group_of: tuple[int, ...]          # grid index -> group index
    group_points: tuple[int, ...]      # total gridpoints per group

    @property
    def ngroups(self) -> int:
        return len(self.group_points)

    def members(self, group: int) -> list[int]:
        return [g for g, m in enumerate(self.group_of) if m == group]

    def imbalance(self) -> float:
        """max/avg gridpoints per group."""
        pts = np.array(self.group_points, dtype=float)
        nonzero = pts[pts > 0]
        if nonzero.size == 0:
            return 1.0
        return float(pts.max() / pts.mean())

    def intra_group_edges(self, connectivity: set[tuple[int, int]]) -> int:
        """How many connectivity edges stay inside a group (locality)."""
        return sum(
            1
            for a, b in connectivity
            if self.group_of[a] == self.group_of[b]
        )

    def cut_edges(self, connectivity: set[tuple[int, int]]) -> int:
        """How many connectivity edges cross a group boundary."""
        return sum(
            1
            for a, b in connectivity
            if self.group_of[a] != self.group_of[b]
        )

    def cut_weight(self, weights: dict[tuple[int, int], int]) -> int:
        """Total weight of edges crossing group boundaries.

        ``weights`` maps (i, j) grid pairs — directed or undirected, the
        distinction does not matter here — to a communication volume
        (e.g. donor/IGBP point counts).  The cut weight is the traffic
        that must leave a node; Algorithm 3 exists to minimise it.
        """
        return sum(
            w
            for (a, b), w in weights.items()
            if self.group_of[a] != self.group_of[b]
        )


def group_grids(
    sizes: list[int],
    connectivity: set[tuple[int, int]],
    ngroups: int,
) -> GroupingResult:
    """Run Algorithm 3.

    Parameters
    ----------
    sizes:
        Gridpoints per grid (the "computational work" the scheme evens
        out).
    connectivity:
        Undirected overlap edges between grids as (i, j) pairs (order
        inside the pair does not matter).
    ngroups:
        M: number of nodes / groups.
    """
    n = len(sizes)
    if ngroups < 1:
        raise ValueError("need at least one group")
    if any(s <= 0 for s in sizes):
        raise ValueError("grid sizes must be positive")
    adj: list[set[int]] = [set() for _ in range(n)]
    for a, b in connectivity:
        if not (0 <= a < n and 0 <= b < n):
            raise ValueError(f"connectivity edge ({a},{b}) out of range")
        if a != b:
            adj[a].add(b)
            adj[b].add(a)

    group_of = [-1] * n
    group_pts = [0] * ngroups
    members: list[set[int]] = [set() for _ in range(ngroups)]

    # Largest-to-smallest grids; ties broken by grid index for determinism.
    order = sorted(range(n), key=lambda i: (-sizes[i], i))
    for grid in order:
        assigned = False
        # Smallest-to-largest groups; ties by group index.
        for m in sorted(range(ngroups), key=lambda m: (group_pts[m], m)):
            if not members[m]:
                _assign(grid, m, sizes, group_of, group_pts, members)
                assigned = True
                break
            if adj[grid] & members[m]:
                _assign(grid, m, sizes, group_of, group_pts, members)
                assigned = True
                break
        if not assigned:
            m = min(range(ngroups), key=lambda m: (group_pts[m], m))
            _assign(grid, m, sizes, group_of, group_pts, members)

    return GroupingResult(tuple(group_of), tuple(group_pts))


def round_robin_grids(sizes: list[int], ngroups: int) -> GroupingResult:
    """Naive baseline: deal grids round-robin, ignoring connectivity.

    This is the strawman Algorithm 3 is measured against — it spreads
    points reasonably evenly but scatters overlapping neighbours across
    groups, maximising inter-node donor traffic.
    """
    n = len(sizes)
    if ngroups < 1:
        raise ValueError("need at least one group")
    if any(s <= 0 for s in sizes):
        raise ValueError("grid sizes must be positive")
    group_of = [i % ngroups for i in range(n)]
    group_pts = [0] * ngroups
    for i, m in enumerate(group_of):
        group_pts[m] += sizes[i]
    return GroupingResult(tuple(group_of), tuple(group_pts))


def _assign(
    grid: int,
    m: int,
    sizes: list[int],
    group_of: list[int],
    group_pts: list[int],
    members: list[set[int]],
) -> None:
    group_of[grid] = m
    group_pts[m] += sizes[grid]
    members[m].add(grid)
