"""Load balancing — the paper's primary contribution.

* :func:`static_balance` — Algorithm 1: distribute processors over
  component grids proportionally to gridpoint counts using the
  tolerance-relaxation integer loop, with the paper's perturbation
  fallback for non-converging partitions.
* :func:`prime_factor_decompose` — the near-cubic subdomain splitting
  that minimises subdomain surface area (communication volume).
* :func:`dynamic_rebalance` — Algorithm 2: measure received-IGBP counts
  I(p), bump the processor count of grids hosting overloaded processors
  (f(p) > f0) and re-run the static routine under those constraints.
* :func:`group_grids` — Algorithm 3: pack many small (Cartesian) grids
  into connectivity-local, load-balanced groups for the adaptive scheme.
* :class:`Partition` — the resulting grid→ranks / rank→subdomain maps.
"""

from repro.partition.static_lb import StaticBalanceResult, static_balance
from repro.partition.decompose import (
    prime_factors,
    prime_factor_decompose,
    strip_decompose,
    total_halo_points,
)
from repro.partition.assignment import Partition, build_partition
from repro.partition.dynamic_lb import DynamicRebalancer, dynamic_rebalance
from repro.partition.grouping import (
    GroupingResult,
    group_grids,
    round_robin_grids,
)

__all__ = [
    "StaticBalanceResult",
    "static_balance",
    "prime_factors",
    "prime_factor_decompose",
    "strip_decompose",
    "total_halo_points",
    "Partition",
    "build_partition",
    "DynamicRebalancer",
    "dynamic_rebalance",
    "GroupingResult",
    "group_grids",
    "round_robin_grids",
]
