"""Project-specific AST lint engine (``repro lint``).

Off-the-shelf linters know nothing about the invariants this codebase
lives and dies by: reserved message-tag spaces, bit-deterministic
scheduler/solver/connectivity paths, and typed failure exceptions that
must never be swallowed.  This module is a small, dependency-free rule
engine for exactly those invariants:

* every rule has a stable code (``RPR001`` ...), a one-line summary and
  a documented rationale (see :mod:`repro.analysis.rules` and
  ``docs/static-analysis.md``);
* findings can be waived inline with ``# noqa: RPRxxx`` (a bare
  ``# noqa`` waives every rule on that line) — waivers are counted and
  reported, never silent;
* output is human-readable (``path:line:col CODE message``) or JSON
  (``--format json``) for CI consumption;
* the engine is a single :class:`ast` walk per rule over each file —
  linting the whole of ``src/`` takes well under a second.

Adding a rule is three steps: subclass :class:`Rule` in
``repro/analysis/rules.py``, decorate it with :func:`register`, add a
fixture test in ``tests/analysis/test_lint_rules.py``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "register",
    "iter_rules",
    "rule_catalog",
    "lint_paths",
    "DETERMINISTIC_PACKAGES",
    "TAG_CONSTANT_MODULES",
]

#: Packages whose code runs on (or drives) the deterministic simulated
#: machine: wall-clock reads, unseeded RNG and hash-order iteration in
#: these trees can silently break bit-reproducibility.
DETERMINISTIC_PACKAGES = frozenset(
    {"machine", "solver", "connectivity", "resilience", "core"}
)

#: Modules allowed to define/handle raw integer tags: the tag-space
#: authority (reserved collective tags, wildcard sentinels) lives here.
TAG_CONSTANT_MODULES = ("machine/simmpi.py", "machine/event.py")

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<codes>:\s*[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)?",
    re.IGNORECASE,
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class LintContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.AST):
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        parts = Path(self.rel).parts
        #: Under a directory literally named ``tests`` (repo test tree).
        self.in_tests = "tests" in parts
        #: Inside one of the bit-determinism-critical packages.
        self.in_deterministic_path = any(
            p in DETERMINISTIC_PACKAGES for p in parts
        )
        #: One of the modules that *define* the tag space.
        self.is_tag_module = any(
            self.rel.endswith(m) for m in TAG_CONSTANT_MODULES
        )

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code` (``RPRnnn``), :attr:`name` (short
    kebab-case slug), :attr:`summary` (one line, shown in ``--list``)
    and :attr:`rationale` (why the invariant matters; surfaces in the
    docs), and implement :meth:`check`.
    """

    code: str = "RPR000"
    name: str = "abstract-rule"
    summary: str = ""
    rationale: str = ""

    def applies(self, ctx: LintContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path scoping)."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not re.fullmatch(r"RPR\d{3}", cls.code):
        raise ValueError(f"bad rule code {cls.code!r} on {cls.__name__}")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def iter_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by code."""
    _ensure_rules_loaded()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rule_catalog() -> list[dict]:
    """Rule metadata (code, name, summary, rationale) for docs/CLI."""
    return [
        {
            "code": r.code,
            "name": r.name,
            "summary": r.summary,
            "rationale": r.rationale,
        }
        for r in iter_rules()
    ]


def _ensure_rules_loaded() -> None:
    # The rules modules register themselves on import; import lazily to
    # avoid a hard cycle (rules import helpers from this module).  The
    # commcheck rules (RPR010+) share the registry but only run under
    # ``repro check`` — their ``applies`` is always false here.
    if not _REGISTRY:
        from repro.analysis import rules  # noqa: F401  (side-effect import)
        from repro.analysis.commcheck import rules as _commcheck_rules  # noqa: F401


# ----------------------------------------------------------------------
# engine


@dataclass
class LintReport:
    """Outcome of linting a set of paths."""

    findings: list[Finding]
    suppressed: list[Finding]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return out

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        by_code = ", ".join(
            f"{code} x{n}" for code, n in sorted(self.counts().items())
        )
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({by_code if by_code else 'none'}), "
            f"{len(self.suppressed)} waived by noqa, "
            f"{self.files_checked} file(s) checked"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "suppressed": [f.to_dict() for f in self.suppressed],
                "counts": self.counts(),
                "files_checked": self.files_checked,
                "ok": self.ok,
            },
            indent=2,
            sort_keys=True,
        )


def _noqa_codes(line: str) -> set[str] | None:
    """Codes waived on this physical line.

    Returns ``None`` when there is no ``noqa`` comment, the empty set
    for a bare ``# noqa`` (waives everything), else the explicit codes.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if not codes:
        return set()
    return {c.strip().upper() for c in codes.lstrip(":").split(",")}


def _iter_py_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                yield f


def _relative(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return str(path.resolve().relative_to(base.resolve()))
    except ValueError:
        return str(path)


def lint_file(
    path: Path,
    rules: list[Rule] | None = None,
    root: Path | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Lint one file; returns ``(findings, suppressed)``."""
    if rules is None:
        rules = iter_rules()
    rel = _relative(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=rel,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    code="RPR000",
                    message=f"syntax error: {exc.msg}",
                )
            ],
            [],
        )
    ctx = LintContext(path, rel, source, tree)
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for f in rule.check(ctx):
            line = (
                ctx.lines[f.line - 1] if 0 < f.line <= len(ctx.lines) else ""
            )
            waived = _noqa_codes(line)
            if waived is not None and (not waived or f.code in waived):
                suppressed.append(f)
            else:
                findings.append(f)
    return sorted(findings), sorted(suppressed)


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    root: Path | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``.

    ``select`` restricts to a subset of rule codes; unknown codes raise
    so CI misconfiguration fails loudly.
    """
    rules = iter_rules()
    if select is not None:
        want = {c.strip().upper() for c in select}
        known = {r.code for r in rules}
        unknown = want - known
        if unknown:
            raise ValueError(
                f"unknown rule code(s): {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        rules = [r for r in rules if r.code in want]
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    nfiles = 0
    for f in _iter_py_files(paths):
        nfiles += 1
        got, waived = lint_file(f, rules, root=root)
        findings.extend(got)
        suppressed.extend(waived)
    return LintReport(
        findings=sorted(findings),
        suppressed=sorted(suppressed),
        files_checked=nfiles,
    )
