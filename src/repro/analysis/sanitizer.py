"""SimMPI sanitizer: runtime message-race / tag / collective checking.

An opt-in shadow layer for the simulated machine, in the spirit of
MUST-style dynamic MPI correctness tools: the scheduler and the
communicator notify a :class:`Sanitizer` of every send, receive,
wildcard match and collective entry, and the sanitizer reports
structured findings without perturbing the simulation in any way — no
virtual time is charged, no scheduling decision changes, so a sanitized
run's traces are bit-identical to an unsanitized run (asserted by
``tests/analysis/test_sanitizer.py``).

Checks (finding ``kind`` strings):

``message-race``
    A wildcard (``ANY_SOURCE``) receive/tryrecv was posted while the
    rank's mailbox held matchable messages from **two or more distinct
    sources**.  The simulator resolves the race deterministically
    (arrival order), but on a real asynchronous machine the match would
    depend on timing — this is a *nondeterminism witness*, reported
    with full provenance (sources, sequence numbers, tag name).
    ``Comm.drain_recv`` consumes its mailbox in canonical (src, seq)
    order and is therefore race-free by construction.
``tag-collision``
    The same user tag was sent from two different accounting phases —
    two subsystems sharing one channel.  With wildcard receives in
    play, a stray message from subsystem A can satisfy subsystem B's
    receive.
``reserved-tag``
    A point-to-point send used a tag in the reserved range
    (``MAX_USER_TAG <= tag < collective base``) whose group offset was
    never registered by a live :class:`~repro.machine.simmpi.SubComm`.
``collective-mismatch``
    Ranks of one communicator executed different collective sequences
    (different op, root, count — or, for element-wise collectives like
    reduce/allreduce/alltoall, different payload size/shape/dtype
    signatures) — the classic source of collective deadlock or silent
    corruption on a real machine.  Size-varying collectives (gatherv-
    style gathers, root-only bcast payloads) are exempt from the
    payload check by construction.
``finalize-leak``
    A rank finished its program with unconsumed messages in its
    mailbox: somebody sent a message nobody ever received.

Findings accumulate across scheduler runs (the driver restarts the
scheduler per epoch); per-run state (collective sequences, mailboxes)
is reset by :meth:`Sanitizer.begin_run`.  Runs that end in injected
rank failure skip the finalize/collective checks — interrupted
protocols legitimately leave both inconsistent.

Every finding is mirrored to the :mod:`repro.obs` tracer (when one is
attached) as a ``sanitizer:<kind>`` mark, so findings land on the same
virtual-time axis as the span events that produced them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.machine.event import ANY_SOURCE, ANY_TAG
from repro.machine.simmpi import MAX_USER_TAG, _COLL_TAG_BASE, describe_tag

__all__ = [
    "Sanitizer",
    "SanitizerFinding",
    "SanitizerReport",
    "FINDING_KINDS",
    "payload_signature",
]

FINDING_KINDS = (
    "message-race",
    "tag-collision",
    "reserved-tag",
    "collective-mismatch",
    "finalize-leak",
)

#: World-communicator id used in collective sequence tracking.
_WORLD = "world"


def payload_signature(value: Any) -> tuple:
    """Canonical cross-rank signature of one collective contribution.

    Collapses a payload to the structural properties that must agree
    across ranks for an element-wise collective to be well-formed:

    * numpy arrays (anything with ``shape``/``dtype``) ->
      ``("ndarray", shape, dtype_str)``;
    * sequences -> ``("seq", length)`` — alltoall needs one payload
      slot per rank, element-wise folds over lists need equal lengths;
    * ``bytes`` -> ``("bytes", length)``;
    * everything else -> ``("py", type_name)`` — a rank folding floats
      against a rank folding dicts is a bug even though Python's ``+``
      may not notice until much later.

    Values inside containers are deliberately *not* inspected: the
    signature is O(1) regardless of payload size, so the sanitizer's
    no-perturbation guarantee (bit-identical virtual time) holds even
    for multi-megabyte contributions.
    """
    if value is None:
        return ("none",)
    shape = getattr(value, "shape", None)
    dtype = getattr(value, "dtype", None)
    if shape is not None and dtype is not None:
        return ("ndarray", tuple(int(s) for s in shape), str(dtype))
    if isinstance(value, (bytes, bytearray)):
        return ("bytes", len(value))
    if isinstance(value, (list, tuple)):
        return ("seq", len(value))
    return ("py", type(value).__name__)


def _fmt_coll_entry(entry: tuple | None) -> str:
    """Human-readable ``(name, root, signature)`` sequence entry."""
    if entry is None:
        return "nothing (sequence ended)"
    name, root, sig = entry
    details = []
    if root >= 0:
        details.append(f"root={root}")
    if sig is not None:
        details.append(f"payload={sig}")
    return f"{name}({', '.join(details)})" if details else name


@dataclass(frozen=True)
class SanitizerFinding:
    """One structured sanitizer finding."""

    kind: str
    time: float
    rank: int
    tag: int | None
    message: str
    detail: dict = field(default_factory=dict)

    def format(self) -> str:
        tag_txt = "" if self.tag is None else f" tag={describe_tag(self.tag)}"
        return (
            f"[{self.kind}] t={self.time:.6g} rank={self.rank}{tag_txt}: "
            f"{self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "time": self.time,
            "rank": self.rank,
            "tag": self.tag,
            "message": self.message,
            "detail": self.detail,
        }


@dataclass
class SanitizerReport:
    """Summary of one sanitized execution (possibly many epochs)."""

    findings: list[SanitizerFinding]
    runs: int
    messages_sent: int
    messages_received: int
    wildcard_recvs: int
    collectives: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out = {k: 0 for k in FINDING_KINDS}
        for f in self.findings:
            out[f.kind] = out.get(f.kind, 0) + 1
        return {k: v for k, v in out.items() if v}

    def format(self) -> str:
        lines = ["sanitizer: " + ("CLEAN" if self.ok else "FINDINGS")]
        lines.append(
            f"  {self.runs} scheduler run(s), "
            f"{self.messages_sent} sends, "
            f"{self.messages_received} receives, "
            f"{self.wildcard_recvs} wildcard receives, "
            f"{self.collectives} collective entries"
        )
        for kind, n in sorted(self.counts().items()):
            lines.append(f"  {kind}: {n}")
        for f in self.findings:
            lines.append("  " + f.format())
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "counts": self.counts(),
                "runs": self.runs,
                "messages_sent": self.messages_sent,
                "messages_received": self.messages_received,
                "wildcard_recvs": self.wildcard_recvs,
                "collectives": self.collectives,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
            sort_keys=True,
        )


class Sanitizer:
    """Shadow-layer recorder; attach via ``Simulator(sanitizer=...)``.

    Purely observational: every hook only reads simulator state and
    appends to internal records, so enabling the sanitizer cannot
    change virtual timings (tested bit-exactly).

    Parameters
    ----------
    tracer:
        Optional :class:`repro.obs.Tracer`; findings are mirrored as
        ``sanitizer:<kind>`` marks.
    max_findings_per_kind:
        Cap per finding kind so a systematically-racy program cannot
        blow up memory; the cap itself is reported in the summary.
    """

    def __init__(self, tracer=None, max_findings_per_kind: int = 1000):
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.max_findings_per_kind = max_findings_per_kind
        self.findings: list[SanitizerFinding] = []
        self.runs = 0
        #: Python hook invocations actually executed (the scheduler's
        #: batched mode elides most of them; see the hook-overhead
        #: micro-benchmark in repro.obs.perf.bench).
        self.hook_calls = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.wildcard_recvs = 0
        self.collectives = 0
        # Cross-run state: tags are global constants, so provenance and
        # dedup persist across epochs.
        self._tag_phases: dict[int, set[str]] = {}
        self._collisions_reported: set[int] = set()
        self._reserved_reported: set[int] = set()
        self._group_offsets: dict[int, tuple[int, ...]] = {}
        # Per-run state (reset by begin_run).
        self._coll_seq: dict[Any, dict[int, list[tuple[str, int]]]] = {}
        self._race_seen: set[tuple] = set()
        self._nranks = 0

    # ------------------------------------------------------------------
    # lifecycle (called by the scheduler)

    def begin_run(self, nranks: int) -> None:
        """Reset per-run state at the start of one scheduler run."""
        self.runs += 1
        self._nranks = nranks
        self._coll_seq = {}
        self._race_seen = set()

    def end_run(self, states: Iterable, failed: bool) -> None:
        """Finalize checks at the end of one scheduler run.

        ``states`` are scheduler rank-state objects (``rank``,
        ``mailbox``, ``failed`` attributes).  ``failed`` runs skip the
        finalize-leak and collective-mismatch checks: an interrupted
        protocol legitimately leaves both inconsistent.
        """
        if failed:
            return
        self._check_collectives()
        for s in states:
            if s.failed:
                continue
            for msg in s.mailbox.pending():
                self._emit(
                    "finalize-leak",
                    msg.arrival_time,
                    s.rank,
                    msg.tag,
                    f"message from rank {msg.src} "
                    f"({describe_tag(msg.tag)}, {msg.nbytes} B) was "
                    "never received",
                    src=msg.src,
                    nbytes=msg.nbytes,
                    seq=msg.seq,
                )

    # ------------------------------------------------------------------
    # event hooks (called by the scheduler hot path)

    def on_send(
        self,
        time: float,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        phase: str,
        dropped: bool,
    ) -> None:
        self.hook_calls += 1
        self.messages_sent += 1
        if tag >= _COLL_TAG_BASE:
            return
        if tag >= MAX_USER_TAG:
            # Group-translated user tag: its offset must belong to a
            # registered SubComm, otherwise application code forged a
            # tag inside the reserved range.
            offset = (tag // MAX_USER_TAG) * MAX_USER_TAG
            if (
                offset not in self._group_offsets
                and offset not in self._reserved_reported
            ):
                self._reserved_reported.add(offset)
                self._emit(
                    "reserved-tag",
                    time,
                    src,
                    tag,
                    f"send to rank {dst} used reserved tag "
                    f"{tag} with unregistered group offset {offset}",
                    dst=dst,
                    offset=offset,
                )
            return
        phases = self._tag_phases.setdefault(tag, set())
        phases.add(phase)
        if len(phases) > 1 and tag not in self._collisions_reported:
            self._collisions_reported.add(tag)
            self._emit(
                "tag-collision",
                time,
                src,
                tag,
                f"user tag {tag} is sent from multiple subsystems "
                f"(phases {sorted(phases)}); a wildcard receive in one "
                "can match the other's messages",
                phases=sorted(phases),
                dst=dst,
            )

    def on_recv(self, time: float, rank: int, msg) -> None:
        self.hook_calls += 1
        self.messages_received += 1

    def add_batched_counts(self, sends: int = 0, recvs: int = 0) -> None:
        """Fold in hook calls the scheduler elided in batched mode.

        The scheduler's default (batched) hook mode runs the full
        :meth:`on_send` only for the first message of each
        ``(tag, phase)`` key — every sanitizer send check keys on that
        pair and deduplicates, so repeats carry no new information —
        and counts plain receives locally.  The elided call counts are
        flushed here at the end of each scheduler run so report totals
        are identical to eager mode.
        """
        self.messages_sent += sends
        self.messages_received += recvs

    def on_wildcard_recv(
        self,
        time: float,
        rank: int,
        tag: int,
        mailbox,
        blocking: bool,
    ) -> None:
        """An ``ANY_SOURCE`` receive is about to match against ``mailbox``.

        If two or more matchable messages from distinct sources are
        pending (arrived *or* in flight — on a real machine either
        could win), the match outcome is timing-dependent: record a
        nondeterminism witness.  Reserved/collective tags are exempt:
        the built-in collectives match by construction on order-
        insensitive state.
        """
        self.hook_calls += 1
        self.wildcard_recvs += 1
        if tag >= _COLL_TAG_BASE:
            return
        msgs = [m for m in mailbox.pending() if m.matches(ANY_SOURCE, tag)]
        sources = sorted({m.src for m in msgs})
        if len(sources) < 2:
            return
        key = (rank, tag, tuple(sorted(m.seq for m in msgs)))
        if key in self._race_seen:
            return
        self._race_seen.add(key)
        self._emit(
            "message-race",
            time,
            rank,
            tag,
            f"wildcard {'recv' if blocking else 'tryrecv'} with "
            f"{len(msgs)} matchable messages from sources {sources}; "
            "match order is timing-dependent on a real machine "
            "(use drain_recv for canonical (src, seq) consumption)",
            sources=sources,
            seqs=sorted(m.seq for m in msgs),
            blocking=blocking,
            tag_name=describe_tag(tag),
        )

    def on_drain(
        self, time: float, rank: int, src: int, tag: int, msgs: list
    ) -> None:
        """A canonical-order drain consumed ``msgs`` — race-free by
        construction; only counted."""
        self.hook_calls += 1
        self.messages_received += len(msgs)

    # ------------------------------------------------------------------
    # comm-level hooks (called by simmpi)

    def register_group(
        self, members: tuple[int, ...], tag_offset: int, rank: int
    ) -> None:
        """A :class:`SubComm` with ``members`` claimed ``tag_offset``."""
        self._group_offsets[tag_offset] = tuple(members)

    def on_collective(
        self,
        rank: int,
        comm_id: Any,
        name: str,
        root: int | None,
        payload: Any = None,
        has_payload: bool = False,
    ) -> None:
        """Rank ``rank`` (global numbering) entered collective ``name``
        on communicator ``comm_id`` (``"world"`` or group tuple).

        ``has_payload=True`` marks collectives whose contribution must
        agree across ranks (reduce/allreduce element-wise folds,
        alltoall's one-payload-per-rank list); ``payload`` is then
        summarised by :func:`payload_signature` and compared as part of
        the per-rank sequence.  Size-varying collectives (gather of
        per-rank work, root-only bcast payloads) pass
        ``has_payload=False`` so legitimate variation is not flagged.
        """
        self.collectives += 1
        sig = payload_signature(payload) if has_payload else None
        seqs = self._coll_seq.setdefault(comm_id, {})
        seqs.setdefault(rank, []).append(
            (name, -1 if root is None else int(root), sig)
        )

    # ------------------------------------------------------------------

    def report(self) -> SanitizerReport:
        return SanitizerReport(
            findings=list(self.findings),
            runs=self.runs,
            messages_sent=self.messages_sent,
            messages_received=self.messages_received,
            wildcard_recvs=self.wildcard_recvs,
            collectives=self.collectives,
        )

    # ------------------------------------------------------------------
    # internals

    def _emit(
        self,
        kind: str,
        time: float,
        rank: int,
        tag: int | None,
        message: str,
        **detail: Any,
    ) -> None:
        if (
            sum(1 for f in self.findings if f.kind == kind)
            >= self.max_findings_per_kind
        ):
            return
        f = SanitizerFinding(
            kind=kind,
            time=time,
            rank=rank,
            tag=tag,
            message=message,
            detail=detail,
        )
        self.findings.append(f)
        if self.tracer is not None:
            self.tracer.mark(time, f"sanitizer:{kind}", rank=rank, **detail)

    def _check_collectives(self) -> None:
        """Compare per-rank collective sequences per communicator."""
        for comm_id in sorted(self._coll_seq, key=repr):
            seqs = self._coll_seq[comm_id]
            if comm_id == _WORLD:
                expected = range(self._nranks)
            else:
                expected = comm_id[1:]  # ("group", m0, m1, ...)
            participants = sorted(seqs)
            missing = [r for r in expected if r not in seqs]
            if missing and participants:
                ref = participants[0]
                self._emit(
                    "collective-mismatch",
                    0.0,
                    missing[0],
                    None,
                    f"rank(s) {missing} of communicator {comm_id!r} "
                    f"executed no collectives while rank {ref} executed "
                    f"{len(seqs[ref])}",
                    comm=repr(comm_id),
                    missing=missing,
                )
            if len(participants) < 2:
                continue
            ref = participants[0]
            ref_seq = seqs[ref]
            for r in participants[1:]:
                got = seqs[r]
                if got == ref_seq:
                    continue
                div = next(
                    (
                        i
                        for i, (a, b) in enumerate(zip(ref_seq, got))
                        if a != b
                    ),
                    min(len(ref_seq), len(got)),
                )
                a = ref_seq[div] if div < len(ref_seq) else None
                b = got[div] if div < len(got) else None
                self._emit(
                    "collective-mismatch",
                    0.0,
                    r,
                    None,
                    f"collective sequence diverges from rank {ref} at "
                    f"entry {div} on communicator {comm_id!r}: "
                    f"rank {ref} executed {_fmt_coll_entry(a)}, "
                    f"rank {r} executed {_fmt_coll_entry(b)} "
                    f"(lengths {len(ref_seq)} vs {len(got)})",
                    comm=repr(comm_id),
                    index=div,
                    ref_rank=ref,
                    ref_op=list(a) if a else None,
                    got_op=list(b) if b else None,
                )
