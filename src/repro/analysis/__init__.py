"""Static analysis + runtime sanitization for the deterministic stack.

Two halves (see ``docs/static-analysis.md``):

* :mod:`repro.analysis.lint` — a project-specific AST lint framework
  (``repro lint``): rule registry with stable ``RPRnnn`` codes,
  ``# noqa: RPRxxx`` waivers, human and JSON output.  The rules encode
  invariants no off-the-shelf linter knows: named-tag discipline,
  no wall-clock/unseeded-RNG in deterministic packages, no unordered
  iteration feeding message injection, no swallowed failure exceptions.
* :mod:`repro.analysis.sanitizer` — a runtime shadow layer for the
  simulated machine (``repro run --sanitize``): message-race witnesses
  on wildcard receives, tag-collision and reserved-tag policing,
  collective-sequence cross-checks, finalize-leak detection — all
  without perturbing virtual time by a single tick.
"""

from repro.analysis.lint import (
    Finding,
    LintReport,
    Rule,
    iter_rules,
    lint_paths,
    register,
    rule_catalog,
)
from repro.analysis.fix import FixResult, fix_paths, fix_rpr007_source
from repro.analysis.commcheck import (
    CheckFinding,
    CheckReport,
    run_check,
    run_check_with_baseline_file,
)
from repro.analysis.sanitizer import (
    FINDING_KINDS,
    Sanitizer,
    SanitizerFinding,
    SanitizerReport,
    payload_signature,
)

__all__ = [
    "CheckFinding",
    "CheckReport",
    "run_check",
    "run_check_with_baseline_file",
    "Finding",
    "FixResult",
    "fix_paths",
    "fix_rpr007_source",
    "LintReport",
    "Rule",
    "iter_rules",
    "lint_paths",
    "register",
    "rule_catalog",
    "FINDING_KINDS",
    "Sanitizer",
    "SanitizerFinding",
    "SanitizerReport",
    "payload_signature",
]
