"""Registry metadata for the whole-program rules RPR010–RPR015.

These rules live in the same registry as the per-file lint rules so the
code space stays unified (``repro lint --rules`` and the docs list all
of them), but they deliberately do **not** run under ``repro lint``:
their ``applies`` is always false because they need the whole program,
not one file.  The actual analyses live in
:mod:`repro.analysis.commcheck.protocol` and
:mod:`repro.analysis.commcheck.locks`, orchestrated by
:mod:`repro.analysis.commcheck.engine` (``repro check``).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.lint import Finding, LintContext, Rule, register

#: Codes implemented by the commcheck engine (ordered).
COMMCHECK_CODES = (
    "RPR010",
    "RPR011",
    "RPR012",
    "RPR013",
    "RPR014",
    "RPR015",
)


class ProgramRule(Rule):
    """A whole-program rule: registered for the catalog, inert in lint."""

    def applies(self, ctx: LintContext) -> bool:
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:  # pragma: no cover
        return iter(())


@register
class CollectiveDivergence(ProgramRule):
    code = "RPR010"
    name = "collective-skipped-on-path"
    summary = (
        "collective executed on one rank-dependent control-flow path "
        "but skipped on another"
    )
    rationale = (
        "Collectives are rendezvous points: every rank of the "
        "communicator must call them in the same order.  A collective "
        "under `if rank == 0:` (with no matching call on the other "
        "path, or skipped by an early return) leaves the other ranks "
        "blocked in it forever — the classic SPMD hang.  Whole-program "
        "only: needs branch-sensitive placement of collective sites."
    )


@register
class UnmatchedTag(ProgramRule):
    code = "RPR011"
    name = "unmatched-tag"
    summary = (
        "message tag sent but never received anywhere in the program "
        "(or received but never sent)"
    )
    rationale = (
        "A send whose tag no receive in the whole program matches is "
        "dead traffic at best and a buffered-send leak at worst; a "
        "receive whose tag is never sent blocks its rank forever.  "
        "Matching is done on resolved constant values (following "
        "`from x import TAG` chains) and falls back to constant names, "
        "so renaming one side of a protocol is caught statically."
    )


@register
class UnguardedWildcardRecvLoop(ProgramRule):
    code = "RPR012"
    name = "unguarded-wildcard-recv-loop"
    summary = (
        "blocking wildcard-source recv reachable in a loop without "
        "status.source disambiguation"
    )
    rationale = (
        "A blocking `recv(ANY_SOURCE)` in a loop consumes racing sends "
        "in arrival order.  Unless the loop disambiguates via "
        "`status.source` (e.g. `out[status.source] = data`), the "
        "result depends on message timing — which breaks the "
        "bit-determinism contract the simulated machine guarantees "
        "and real MPI does not.  Interprocedural: the loop may be in "
        "a caller of the receiving helper."
    )


@register
class ReservedTagForgery(ProgramRule):
    code = "RPR013"
    name = "reserved-tag-forgery"
    summary = (
        "tag at/above MAX_USER_TAG (or a reserved _TAG_* constant) "
        "used outside the tag-authority modules"
    )
    rationale = (
        "Everything at or above MAX_USER_TAG is reserved: SubComm "
        "group translation offsets user tags by multiples of the "
        "stride, and collectives/heartbeats live above every possible "
        "offset.  User code that forges a reserved tag can intercept "
        "another rank's collective round or heartbeat, corrupting "
        "protocol state in ways the runtime sanitizer only catches on "
        "paths a case actually executes."
    )


@register
class InconsistentLockDiscipline(ProgramRule):
    code = "RPR014"
    name = "inconsistent-lock-discipline"
    summary = (
        "attribute written both with and without a lock held, or two "
        "locks acquired in opposite orders"
    )
    rationale = (
        "A shared attribute written under a lock in one method and "
        "bare in another gives readers a torn-read/lost-update window "
        "that shows up only under production interleavings.  Two locks "
        "taken in opposite orders on different paths (ABBA) deadlock "
        "the first time the schedules overlap.  Both need class-wide "
        "and cross-function views, hence the whole-program pass."
    )


@register
class BlockingCallUnderLock(ProgramRule):
    code = "RPR015"
    name = "blocking-call-under-lock"
    summary = (
        "blocking socket/pipe/disk call (or sleep/join) made while "
        "holding a lock"
    )
    rationale = (
        "I/O under a lock serializes every contending thread behind "
        "the slowest disk or peer, and wedges the process outright if "
        "the I/O's completion depends on a thread that needs the lock. "
        "Condition-variable waits on the held condition itself are "
        "exempt (wait releases the lock); calls into helpers that "
        "perform I/O are traced two levels through the call graph."
    )
