"""Lock-discipline checks over the threaded serve/cluster/head code.

Three defect classes, all invisible to per-file linting:

* **RPR014** — (a) an instance attribute written both with and without
  a given lock held (a torn-read/lost-update window), and (b) two locks
  acquired in opposite orders on different code paths (an ABBA deadlock
  waiting for the right interleaving).
* **RPR015** — a blocking call (socket/pipe I/O, disk I/O, ``sleep``,
  thread ``join``) made while holding a lock: every other thread
  contending on that lock stalls behind the I/O, and if the I/O's
  completion depends on one of those threads, the process wedges.

Lock identification is two-tier: *canonical* locks are ``self.<attr>``
attributes assigned a ``Lock``/``RLock``/``Condition``/``Semaphore``
factory anywhere in the class (a ``Condition(self._lock)`` aliases to
its underlying lock); *heuristic* locks are any other ``with`` context
whose expression text looks lock-ish (``locks[dst]``, ``self.mutex``).
Canonical locks participate in every check; heuristic ones only in
order/blocking checks, never in mixed-write analysis.

Interprocedural refinements:

* a private method whose intra-class call sites all hold a common lock
  is analyzed as holding that lock (the ``_insert``-under-``_lock``
  pattern);
* a call made under a lock to a function that itself performs blocking
  I/O is flagged at the call site (two levels deep).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.commcheck.callgraph import (
    FunctionInfo,
    Program,
)
from repro.analysis.commcheck.model import (
    CheckFinding,
    LockOrderEdge,
    LockWrite,
    LockedCall,
)

_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

_LOCKISH_RE = re.compile(r"lock|mutex|_cv\b|cond|sem", re.IGNORECASE)

#: Method names that mutate their receiver in place: ``self.X.append(y)``
#: is a write to ``self.X`` for mixed-write analysis.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

#: Call names that block the calling thread (socket/pipe/disk/clock).
_BLOCKING_CALLS = frozenset(
    {
        "accept",
        "connect",
        "create_connection",
        "getaddrinfo",
        "makefile",
        "read_bytes",
        "read_text",
        "readline",
        "recv",
        "recv_bytes",
        "select",
        "send",
        "send_bytes",
        "sendall",
        "sleep",
        "wait",
        "write_bytes",
        "write_text",
    }
)

#: Ops propagated interprocedurally (``wait`` stays lexical-only: a
#: callee waiting on its *own* condition is the normal cv idiom).
_CLOSURE_BLOCKING = _BLOCKING_CALLS - {"wait"}

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass
class ClassLocks:
    """Canonical lock attributes of one class (with condition aliases)."""

    qname: str  # "pkg.mod.Cls"
    attrs: dict[str, str] = field(default_factory=dict)  # attr -> canonical

    def canonical(self, attr: str) -> str | None:
        return self.attrs.get(attr)


def _dotted_last(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _discover_class_locks(program: Program) -> dict[str, ClassLocks]:
    """Map ``pkg.mod.Cls`` -> its canonical lock attributes."""
    out: dict[str, ClassLocks] = {}
    for mod in program.modules.values():
        for cls_name, cls_node in mod.classes.items():
            cq = f"{mod.name}.{cls_name}"
            info = ClassLocks(qname=cq)
            aliases: list[tuple[str, str]] = []
            for node in ast.walk(cls_node):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                attr = _self_attr(node.targets[0])
                if attr is None or not isinstance(node.value, ast.Call):
                    continue
                factory = _dotted_last(node.value.func)
                if factory not in _LOCK_FACTORIES:
                    continue
                if factory == "Condition" and node.value.args:
                    under = _self_attr(node.value.args[0])
                    if under is not None:
                        aliases.append((attr, under))
                        continue
                info.attrs[attr] = f"{cq}.{attr}"
            for attr, under in aliases:
                # Condition(self._lock) shares _lock's identity; if the
                # underlying attr is itself unknown, register it too.
                info.attrs.setdefault(under, f"{cq}.{under}")
                info.attrs[attr] = info.attrs[under]
            if info.attrs:
                out[cq] = info
    return out


@dataclass
class _FuncFacts:
    func: FunctionInfo
    writes: list[LockWrite] = field(default_factory=list)
    calls: list[LockedCall] = field(default_factory=list)
    order_edges: list[LockOrderEdge] = field(default_factory=list)
    self_calls: dict[str, list[tuple[ast.Call, tuple[str, ...]]]] = field(
        default_factory=dict
    )  # method name -> [(call, held)]


class _LockWalker:
    """Collect lock facts for one function."""

    def __init__(
        self,
        func: FunctionInfo,
        class_locks: ClassLocks | None,
    ) -> None:
        self.func = func
        self.class_locks = class_locks
        self.facts = _FuncFacts(func=func)

    # -- classification -------------------------------------------------

    def _classify(self, expr: ast.expr) -> str | None:
        attr = _self_attr(expr)
        if attr is not None and self.class_locks is not None:
            canon = self.class_locks.canonical(attr)
            if canon is not None:
                return canon
        try:
            text = ast.unparse(expr)
        except Exception:  # pragma: no cover
            return None
        if _LOCKISH_RE.search(text):
            # heuristic: index-insensitive so locks[a]/locks[b] unify
            text = re.sub(r"\[[^]]*\]", "[]", text)
            owner = (
                f"{self.func.module.name}.{self.func.class_name}"
                if self.func.class_name
                else self.func.module.name
            )
            return f"{owner}:{text}"
        return None

    # -- traversal ------------------------------------------------------

    def run(self) -> _FuncFacts:
        for stmt in self.func.node.body:
            self._visit(stmt, (), frozenset())
        return self.facts

    def _record_write(
        self, attr: str, held: tuple[str, ...], node: ast.AST
    ) -> None:
        self.facts.writes.append(
            LockWrite(
                attr=attr,
                held=frozenset(held),
                func=self.func,
                node=node,
            )
        )

    def _write_targets(self, target: ast.expr, held, node) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._write_targets(elt, held, node)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._record_write(attr, held, node)
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None:
                self._record_write(attr, held, node)

    def _visit(
        self,
        node: ast.AST,
        held: tuple[str, ...],
        held_exprs: frozenset[str],
    ) -> None:
        if isinstance(node, _SCOPE_NODES):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = held
            new_exprs = held_exprs
            for item in node.items:
                self._visit(item.context_expr, held, held_exprs)
                lock_id = self._classify(item.context_expr)
                if lock_id is None:
                    continue
                for outer in new_held:
                    if outer != lock_id:
                        self.facts.order_edges.append(
                            LockOrderEdge(
                                first=outer,
                                second=lock_id,
                                func=self.func,
                                node=item.context_expr,
                            )
                        )
                if lock_id not in new_held:
                    new_held = new_held + (lock_id,)
                try:
                    new_exprs = new_exprs | {
                        ast.unparse(item.context_expr)
                    }
                except Exception:  # pragma: no cover
                    pass
            for child in node.body:
                self._visit(child, new_held, new_exprs)
            return
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                self._write_targets(tgt, held, node)
        elif isinstance(node, ast.AugAssign):
            self._write_targets(node.target, held, node)
        elif isinstance(node, ast.Call):
            self.facts.calls.append(
                LockedCall(
                    node=node,
                    held=held,
                    held_exprs=held_exprs,
                    func=self.func,
                )
            )
            f = node.func
            if isinstance(f, ast.Attribute):
                # self.X.append(...) mutates self.X
                if f.attr in _MUTATORS:
                    attr = _self_attr(f.value)
                    if attr is not None:
                        self._record_write(attr, held, node)
                # intra-class self.m(...) call, for held propagation
                if _self_attr(f) is not None:
                    self.facts.self_calls.setdefault(f.attr, []).append(
                        (node, held)
                    )
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, held_exprs)


# ----------------------------------------------------------------------
# blocking-call predicate


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_str_join(node: ast.Call) -> bool:
    """``", ".join(xs)`` — a string method, not a thread join."""
    if not isinstance(node.func, ast.Attribute):
        return False
    if isinstance(node.func.value, (ast.Constant, ast.JoinedStr)):
        return True
    # thread/process join takes no positional args (or only a timeout
    # keyword); str.join always takes exactly one positional iterable.
    return len(node.args) == 1


def _is_comm_yield(node: ast.Call, func: FunctionInfo) -> bool:
    parent = func.module.parent_of(node)
    return isinstance(parent, (ast.YieldFrom, ast.Await))


def _blocking_op(
    call: ast.Call, func: FunctionInfo, ops: frozenset[str]
) -> str | None:
    name = _call_name(call)
    if name not in ops:
        return None
    if name == "join" and _is_str_join(call):  # pragma: no cover - safety
        return None
    if _is_comm_yield(call, func):
        return None  # simulated comm op, not thread-blocking I/O
    return name


def _direct_blocking(func: FunctionInfo) -> list[tuple[ast.Call, str]]:
    out: list[tuple[ast.Call, str]] = []
    for node in func.body_nodes():
        if isinstance(node, ast.Call):
            op = _blocking_op(node, func, _CLOSURE_BLOCKING)
            if op is not None and op != "wait":
                out.append((node, op))
    return out


# ----------------------------------------------------------------------
# the pass


def _finding(
    func: FunctionInfo, node: ast.AST, code: str, message: str
) -> CheckFinding:
    return CheckFinding(
        path=func.module.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
        function=func.qname,
    )


def _short(lock_id: str) -> str:
    return lock_id.rsplit(".", 1)[-1] if ":" not in lock_id else lock_id.split(":", 1)[-1]


def check_lock_discipline(program: Program) -> Iterator[CheckFinding]:
    class_locks = _discover_class_locks(program)
    facts: dict[str, _FuncFacts] = {}
    for func in program.functions.values():
        cq = (
            f"{func.module.name}.{func.class_name}"
            if func.class_name
            else None
        )
        walker = _LockWalker(func, class_locks.get(cq) if cq else None)
        facts[func.qname] = walker.run()

    # -- lock-held propagation into private methods ---------------------
    # A method whose intra-class call sites *all* hold a common lock is
    # analyzed as holding it (covers "_insert is only called under
    # _lock" contracts).  Two rounds settle call chains.
    held_bonus: dict[str, frozenset[str]] = {}
    by_class: dict[tuple[str, str], list[_FuncFacts]] = {}
    for fx in facts.values():
        if fx.func.class_name:
            by_class.setdefault(
                (fx.func.module.name, fx.func.class_name), []
            ).append(fx)
    for _round in range(2):
        for (mod_name, cls_name), members in by_class.items():
            for target in members:
                m = target.func.name
                if not m.startswith("_") or m.startswith("__"):
                    continue
                sites: list[frozenset[str]] = []
                for fx in members:
                    for node, held in fx.self_calls.get(m, []):
                        eff = frozenset(held) | held_bonus.get(
                            fx.func.qname, frozenset()
                        )
                        sites.append(eff)
                if sites and all(sites):
                    common = frozenset.intersection(*sites)
                    if common:
                        held_bonus[target.func.qname] = (
                            held_bonus.get(target.func.qname, frozenset())
                            | common
                        )

    def eff_held(fx: _FuncFacts, held) -> frozenset[str]:
        return frozenset(held) | held_bonus.get(fx.func.qname, frozenset())

    # -- RPR014a: mixed locked/unlocked writes --------------------------
    for (mod_name, cls_name), members in sorted(by_class.items()):
        cq = f"{mod_name}.{cls_name}"
        locks = class_locks.get(cq)
        lock_attr_names = set(locks.attrs) if locks else set()
        writes_by_attr: dict[str, list[tuple[LockWrite, frozenset[str]]]] = {}
        for fx in members:
            for w in fx.writes:
                if w.attr in lock_attr_names:
                    continue
                writes_by_attr.setdefault(w.attr, []).append(
                    (w, eff_held(fx, w.held))
                )
        for attr, entries in sorted(writes_by_attr.items()):
            canonical = {
                lk
                for _, held in entries
                for lk in held
                if ":" not in lk  # canonical only — heuristics too fuzzy
            }
            if not canonical:
                continue
            locked = [
                (w, h)
                for w, h in entries
                if h & canonical
            ]
            unlocked = [
                (w, h)
                for w, h in entries
                if not h and w.func.name != "__init__"
            ]
            if not locked or not unlocked:
                continue
            lock_names = ", ".join(sorted(_short(c) for c in canonical))
            locked_in = sorted({w.func.name for w, _ in locked})
            seen_funcs: set[str] = set()
            for w, _h in sorted(
                unlocked, key=lambda e: (e[0].func.qname, e[0].node.lineno)
            ):
                if w.func.qname in seen_funcs:
                    continue
                seen_funcs.add(w.func.qname)
                yield _finding(
                    w.func,
                    w.node,
                    "RPR014",
                    f"attribute 'self.{attr}' is written without a lock "
                    f"here but under '{lock_names}' in "
                    f"{', '.join(locked_in)}(); concurrent threads can "
                    "tear or lose this update",
                )

    # -- RPR014b: inconsistent lock-acquisition order -------------------
    edges: dict[tuple[str, str], list[LockOrderEdge]] = {}
    for fx in facts.values():
        for e in fx.order_edges:
            edges.setdefault((e.first, e.second), []).append(e)
    reported: set[frozenset[str]] = set()
    for (a, b), sites in sorted(edges.items()):
        pair = frozenset((a, b))
        if pair in reported or (b, a) not in edges:
            continue
        reported.add(pair)
        other = edges[(b, a)]
        e = min(sites, key=lambda e: (e.func.module.rel, e.node.lineno))
        o = min(other, key=lambda e: (e.func.module.rel, e.node.lineno))
        yield _finding(
            e.func,
            e.node,
            "RPR014",
            f"lock '{_short(b)}' is acquired while holding "
            f"'{_short(a)}' here, but {o.func.qname}() acquires them in "
            "the opposite order; the two paths can deadlock (ABBA)",
        )

    # -- RPR015: blocking calls under a lock ----------------------------
    direct_map: dict[str, list[tuple[ast.Call, str]]] = {
        qn: _direct_blocking(fn) for qn, fn in program.functions.items()
    }
    # one propagation round: callee-of-callee blocking surfaces too
    closure_map: dict[str, list[tuple[str, str]]] = {}
    for qn, fn in program.functions.items():
        entries: list[tuple[str, str]] = []
        for site in program.calls.get(qn, []):
            f3 = site.node.func
            if not (
                isinstance(f3, ast.Name)
                or (
                    isinstance(f3, ast.Attribute)
                    and _self_attr(f3) is not None
                )
            ):
                continue  # same confidence bar as the direct step
            for callee in site.callees:
                for _node, op in direct_map.get(callee, []):
                    entries.append((callee, op))
        closure_map[qn] = entries

    for qn in sorted(facts):
        fx = facts[qn]
        for call in fx.calls:
            held = tuple(
                dict.fromkeys(
                    tuple(call.held)
                    + tuple(sorted(held_bonus.get(qn, frozenset())))
                )
            )
            if not held:
                continue
            name = _call_name(call.node)
            if (
                name in ("wait", "wait_for")
                and isinstance(call.node.func, ast.Attribute)
            ):
                try:
                    recv = ast.unparse(call.node.func.value)
                except Exception:  # pragma: no cover
                    recv = ""
                if recv in call.held_exprs:
                    continue  # cv.wait() releases the lock it waits on
            lock_txt = ", ".join(_short(h) for h in held)
            op = _blocking_op(call.node, fx.func, _BLOCKING_CALLS)
            if op == "join" and _is_str_join(call.node):
                op = None
            if op is not None:
                yield _finding(
                    fx.func,
                    call.node,
                    "RPR015",
                    f"blocking '{op}()' while holding lock "
                    f"[{lock_txt}]; every thread contending on the "
                    "lock stalls behind this I/O",
                )
                continue
            site = program.call_at(call.node)
            if site is None:
                continue
            # Only follow high-confidence edges: self.method() and bare
            # f() calls.  obj.method() edges are name-matched and too
            # often link look-alike APIs (queue.put vs cache.put); the
            # callee's own body is still analyzed in its own right.
            f2 = call.node.func
            confident = isinstance(f2, ast.Name) or (
                isinstance(f2, ast.Attribute) and _self_attr(f2) is not None
            )
            if not confident:
                continue
            for callee in site.callees:
                blk = direct_map.get(callee, [])
                if blk:
                    _n, op2 = blk[0]
                    yield _finding(
                        fx.func,
                        call.node,
                        "RPR015",
                        f"call to {callee}() while holding lock "
                        f"[{lock_txt}]: it performs blocking "
                        f"'{op2}()'",
                    )
                    break
                deeper = closure_map.get(callee, [])
                if deeper:
                    mid, op2 = deeper[0]
                    yield _finding(
                        fx.func,
                        call.node,
                        "RPR015",
                        f"call to {callee}() while holding lock "
                        f"[{lock_txt}]: it reaches blocking "
                        f"'{op2}()' via {mid}()",
                    )
                    break
