"""SARIF 2.1.0 export for ``repro check`` findings.

Emits one run with the full RPR010–RPR015 rule metadata in
``tool.driver.rules`` and one result per finding.  Baseline-waived
findings are included with an ``external`` suppression (GitHub code
scanning hides them but keeps the audit trail); ``# noqa`` waivers are
included with an ``inSource`` suppression.  Column numbers are
converted from 0-based AST offsets to SARIF's 1-based convention.
"""

from __future__ import annotations

import json

from repro.analysis.commcheck.baseline import BaselineEntry
from repro.analysis.commcheck.model import CheckFinding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-check"
TOOL_URI = "docs/static-analysis.md"


def _result(
    finding: CheckFinding,
    rule_index: dict[str, int],
    suppression: dict | None = None,
) -> dict:
    out: dict = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.code in rule_index:
        out["ruleIndex"] = rule_index[finding.code]
    if finding.function:
        out["partialFingerprints"] = {
            "reproCheckFunction/v1": f"{finding.code}:{finding.path}:"
            f"{finding.function}"
        }
    if suppression is not None:
        out["suppressions"] = [suppression]
    return out


def to_sarif(
    findings: list[CheckFinding],
    waived: list[tuple[CheckFinding, BaselineEntry]] | None = None,
    suppressed: list[CheckFinding] | None = None,
    rules: list[dict] | None = None,
    tool_version: str = "0",
) -> dict:
    """Build the SARIF document (a plain JSON-serializable dict)."""
    rules = rules or []
    rule_index = {r["code"]: i for i, r in enumerate(rules)}
    results = [_result(f, rule_index) for f in findings]
    for f, entry in waived or []:
        results.append(
            _result(
                f,
                rule_index,
                suppression={
                    "kind": "external",
                    "justification": entry.justification,
                },
            )
        )
    for f in suppressed or []:
        results.append(
            _result(f, rule_index, suppression={"kind": "inSource"})
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": TOOL_URI,
                        "rules": [
                            {
                                "id": r["code"],
                                "name": r["name"],
                                "shortDescription": {"text": r["summary"]},
                                "fullDescription": {"text": r["rationale"]},
                                "defaultConfiguration": {"level": "error"},
                            }
                            for r in rules
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def sarif_json(doc: dict) -> str:
    return json.dumps(doc, indent=2, sort_keys=True)
