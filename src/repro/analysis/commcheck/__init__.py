"""Whole-program comm-protocol & lock-discipline analyzer (``repro check``).

Layered pipeline (each module usable on its own):

* :mod:`~repro.analysis.commcheck.callgraph` — program loader: modules,
  resolved constants, functions, heuristic call graph;
* :mod:`~repro.analysis.commcheck.summary` — communication-site
  extraction (every ``yield from comm.<op>(...)`` with tag/phase/loop
  context);
* :mod:`~repro.analysis.commcheck.protocol` — RPR010–RPR013 protocol
  checks over the summary;
* :mod:`~repro.analysis.commcheck.locks` — RPR014–RPR015 lock
  discipline over the threaded serve/cluster code;
* :mod:`~repro.analysis.commcheck.baseline` — checked-in suppression
  file with stale-entry detection;
* :mod:`~repro.analysis.commcheck.sarif` — SARIF 2.1.0 export;
* :mod:`~repro.analysis.commcheck.engine` — the orchestrator behind
  ``repro check``.
"""

from repro.analysis.commcheck.baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
)
from repro.analysis.commcheck.callgraph import Program, load_program
from repro.analysis.commcheck.engine import (
    CheckReport,
    run_check,
    run_check_with_baseline_file,
)
from repro.analysis.commcheck.model import (
    CheckFinding,
    CommSite,
    CommSummary,
    TagInfo,
)
from repro.analysis.commcheck.rules import COMMCHECK_CODES
from repro.analysis.commcheck.sarif import sarif_json, to_sarif
from repro.analysis.commcheck.summary import extract_summary

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "CheckFinding",
    "CheckReport",
    "CommSite",
    "CommSummary",
    "COMMCHECK_CODES",
    "Program",
    "TagInfo",
    "apply_baseline",
    "extract_summary",
    "load_baseline",
    "load_program",
    "run_check",
    "run_check_with_baseline_file",
    "sarif_json",
    "to_sarif",
]
