"""Program loader and call-graph builder for ``repro check``.

Parses every ``.py`` file under the given paths into a :class:`Program`:
modules with resolved integer constants (including ``from x import TAG``
chains), functions keyed by qualified name, and a name-resolved call
graph.  Resolution is deliberately heuristic — Python has no static
dispatch — but errs toward *under*-linking (an unresolvable callee is
simply absent from the graph) so downstream passes stay low-noise.

Callee resolution, in order of confidence:

* ``self.m(...)`` inside ``class C`` → ``module.C.m`` when it exists;
* bare ``f(...)`` → same-module function, else the target of a
  ``from ... import f``;
* ``obj.m(...)`` → every in-program function named ``m``, but only when
  that name is rare (``<= _MAX_NAME_CANDIDATES`` definitions) — common
  method names like ``get`` are too ambiguous to link.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Skip name-based (``obj.m``) edges when more functions than this share
#: the bare name — the edge would be noise, not signal.
_MAX_NAME_CANDIDATES = 6

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def local_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree, *excluding* nested function/class scopes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method in the analyzed program."""

    qname: str  # "pkg.mod.Class.name" or "pkg.mod.name"
    name: str
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    def body_nodes(self) -> Iterator[ast.AST]:
        return local_walk(self.node)


@dataclass
class CallSite:
    """One call expression with its candidate callees."""

    caller: FunctionInfo
    node: ast.Call
    callees: tuple[str, ...]
    in_loop: bool


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    rel: str
    name: str  # dotted, e.g. "repro.serve.cache"
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)
    constants: dict[str, int] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    parent: dict[int, ast.AST] = field(default_factory=dict)  # id(node) -> parent
    _raw_consts: dict[str, ast.expr] = field(default_factory=dict)

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        return self.parent.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parent_of(node)
        while cur is not None:
            yield cur
            cur = self.parent_of(cur)


@dataclass
class Program:
    """The whole analyzed program."""

    root: Path
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    by_name: dict[str, list[FunctionInfo]] = field(default_factory=dict)
    constants: dict[str, int] = field(default_factory=dict)  # dotted full
    calls: dict[str, list[CallSite]] = field(default_factory=dict)
    callers: dict[str, list[CallSite]] = field(default_factory=dict)
    parse_errors: list[tuple[str, int, str]] = field(default_factory=list)
    _site_index: dict[int, CallSite] = field(default_factory=dict)

    # -- lookups --------------------------------------------------------

    def module_of(self, rel: str) -> ModuleInfo | None:
        for m in self.modules.values():
            if m.rel == rel:
                return m
        return None

    def call_at(self, node: ast.AST) -> CallSite | None:
        return self._site_index.get(id(node))

    def lookup_constant(self, dotted: str) -> int | None:
        """Resolve a dotted constant name, matching by suffix."""
        if dotted in self.constants:
            return self.constants[dotted]
        hits = {
            v
            for k, v in self.constants.items()
            if k.endswith("." + dotted)
        }
        return hits.pop() if len(hits) == 1 else None

    def functions_named(self, name: str) -> list[FunctionInfo]:
        return self.by_name.get(name, [])


# ----------------------------------------------------------------------
# loading


def _module_name(rel: str) -> str:
    parts = list(Path(rel).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "module"


def _relative(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve())).replace(
            "\\", "/"
        )
    except ValueError:
        return str(path).replace("\\", "/")


def _iter_py_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                yield f


def _collect_imports(mod: ModuleInfo) -> None:
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mod.imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Resolve "from .sibling import x" against this module's
                # package so constant lookups can follow the chain.
                pkg_parts = mod.name.split(".")[: -node.level]
                base = ".".join(pkg_parts + ([node.module] if node.module else []))
            for alias in node.names:
                local = alias.asname or alias.name
                mod.imports[local] = f"{base}.{alias.name}" if base else alias.name


def _collect_raw_constants(mod: ModuleInfo) -> None:
    for node in mod.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt = node.targets[0]
            if isinstance(tgt, ast.Name):
                mod._raw_consts[tgt.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                mod._raw_consts[node.target.id] = node.value


def _eval_const(
    expr: ast.expr, mod: ModuleInfo, program: Program
) -> int | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        # bool is an int subclass; True/False are not tags.
        return None if isinstance(expr.value, bool) else expr.value
    if isinstance(expr, ast.Name):
        if expr.id in mod.constants:
            return mod.constants[expr.id]
        target = mod.imports.get(expr.id)
        if target is not None:
            return program.lookup_constant(target)
        return None
    if isinstance(expr, ast.Attribute):
        dotted = dotted_name(expr)
        return program.lookup_constant(dotted) if dotted else None
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        v = _eval_const(expr.operand, mod, program)
        return -v if v is not None else None
    if isinstance(expr, ast.BinOp):
        left = _eval_const(expr.left, mod, program)
        right = _eval_const(expr.right, mod, program)
        if left is None or right is None:
            return None
        if isinstance(expr.op, ast.Add):
            return left + right
        if isinstance(expr.op, ast.Sub):
            return left - right
        if isinstance(expr.op, ast.Mult):
            return left * right
        if isinstance(expr.op, ast.FloorDiv) and right != 0:
            return left // right
        if isinstance(expr.op, ast.LShift):
            return left << right
    return None


def resolve_int(
    expr: ast.expr, func: FunctionInfo, program: Program
) -> int | None:
    """Resolve an arbitrary in-function expression to an int constant."""
    return _eval_const(expr, func.module, program)


def _collect_functions(mod: ModuleInfo, program: Program) -> None:
    def add(node: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None):
        qname = (
            f"{mod.name}.{cls}.{node.name}" if cls else f"{mod.name}.{node.name}"
        )
        info = FunctionInfo(
            qname=qname, name=node.name, module=mod, node=node, class_name=cls
        )
        mod.functions[qname] = info
        program.functions[qname] = info
        program.by_name.setdefault(node.name, []).append(info)

    for node in mod.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(node, None)
        elif isinstance(node, ast.ClassDef):
            mod.classes[node.name] = node
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add(item, node.name)
            # nested defs inside methods are rare rank-program closures;
            # record them too so comm sites inside them are attributed.
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for sub in ast.walk(item):
                        if (
                            isinstance(
                                sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                            )
                            and sub is not item
                        ):
                            qn = f"{mod.name}.{node.name}.{item.name}.{sub.name}"
                            info = FunctionInfo(
                                qname=qn,
                                name=sub.name,
                                module=mod,
                                node=sub,
                                class_name=node.name,
                            )
                            mod.functions[qn] = info
                            program.functions[qn] = info
                            program.by_name.setdefault(sub.name, []).append(
                                info
                            )
    # module-level nested closures (rank programs defined inside funcs)
    for node in mod.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if (
                    isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and sub is not node
                ):
                    qn = f"{mod.name}.{node.name}.{sub.name}"
                    if qn not in mod.functions:
                        info = FunctionInfo(
                            qname=qn, name=sub.name, module=mod, node=sub
                        )
                        mod.functions[qn] = info
                        program.functions[qn] = info
                        program.by_name.setdefault(sub.name, []).append(info)


def _in_loop(func: FunctionInfo, node: ast.AST) -> bool:
    mod = func.module
    for anc in mod.ancestors(node):
        if anc is func.node:
            return False
        if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
            return True
    return False


def _resolve_callees(
    call: ast.Call, func: FunctionInfo, program: Program
) -> tuple[str, ...]:
    mod = func.module
    f = call.func
    out: list[str] = []
    if isinstance(f, ast.Name):
        # same-module function / class constructor / imported function
        cand = f"{mod.name}.{f.id}"
        if cand in program.functions:
            out.append(cand)
        elif f.id in mod.classes:
            init = f"{mod.name}.{f.id}.__init__"
            if init in program.functions:
                out.append(init)
        else:
            target = mod.imports.get(f.id)
            if target is not None:
                for fn in program.functions_named(target.rsplit(".", 1)[-1]):
                    if fn.qname == target or fn.qname.endswith("." + target):
                        out.append(fn.qname)
                if not out and target in program.modules:
                    pass  # module import, not a call target
                # imported class constructor
                if not out:
                    init_owner = target.rsplit(".", 1)[-1]
                    for fn in program.functions_named("__init__"):
                        if fn.class_name == init_owner and (
                            fn.qname == f"{target}.__init__"
                            or fn.qname.endswith(f".{target}.__init__")
                        ):
                            out.append(fn.qname)
    elif isinstance(f, ast.Attribute):
        if isinstance(f.value, ast.Name) and f.value.id == "self":
            if func.class_name:
                cand = f"{mod.name}.{func.class_name}.{f.attr}"
                if cand in program.functions:
                    return (cand,)
        named = program.functions_named(f.attr)
        if 0 < len(named) <= _MAX_NAME_CANDIDATES:
            out.extend(fn.qname for fn in named if fn.qname != func.qname)
    return tuple(dict.fromkeys(out))


def _collect_calls(mod: ModuleInfo, program: Program) -> None:
    for func in mod.functions.values():
        sites: list[CallSite] = []
        for node in func.body_nodes():
            if isinstance(node, ast.Call):
                callees = _resolve_callees(node, func, program)
                site = CallSite(
                    caller=func,
                    node=node,
                    callees=callees,
                    in_loop=_in_loop(func, node),
                )
                sites.append(site)
                program._site_index[id(node)] = site
                for qn in callees:
                    program.callers.setdefault(qn, []).append(site)
        program.calls[func.qname] = sites


def load_program(
    paths: Iterable[str | Path], root: Path | None = None
) -> Program:
    """Parse every ``.py`` under ``paths`` into a linked :class:`Program`."""
    root = (root or Path.cwd()).resolve()
    program = Program(root=root)
    mods: list[ModuleInfo] = []
    for path in _iter_py_files(paths):
        rel = _relative(path, root)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            program.parse_errors.append((rel, exc.lineno or 1, exc.msg or ""))
            continue
        mod = ModuleInfo(
            path=path,
            rel=rel,
            name=_module_name(rel),
            tree=tree,
            source=source,
            lines=source.splitlines(),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                mod.parent[id(child)] = parent
        _collect_imports(mod)
        _collect_raw_constants(mod)
        mods.append(mod)
        program.modules[mod.name] = mod
    # two-phase constant resolution so cross-module chains settle
    for mod in mods:
        _collect_functions(mod, program)
    for _ in range(4):
        changed = False
        for mod in mods:
            for name, expr in mod._raw_consts.items():
                if name in mod.constants:
                    continue
                v = _eval_const(expr, mod, program)
                if v is not None:
                    mod.constants[name] = v
                    program.constants[f"{mod.name}.{name}"] = v
                    changed = True
        if not changed:
            break
    for mod in mods:
        _collect_calls(mod, program)
    return program
