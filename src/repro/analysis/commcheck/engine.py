"""Orchestrator for ``repro check``.

Loads the program, extracts the communication summary, runs the
protocol and lock passes, then applies waivers in order: ``# noqa``
comments first (inline, visible at the site), then the checked-in
baseline (documented false positives).  The report carries everything
CI needs: kept findings, both waiver kinds, stale baseline entries and
the comm summary itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.lint import _noqa_codes
from repro.analysis.commcheck.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.analysis.commcheck.callgraph import Program, load_program
from repro.analysis.commcheck.locks import check_lock_discipline
from repro.analysis.commcheck.model import CheckFinding, CommSummary
from repro.analysis.commcheck.protocol import (
    check_collective_divergence,
    check_reserved_tags,
    check_tag_matching,
    check_wildcard_recv_loops,
)
from repro.analysis.commcheck.rules import COMMCHECK_CODES
from repro.analysis.commcheck.summary import extract_summary

_PASSES = (
    check_collective_divergence,
    check_tag_matching,
    check_wildcard_recv_loops,
    check_reserved_tags,
)


@dataclass
class CheckReport:
    """Outcome of one ``repro check`` run."""

    findings: list[CheckFinding]
    suppressed: list[CheckFinding]  # # noqa waivers
    waived: list[tuple[CheckFinding, BaselineEntry]]  # baseline waivers
    stale_baseline: list[BaselineEntry]
    files_checked: int
    summary: CommSummary

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return out

    def format(self, show_summary: bool = False) -> str:
        lines = [f.format() for f in self.findings]
        by_code = ", ".join(
            f"{code} x{n}" for code, n in sorted(self.counts().items())
        )
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({by_code if by_code else 'none'}), "
            f"{len(self.suppressed)} waived by noqa, "
            f"{len(self.waived)} waived by baseline, "
            f"{self.files_checked} file(s) checked, "
            f"{len(self.summary.sites)} comm site(s)"
        )
        for entry in self.stale_baseline:
            lines.append(
                f"stale baseline entry (no longer reported): "
                f"{entry.describe()}"
            )
        if show_summary:
            lines.append("")
            lines.append("communication summary:")
            for s in self.summary.to_dicts():
                tag = f" tag={s['tag']}" if s["tag"] else ""
                phase = f" phase={s['phase']}" if s["phase"] else ""
                loop = " loop" if s["in_loop"] else ""
                lines.append(
                    f"  {s['path']}:{s['line']} {s['kind']}:{s['op']}"
                    f"{tag}{phase}{loop} [{s['function']}]"
                )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "suppressed": [f.to_dict() for f in self.suppressed],
                "waived": [
                    {"finding": f.to_dict(), "entry": e.to_dict()}
                    for f, e in self.waived
                ],
                "stale_baseline": [
                    e.to_dict() for e in self.stale_baseline
                ],
                "counts": self.counts(),
                "files_checked": self.files_checked,
                "comm_sites": len(self.summary.sites),
                "ok": self.ok,
            },
            indent=2,
            sort_keys=True,
        )


@dataclass
class CheckOptions:
    """Knobs for :func:`run_check`."""

    select: Iterable[str] | None = None
    baseline: list[BaselineEntry] = field(default_factory=list)


def _apply_noqa(
    program: Program, findings: list[CheckFinding]
) -> tuple[list[CheckFinding], list[CheckFinding]]:
    kept: list[CheckFinding] = []
    suppressed: list[CheckFinding] = []
    lines_by_rel = {m.rel: m.lines for m in program.modules.values()}
    for f in findings:
        lines = lines_by_rel.get(f.path, [])
        line = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        waived = _noqa_codes(line)
        if waived is not None and (not waived or f.code in waived):
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def run_check(
    paths: Iterable[str | Path],
    root: Path | None = None,
    select: Iterable[str] | None = None,
    baseline: list[BaselineEntry] | None = None,
) -> CheckReport:
    """Run every whole-program pass over ``paths``."""
    if select is not None:
        want = {c.strip().upper() for c in select}
        unknown = want - set(COMMCHECK_CODES)
        if unknown:
            raise ValueError(
                f"unknown rule code(s): {sorted(unknown)}; "
                f"known: {list(COMMCHECK_CODES)}"
            )
    else:
        want = set(COMMCHECK_CODES)

    program = load_program(paths, root=root)
    summary = extract_summary(program)
    findings: list[CheckFinding] = [
        CheckFinding(
            path=rel,
            line=line,
            col=0,
            code="RPR000",
            message=f"syntax error: {msg}",
        )
        for rel, line, msg in program.parse_errors
    ]
    for pazz in _PASSES:
        findings.extend(pazz(program, summary))
    findings.extend(check_lock_discipline(program))
    findings = sorted(
        f for f in findings if f.code in want or f.code == "RPR000"
    )

    findings, suppressed = _apply_noqa(program, findings)
    result = apply_baseline(findings, baseline or [])
    return CheckReport(
        findings=result.kept,
        suppressed=suppressed,
        waived=result.waived,
        stale_baseline=result.stale,
        files_checked=len(program.modules) + len(program.parse_errors),
        summary=summary,
    )


def run_check_with_baseline_file(
    paths: Iterable[str | Path],
    root: Path | None = None,
    select: Iterable[str] | None = None,
    baseline_path: str | Path | None = None,
) -> CheckReport:
    """:func:`run_check`, loading the baseline file when it exists."""
    entries: list[BaselineEntry] = []
    if baseline_path is not None and Path(baseline_path).is_file():
        entries = load_baseline(baseline_path)
    return run_check(paths, root=root, select=select, baseline=entries)
