"""Communication-protocol checks (RPR010–RPR013).

All four passes consume the whole-program :class:`CommSummary` plus the
call graph, so they see defects no per-file linter can:

* **RPR010** — a collective executed in one arm of a rank-dependent
  branch but not the other: ranks that take the bare arm never join and
  every other rank hangs.  Also catches an early ``return`` under a
  rank test with collectives after it.
* **RPR011** — a user-range tag that is sent somewhere but received
  nowhere in the program (or vice versa): the message can never be
  consumed, which is either dead traffic or a latent deadlock.
* **RPR012** — a *blocking* wildcard-source receive reachable inside a
  loop with no source disambiguation (`status.source` never inspected):
  two sends can race and be consumed in either order, breaking the
  bit-determinism contract.  Interprocedural: the loop may be in a
  caller.
* **RPR013** — a tag at or above ``MAX_USER_TAG`` (or a reserved
  ``_TAG_*`` constant) used outside the tag-authority modules: forging
  collective/heartbeat tags corrupts protocol state for every rank.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import TAG_CONSTANT_MODULES
from repro.analysis.commcheck.callgraph import (
    FunctionInfo,
    Program,
    local_walk,
)
from repro.analysis.commcheck.model import (
    CheckFinding,
    CommSite,
    CommSummary,
)

#: Mirror of :data:`repro.machine.simmpi.MAX_USER_TAG`, used only when
#: the authority module is outside the analyzed path set (a test
#: asserts the two stay equal).
MAX_USER_TAG_FALLBACK = 10_000_000


def _max_user_tag(program: Program) -> int:
    v = program.lookup_constant("machine.simmpi.MAX_USER_TAG")
    return v if v is not None else MAX_USER_TAG_FALLBACK


def _finding(
    site_or_func: CommSite | FunctionInfo,
    node: ast.AST,
    code: str,
    message: str,
) -> CheckFinding:
    func = (
        site_or_func.func
        if isinstance(site_or_func, CommSite)
        else site_or_func
    )
    return CheckFinding(
        path=func.module.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
        function=func.qname,
    )


def _is_tag_authority(rel: str) -> bool:
    return any(rel.endswith(m) for m in TAG_CONSTANT_MODULES)


# ----------------------------------------------------------------------
# RPR010 — collective divergence across rank-dependent control flow


def _mentions_rank(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in ("rank", "vrank"):
            return True
        if isinstance(node, ast.Attribute) and node.attr in ("rank", "vrank"):
            return True
    return False


def _subtree_ids(stmts: list[ast.stmt]) -> set[int]:
    out: set[int] = set()
    for s in stmts:
        for n in ast.walk(s):
            out.add(id(n))
    return out


def _has_toplevel_return(stmts: list[ast.stmt]) -> bool:
    return any(isinstance(s, ast.Return) for s in stmts)


def check_collective_divergence(
    program: Program, summary: CommSummary
) -> Iterator[CheckFinding]:
    by_func: dict[str, list[CommSite]] = {}
    for site in summary.collectives():
        by_func.setdefault(site.func.qname, []).append(site)
    for qname, sites in sorted(by_func.items()):
        func = program.functions[qname]
        for node in local_walk(func.node):
            if not isinstance(node, ast.If) or not _mentions_rank(node.test):
                continue
            body_ids = _subtree_ids(node.body)
            else_ids = _subtree_ids(node.orelse)
            in_body = [s for s in sites if id(s.node) in body_ids]
            in_else = [s for s in sites if id(s.node) in else_ids]
            body_ops = {s.op for s in in_body}
            else_ops = {s.op for s in in_else}
            try:
                test_txt = ast.unparse(node.test)
            except Exception:  # pragma: no cover
                test_txt = "<rank test>"
            for s in in_body:
                if s.op not in else_ops:
                    yield _finding(
                        s,
                        s.node,
                        "RPR010",
                        f"collective '{s.op}' runs only when rank test "
                        f"`{test_txt}` is true; ranks taking the other "
                        "path never join it and the collective hangs",
                    )
            for s in in_else:
                if s.op not in body_ops:
                    yield _finding(
                        s,
                        s.node,
                        "RPR010",
                        f"collective '{s.op}' runs only when rank test "
                        f"`{test_txt}` is false; ranks taking the other "
                        "path never join it and the collective hangs",
                    )
            # early return under a rank test with collectives after it
            if _has_toplevel_return(node.body) and not node.orelse:
                if_ids = _subtree_ids([node])
                later = [
                    s
                    for s in sites
                    if id(s.node) not in if_ids
                    and s.pos > (node.lineno, node.col_offset)
                ]
                if later and not in_body:
                    s = min(later, key=lambda s: s.pos)
                    yield _finding(
                        s,
                        s.node,
                        "RPR010",
                        f"collective '{s.op}' is skipped by the early "
                        f"return under rank test `{test_txt}`; the "
                        "remaining ranks hang waiting for it",
                    )


# ----------------------------------------------------------------------
# RPR011 — tags sent but never received (and vice versa)


def _tag_key(site: CommSite, max_user: int):
    t = site.tag
    if t is None or t.wildcard:
        return None
    if t.value is not None:
        if t.value >= max_user or t.value < 0:
            return None  # reserved space is RPR013's domain
        return ("val", t.value)
    if t.symbol is not None and t.symbol.isidentifier():
        return ("sym", t.symbol.rsplit(".", 1)[-1])
    return None


def check_tag_matching(
    program: Program, summary: CommSummary
) -> Iterator[CheckFinding]:
    max_user = _max_user_tag(program)
    sends: dict[object, list[CommSite]] = {}
    recvs: dict[object, list[CommSite]] = {}
    wildcard_tag_recv = False
    for site in summary.p2p():
        key = _tag_key(site, max_user)
        if site.kind in ("recv", "probe", "both"):
            if site.tag is not None and site.tag.wildcard:
                wildcard_tag_recv = True
            if key is not None:
                recvs.setdefault(key, []).append(site)
        if site.kind in ("send", "both") and key is not None:
            sends.setdefault(key, []).append(site)

    def symbolic_names(table: dict[object, list[CommSite]]) -> set[str]:
        out: set[str] = set()
        for sites in table.values():
            for s in sites:
                if s.tag and s.tag.symbol:
                    out.add(s.tag.symbol.rsplit(".", 1)[-1])
        return out

    recv_syms = symbolic_names(recvs)
    send_syms = symbolic_names(sends)

    def matched(key: object, other: dict, other_syms: set[str], sites) -> bool:
        if key in other:
            return True
        # value-keyed on one side, symbol-keyed on the other (or the
        # reverse): fall back to matching by constant *name*.
        for s in sites:
            if s.tag and s.tag.symbol:
                if s.tag.symbol.rsplit(".", 1)[-1] in other_syms:
                    return True
        return False

    for key in sorted(sends, key=str):
        if matched(key, recvs, recv_syms, sends[key]) or wildcard_tag_recv:
            continue
        site = min(sends[key], key=lambda s: (s.func.module.rel, s.pos))
        tag_txt = site.tag.describe() if site.tag else str(key)
        n = len(sends[key])
        extra = f" ({n} send site(s))" if n > 1 else ""
        phase = f" in phase '{site.phase}'" if site.phase else ""
        yield _finding(
            site,
            site.node,
            "RPR011",
            f"tag {tag_txt} is sent{phase} but no receive for it exists "
            f"anywhere in the program{extra}; the message can never be "
            "consumed",
        )
    for key in sorted(recvs, key=str):
        if matched(key, sends, send_syms, recvs[key]):
            continue
        site = min(recvs[key], key=lambda s: (s.func.module.rel, s.pos))
        tag_txt = site.tag.describe() if site.tag else str(key)
        phase = f" in phase '{site.phase}'" if site.phase else ""
        yield _finding(
            site,
            site.node,
            "RPR011",
            f"tag {tag_txt} is received{phase} but never sent anywhere "
            "in the program; this receive blocks forever",
        )


# ----------------------------------------------------------------------
# RPR012 — unguarded blocking wildcard receive reachable in a loop


def _enclosing_loop(site: CommSite) -> ast.AST | None:
    for anc in site.func.module.ancestors(site.node):
        if anc is site.func.node:
            return None
        if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
            return anc
    return None


def _inspects_source(root: ast.AST) -> bool:
    for node in ast.walk(root):
        if isinstance(node, ast.Attribute) and node.attr == "source":
            return True
    return False


def check_wildcard_recv_loops(
    program: Program, summary: CommSummary
) -> Iterator[CheckFinding]:
    for site in summary.p2p():
        if site.kind != "recv" or not site.blocking or not site.src_wildcard:
            continue
        loop = _enclosing_loop(site)
        if loop is not None:
            if not _inspects_source(loop):
                yield _finding(
                    site,
                    site.node,
                    "RPR012",
                    f"blocking wildcard-source '{site.op}' inside a loop "
                    "with no status.source disambiguation; racing sends "
                    "can be consumed in either order, breaking "
                    "bit-determinism",
                )
            continue
        # not lexically in a loop: a caller may loop over this function
        if _inspects_source(site.func.node):
            continue
        flagged = False
        frontier = [site.func.qname]
        seen = {site.func.qname}
        for _depth in range(2):
            nxt: list[str] = []
            for qn in frontier:
                for call in program.callers.get(qn, []):
                    if flagged:
                        break
                    if call.in_loop and not _inspects_source(
                        call.caller.node
                    ):
                        yield _finding(
                            site,
                            site.node,
                            "RPR012",
                            f"blocking wildcard-source '{site.op}' is "
                            f"reached in a loop via {call.caller.qname} "
                            "with no status.source disambiguation; "
                            "racing sends can arrive in either order",
                        )
                        flagged = True
                    elif call.caller.qname not in seen:
                        seen.add(call.caller.qname)
                        nxt.append(call.caller.qname)
            if flagged:
                break
            frontier = nxt


# ----------------------------------------------------------------------
# RPR013 — reserved-tag forgery outside the tag authority


_RESERVED_PREFIXES = ("_TAG_", "_COLL_TAG")


def check_reserved_tags(
    program: Program, summary: CommSummary
) -> Iterator[CheckFinding]:
    max_user = _max_user_tag(program)
    for site in summary.p2p():
        if _is_tag_authority(site.func.module.rel):
            continue
        t = site.tag
        if t is None or t.wildcard:
            continue
        sym = t.symbol.rsplit(".", 1)[-1] if t.symbol else ""
        if t.value is not None and t.value >= max_user:
            yield _finding(
                site,
                site.node,
                "RPR013",
                f"'{site.op}' uses tag {t.describe()} which is at or "
                f"above MAX_USER_TAG ({max_user}); the reserved space "
                "belongs to collectives/heartbeats and forging it "
                "corrupts protocol state",
            )
        elif any(sym.startswith(p) for p in _RESERVED_PREFIXES):
            yield _finding(
                site,
                site.node,
                "RPR013",
                f"'{site.op}' uses reserved tag constant {sym} outside "
                "the tag-authority modules "
                f"({', '.join(TAG_CONSTANT_MODULES)})",
            )
