"""Whole-program communication-summary extraction.

SimMPI rank programs are generators, so every communication operation is
invoked as ``yield from comm.<op>(...)`` — an :class:`ast.YieldFrom`
wrapping a call.  That syntactic anchor cleanly separates the comm
surface from look-alike socket/pipe methods (``sock.recv``,
``conn.send_bytes``), which are plain calls and belong to the lock pass
instead.

For every site we record the op, tag (resolved through module-level
constants and import chains), source-wildcardness, enclosing phase (the
last ``set_phase("...")`` lexically above it in the same function) and
loop context.
"""

from __future__ import annotations

import ast

from repro.analysis.commcheck.callgraph import (
    FunctionInfo,
    Program,
    dotted_name,
    resolve_int,
)
from repro.analysis.commcheck.model import (
    COLLECTIVE_OPS,
    P2P_OPS,
    RAW_PRIMITIVES,
    SENDRECV_OP,
    CommSite,
    CommSummary,
    TagInfo,
)

_WILDCARD_SRC_NAMES = {"ANY_SOURCE"}
_WILDCARD_TAG_NAMES = {"ANY_TAG"}


def _arg(call: ast.Call, pos: int, kw: str) -> ast.expr | None:
    for k in call.keywords:
        if k.arg == kw:
            return k.value
    if len(call.args) > pos:
        return call.args[pos]
    return None


def _last_component(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def resolve_tag(
    expr: ast.expr | None, func: FunctionInfo, program: Program
) -> TagInfo | None:
    if expr is None:
        return None
    dotted = dotted_name(expr)
    if dotted and _last_component(dotted) in _WILDCARD_TAG_NAMES:
        return TagInfo(wildcard=True, symbol=dotted)
    value = resolve_int(expr, func, program)
    if dotted is not None:
        return TagInfo(value=value, symbol=dotted)
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return TagInfo(value=expr.value)
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = "<expr>"
    return TagInfo(value=value, symbol=text)


def _src_wildcard(
    call: ast.Call, pos: int, has_default_wildcard: bool
) -> bool | None:
    expr = _arg(call, pos, "src")
    if expr is None:
        # simmpi recv/irecv/iprobe/drain_recv default src=ANY_SOURCE
        return True if has_default_wildcard else None
    dotted = dotted_name(expr)
    if dotted and _last_component(dotted) in _WILDCARD_SRC_NAMES:
        return True
    if isinstance(expr, ast.Constant) or dotted:
        return False
    return None  # dynamic expression — unknown


#: recv-side ops whose ``src`` parameter *defaults* to ANY_SOURCE.
_DEFAULT_WILDCARD_OPS = frozenset(
    {"recv", "_recv", "irecv", "drain_recv", "iprobe", "_iprobe"}
)


def _comm_call(node: ast.AST) -> tuple[ast.Call, str, str] | None:
    """``(call, op, comm_expr)`` when ``node`` is ``yield from c.op(...)``."""
    if not isinstance(node, ast.YieldFrom):
        return None
    call = node.value
    if not isinstance(call, ast.Call):
        return None
    f = call.func
    if not isinstance(f, ast.Attribute):
        return None
    try:
        comm_expr = ast.unparse(f.value)
    except Exception:  # pragma: no cover
        comm_expr = "<comm>"
    return call, f.attr, comm_expr


def _raw_site(node: ast.AST) -> str | None:
    """Primitive scheduler yields: ``yield ("inject", ...)`` tuples."""
    if not isinstance(node, ast.Yield) or node.value is None:
        return None
    v = node.value
    if (
        isinstance(v, ast.Tuple)
        and v.elts
        and isinstance(v.elts[0], ast.Constant)
        and isinstance(v.elts[0].value, str)
        and v.elts[0].value in RAW_PRIMITIVES
    ):
        return v.elts[0].value
    return None


def _phases_for(func: FunctionInfo) -> list[tuple[tuple[int, int], str]]:
    """``set_phase`` events in this function, position-sorted."""
    events: list[tuple[tuple[int, int], str]] = []
    for node in func.body_nodes():
        got = _comm_call(node)
        if got is None:
            continue
        call, op, _ = got
        if op == "set_phase" and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                events.append(
                    ((node.lineno, node.col_offset), arg.value)
                )
    events.sort()
    return events


def _phase_at(
    events: list[tuple[tuple[int, int], str]], pos: tuple[int, int]
) -> str | None:
    phase = None
    for epos, name in events:
        if epos <= pos:
            phase = name
        else:
            break
    return phase


def _in_loop(func: FunctionInfo, node: ast.AST) -> bool:
    for anc in func.module.ancestors(node):
        if anc is func.node:
            return False
        if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
            return True
    return False


def extract_summary(program: Program) -> CommSummary:
    """Every communication site in the program, with full context."""
    summary = CommSummary()
    for func in program.functions.values():
        events = _phases_for(func)
        for node in func.body_nodes():
            raw = _raw_site(node)
            if raw is not None:
                summary.sites.append(
                    CommSite(
                        func=func,
                        node=node,
                        op=raw,
                        kind="raw",
                        blocking=raw == "recv",
                        comm_expr="<scheduler>",
                        in_loop=_in_loop(func, node),
                        phase=_phase_at(
                            events, (node.lineno, node.col_offset)
                        ),
                    )
                )
                continue
            got = _comm_call(node)
            if got is None:
                continue
            call, op, comm_expr = got
            pos = (node.lineno, node.col_offset)
            phase = _phase_at(events, pos)
            in_loop = _in_loop(func, node)
            if op in COLLECTIVE_OPS:
                summary.sites.append(
                    CommSite(
                        func=func,
                        node=node,
                        op=op,
                        kind="collective",
                        blocking=True,
                        comm_expr=comm_expr,
                        phase=phase,
                        in_loop=in_loop,
                    )
                )
            elif op == SENDRECV_OP:
                summary.sites.append(
                    CommSite(
                        func=func,
                        node=node,
                        op=op,
                        kind="both",
                        blocking=True,
                        comm_expr=comm_expr,
                        tag=resolve_tag(_arg(call, 2, "tag"), func, program),
                        src_wildcard=_src_wildcard(call, 1, False),
                        phase=phase,
                        in_loop=in_loop,
                    )
                )
            elif op in P2P_OPS:
                direction, blocking, src_pos, tag_pos = P2P_OPS[op]
                kind = direction if direction != "probe" else "probe"
                site = CommSite(
                    func=func,
                    node=node,
                    op=op,
                    kind=kind,
                    blocking=blocking,
                    comm_expr=comm_expr,
                    tag=resolve_tag(
                        _arg(call, tag_pos, "tag"), func, program
                    ),
                    phase=phase,
                    in_loop=in_loop,
                )
                if direction in ("recv", "probe"):
                    site.src_wildcard = _src_wildcard(
                        call, src_pos, op in _DEFAULT_WILDCARD_OPS
                    )
                summary.sites.append(site)
    summary.sites.sort(key=lambda s: (s.func.module.rel, s.pos))
    return summary
