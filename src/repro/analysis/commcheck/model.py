"""Data model for the whole-program comm/lock analyzer (``repro check``).

Everything downstream of the loader works on these types:

* :class:`CheckFinding` — one defect at a source location, with the
  enclosing function recorded so baseline entries survive line drift;
* :class:`TagInfo` — a (possibly) resolved message-tag expression;
* :class:`CommSite` — one communication call site (p2p, probe or
  collective) with tag, phase and loop context;
* :class:`LockWrite` / :class:`LockedCall` — lock-discipline facts
  collected per class by :mod:`repro.analysis.commcheck.locks`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.commcheck.callgraph import FunctionInfo


@dataclass(frozen=True, order=True)
class CheckFinding:
    """One ``repro check`` finding.

    Unlike the per-file lint :class:`repro.analysis.lint.Finding`, this
    carries the enclosing function's qualified name: baseline entries
    match on ``(code, path, function, message substring)`` so they stay
    stable when unrelated edits shift line numbers.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    function: str = ""

    def format(self) -> str:
        where = f" [{self.function}]" if self.function else ""
        return (
            f"{self.path}:{self.line}:{self.col} {self.code} "
            f"{self.message}{where}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "function": self.function,
        }


@dataclass(frozen=True)
class TagInfo:
    """A message-tag expression, resolved as far as statically possible.

    ``value`` is the concrete integer when the expression reduces to
    module-level constants; ``symbol`` is the source spelling (dotted
    name or expression text) kept for messages and symbolic matching;
    ``wildcard`` marks ``ANY_TAG``.
    """

    value: int | None = None
    symbol: str | None = None
    wildcard: bool = False

    def describe(self) -> str:
        if self.wildcard:
            return "ANY_TAG"
        if self.symbol and self.value is not None:
            return f"{self.symbol} (= {self.value})"
        if self.symbol:
            return self.symbol
        if self.value is not None:
            return str(self.value)
        return "<unresolved>"


#: p2p ops: attr name -> (direction, blocking, src/dst argpos, tag argpos)
P2P_OPS: dict[str, tuple[str, bool, int, int]] = {
    "send": ("send", False, 0, 1),
    "_send": ("send", False, 0, 1),
    "isend": ("send", False, 0, 1),
    "recv": ("recv", True, 0, 1),
    "_recv": ("recv", True, 0, 1),
    "irecv": ("recv", False, 0, 1),
    "drain_recv": ("recv", False, 0, 1),
    "_drain": ("recv", False, 0, 1),
    "_tryrecv": ("recv", False, 0, 1),
    "iprobe": ("probe", False, 0, 1),
    "_iprobe": ("probe", False, 0, 1),
}

#: sendrecv is both sides: (dst, src, tag) positions.
SENDRECV_OP = "sendrecv"

#: Collective ops (every rank of the communicator must call them).
COLLECTIVE_OPS = frozenset(
    {
        "barrier",
        "bcast",
        "gather",
        "allgather",
        "reduce",
        "allreduce",
        "alltoall",
        "detect_failures",
    }
)

#: Raw scheduler primitives (``yield ("inject", ...)`` tuples).
RAW_PRIMITIVES = frozenset({"inject", "recv", "tryrecv", "iprobe", "drain"})


@dataclass
class CommSite:
    """One communication call site found in a rank program."""

    func: "FunctionInfo"
    node: ast.AST
    op: str  # "send", "recv", "bcast", ... (attr name or raw primitive)
    kind: str  # "send" | "recv" | "probe" | "both" | "collective" | "raw"
    blocking: bool
    comm_expr: str  # receiver expression text ("comm", "self", "sub")
    tag: TagInfo | None = None
    src_wildcard: bool | None = None  # recv side: ANY_SOURCE (or default)
    phase: str | None = None
    in_loop: bool = False

    @property
    def pos(self) -> tuple[int, int]:
        return (
            getattr(self.node, "lineno", 1),
            getattr(self.node, "col_offset", 0),
        )

    def to_dict(self) -> dict:
        return {
            "path": self.func.module.rel,
            "function": self.func.qname,
            "line": self.pos[0],
            "op": self.op,
            "kind": self.kind,
            "blocking": self.blocking,
            "comm": self.comm_expr,
            "tag": self.tag.describe() if self.tag else None,
            "src_wildcard": self.src_wildcard,
            "phase": self.phase,
            "in_loop": self.in_loop,
        }


@dataclass
class LockWrite:
    """A write to ``self.<attr>`` with the set of locks held at it."""

    attr: str
    held: frozenset[str]  # canonical lock ids ("pkg.mod.Cls._lock")
    func: "FunctionInfo"
    node: ast.AST


@dataclass
class LockedCall:
    """A call expression with lock-held context (for RPR015)."""

    node: ast.Call
    held: tuple[str, ...]  # acquisition-ordered canonical/heuristic ids
    held_exprs: frozenset[str]  # syntactic with-context texts
    func: "FunctionInfo"


@dataclass
class LockOrderEdge:
    """Lock B acquired while lock A held, at a concrete site."""

    first: str
    second: str
    func: "FunctionInfo"
    node: ast.AST


@dataclass
class CommSummary:
    """Whole-program communication summary."""

    sites: list[CommSite] = field(default_factory=list)

    def p2p(self) -> list[CommSite]:
        return [s for s in self.sites if s.kind in ("send", "recv", "probe", "both")]

    def collectives(self) -> list[CommSite]:
        return [s for s in self.sites if s.kind == "collective"]

    def to_dicts(self) -> list[dict]:
        return [
            s.to_dict()
            for s in sorted(
                self.sites, key=lambda s: (s.func.module.rel, s.pos)
            )
        ]
