"""Checked-in suppression baseline for ``repro check``.

``analysis-baseline.json`` records *documented false positives*: each
entry must say which finding it waives (code + path + enclosing
function + a message substring) and **why** (a non-empty
``justification``).  Matching deliberately ignores line numbers so
entries survive unrelated edits; stale entries (matching nothing) are
detected and fail CI via ``repro check --baseline-check`` so the file
can only shrink when the underlying code is fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.commcheck.model import CheckFinding

#: Default location, repo-root-relative (where CI runs from).
DEFAULT_BASELINE = "analysis-baseline.json"


class BaselineError(ValueError):
    """Malformed baseline file (bad JSON, missing fields)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One waived finding."""

    code: str
    path: str
    justification: str
    function: str = ""
    contains: str = ""

    def matches(self, f: CheckFinding) -> bool:
        if f.code != self.code or f.path != self.path:
            return False
        if self.function and f.function != self.function:
            return False
        if self.contains and self.contains not in f.message:
            return False
        return True

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "path": self.path,
            "justification": self.justification,
        }
        if self.function:
            out["function"] = self.function
        if self.contains:
            out["contains"] = self.contains
        return out

    def describe(self) -> str:
        where = f" [{self.function}]" if self.function else ""
        what = f" ~'{self.contains}'" if self.contains else ""
        return f"{self.code} {self.path}{where}{what}"


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    """Parse and validate a baseline file."""
    raw = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(
        data.get("entries"), list
    ):
        raise BaselineError(f"{path}: expected {{'entries': [...]}}")
    entries: list[BaselineEntry] = []
    for i, item in enumerate(data["entries"]):
        if not isinstance(item, dict):
            raise BaselineError(f"{path}: entries[{i}] is not an object")
        for key in ("code", "path", "justification"):
            if not isinstance(item.get(key), str) or not item[key].strip():
                raise BaselineError(
                    f"{path}: entries[{i}] needs a non-empty '{key}' "
                    "string (every waiver must be justified)"
                )
        entries.append(
            BaselineEntry(
                code=item["code"],
                path=item["path"],
                justification=item["justification"],
                function=str(item.get("function", "")),
                contains=str(item.get("contains", "")),
            )
        )
    return entries


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a finding list."""

    kept: list[CheckFinding] = field(default_factory=list)
    waived: list[tuple[CheckFinding, BaselineEntry]] = field(
        default_factory=list
    )
    stale: list[BaselineEntry] = field(default_factory=list)


def apply_baseline(
    findings: list[CheckFinding], entries: list[BaselineEntry]
) -> BaselineResult:
    """Split findings into kept vs waived; detect stale entries."""
    result = BaselineResult()
    used: set[int] = set()
    for f in findings:
        hit = None
        for i, entry in enumerate(entries):
            if entry.matches(f):
                hit = entry
                used.add(i)
                break
        if hit is None:
            result.kept.append(f)
        else:
            result.waived.append((f, hit))
    result.stale = [e for i, e in enumerate(entries) if i not in used]
    return result
