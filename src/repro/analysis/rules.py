"""The project lint rules (codes ``RPR001`` – ``RPR009``).

Each rule enforces one invariant the simulated machine depends on; the
rationale strings below are surfaced verbatim in
``docs/static-analysis.md``.  Rules are registered with
:func:`repro.analysis.lint.register` and instantiated fresh per engine
run, so they may keep per-file state inside ``check``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, LintContext, Rule, register

# ----------------------------------------------------------------------
# shared AST helpers


def _dotted(node: ast.AST) -> str | None:
    """Dotted name of an attribute chain (``np.random.rand``) or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _int_literal(node: ast.AST) -> bool:
    """Is this expression a literal integer (including ``-1``)?"""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is int


def _call_arg(
    call: ast.Call, position: int, keyword: str
) -> ast.AST | None:
    """The argument passed at ``position`` or as ``keyword=``, if any."""
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


def _contains(node: ast.AST, types: tuple) -> bool:
    return any(isinstance(n, types) for n in ast.walk(node))


#: Primitive-op strings whose third tuple element is a message tag.
_TAG_PRIMITIVES = {"recv", "tryrecv", "iprobe", "drain"}

#: Comm-surface calls -> positional index of their ``tag`` argument.
_TAGGED_CALLS = {
    "send": 1,
    "isend": 1,
    "recv": 1,
    "irecv": 1,
    "iprobe": 1,
    "drain_recv": 1,
    "sendrecv": 2,
}


def _is_sorted_wrapped(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"sorted", "min", "max"}
    )


def _unordered_iter_kind(node: ast.AST) -> str | None:
    """Classify a loop-iterable as hash-/dict-ordered, or None.

    Recognises ``X.items()/.keys()/.values()``, ``set(...)`` /
    ``frozenset(...)`` calls, set literals/comprehensions, and set
    algebra (``set(a) - b``) over any of those.  A ``sorted(...)``
    wrapper makes any of them ordered.
    """
    if _is_sorted_wrapped(node):
        return None
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {
            "set",
            "frozenset",
        }:
            return f"{node.func.id}()"
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "items",
            "keys",
            "values",
        }:
            return f".{node.func.attr}()"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
    ):
        return _unordered_iter_kind(node.left) or _unordered_iter_kind(
            node.right
        )
    return None


def _is_send_call(node: ast.AST) -> bool:
    """A comm send (``.send``/``.isend``/``._send``/``.sendrecv``) or a
    raw ``("inject", ...)`` primitive yield."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in {"send", "isend", "_send", "sendrecv"}:
            return True
    if isinstance(node, ast.Yield) and isinstance(node.value, ast.Tuple):
        elts = node.value.elts
        if (
            elts
            and isinstance(elts[0], ast.Constant)
            and elts[0].value == "inject"
        ):
            return True
    return False


# ----------------------------------------------------------------------
# rules


@register
class RawTagLiteral(Rule):
    code = "RPR001"
    name = "raw-tag-literal"
    summary = (
        "message-passing calls must use named TAG_* constants, not "
        "integer tag literals"
    )
    rationale = (
        "The simulated machine partitions its tag space: user tags live "
        "below MAX_USER_TAG, sub-communicator offsets and collective "
        "rounds above it.  A literal tag at a call site cannot be "
        "audited for collisions with the tag constants of other "
        "subsystems (DCF search/reply, halo exchange, heartbeat); a "
        "named module-level TAG_* constant can.  Only the tag-space "
        "authority modules (machine/simmpi.py, machine/event.py) may "
        "handle raw integers."
    )

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.in_tests and not ctx.is_tag_module

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                pos = _TAGGED_CALLS.get(node.func.attr)
                if pos is None:
                    continue
                tag = _call_arg(node, pos, "tag")
                if tag is not None and _int_literal(tag):
                    yield ctx.finding(
                        tag,
                        self.code,
                        f"literal tag in {node.func.attr}() call; use a "
                        "named TAG_* constant (< MAX_USER_TAG) or "
                        "ANY_TAG",
                    )
            elif isinstance(node, ast.Yield) and isinstance(
                node.value, ast.Tuple
            ):
                elts = node.value.elts
                if (
                    len(elts) >= 3
                    and isinstance(elts[0], ast.Constant)
                    and elts[0].value in _TAG_PRIMITIVES
                    and _int_literal(elts[2])
                ):
                    yield ctx.finding(
                        elts[2],
                        self.code,
                        f"literal tag in raw ({elts[0].value!r}, ...) "
                        "primitive; use a named TAG_* constant",
                    )


@register
class WallClock(Rule):
    code = "RPR002"
    name = "wall-clock-in-deterministic-path"
    summary = (
        "no wall-clock reads (time.time, datetime.now, ...) in "
        "deterministic packages"
    )
    rationale = (
        "All time in the simulator is virtual: golden-trace regression "
        "and bit-identical checkpoint resume assume that rerunning a "
        "program yields byte-identical timings.  One host-clock read "
        "in machine/solver/connectivity/resilience/core makes output "
        "depend on the wall clock of the machine running the test."
    )

    _CLOCKS = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_deterministic_path and not ctx.in_tests

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name in self._CLOCKS:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"wall-clock read {name}() in a deterministic "
                        "path; use virtual time (comm.now()) or accept "
                        "a value from the caller",
                    )


@register
class UnseededRng(Rule):
    code = "RPR003"
    name = "unseeded-rng-in-deterministic-path"
    summary = (
        "no unseeded / legacy-global RNG draws in deterministic packages"
    )
    rationale = (
        "Randomised behaviour is allowed (fault plans use it) but must "
        "flow from an explicit seed: np.random.default_rng(seed).  The "
        "legacy global numpy RNG and the stdlib random module draw "
        "from interpreter-global state that other tests mutate, so "
        "results depend on execution order."
    )

    _RANDOM_FUNCS = {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "seed",
        "getrandbits",
    }

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_deterministic_path and not ctx.in_tests

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            head, _, leaf = name.rpartition(".")
            if head in {"np.random", "numpy.random"}:
                if leaf == "default_rng":
                    if not node.args and not node.keywords:
                        yield ctx.finding(
                            node,
                            self.code,
                            "default_rng() without a seed draws OS "
                            "entropy; pass an explicit seed",
                        )
                else:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"legacy global RNG {name}(); use "
                        "np.random.default_rng(seed)",
                    )
            elif head == "random" and leaf in self._RANDOM_FUNCS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"stdlib global RNG {name}(); use "
                    "np.random.default_rng(seed)",
                )
            elif name == "default_rng" and not node.args and not node.keywords:
                yield ctx.finding(
                    node,
                    self.code,
                    "default_rng() without a seed draws OS entropy; "
                    "pass an explicit seed",
                )


@register
class MutableDefault(Rule):
    code = "RPR004"
    name = "mutable-default-argument"
    summary = "no mutable default arguments (list/dict/set literals or calls)"
    rationale = (
        "A mutable default is created once at definition time and "
        "shared by every call; state leaking between rank programs or "
        "between test cases is exactly the kind of aliasing bug the "
        "deterministic test battery cannot localise.  Use None and "
        "construct inside the body (or a dataclass field factory)."
    )

    _MUTABLE_CALLS = {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for d in defaults:
                bad = isinstance(
                    d,
                    (
                        ast.List,
                        ast.Dict,
                        ast.Set,
                        ast.ListComp,
                        ast.DictComp,
                        ast.SetComp,
                    ),
                ) or (
                    isinstance(d, ast.Call)
                    and _dotted(d.func) in self._MUTABLE_CALLS
                )
                if bad:
                    fn = getattr(node, "name", "<lambda>")
                    yield ctx.finding(
                        d,
                        self.code,
                        f"mutable default argument in {fn}(); default "
                        "to None and construct inside the body",
                    )


@register
class UnorderedSendLoop(Rule):
    code = "RPR005"
    name = "unordered-iteration-feeds-send"
    summary = (
        "loops over dict views / sets that issue sends must iterate in "
        "sorted order"
    )
    rationale = (
        "Message injection order is part of the machine's observable "
        "state: it fixes arrival order, which fixes wildcard-receive "
        "matching on the peer.  A dict built from message arrivals has "
        "arrival-dependent insertion order, and set order depends on "
        "hashes, so iterating either while sending re-broadcasts "
        "upstream nondeterminism to every receiver.  Wrap the "
        "iterable in sorted(...) (cf. dcf.send_batches)."
    )

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.in_tests

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            kind = _unordered_iter_kind(node.iter)
            if kind is None:
                continue
            sends = [
                n
                for stmt in node.body
                for n in ast.walk(stmt)
                if _is_send_call(n)
            ]
            if sends:
                yield ctx.finding(
                    node,
                    self.code,
                    f"loop over unordered {kind} issues sends; iterate "
                    "sorted(...) so injection order is deterministic",
                )


@register
class SwallowedFailure(Rule):
    code = "RPR006"
    name = "swallowed-failure-exception"
    summary = (
        "no bare/overbroad except that can swallow RankFailure or "
        "DeadlockError"
    )
    rationale = (
        "RankFailure and DeadlockError are the scheduler's only way to "
        "report that a simulated run is wedged; both inherit from "
        "standard exception bases.  A bare except (anywhere) or an "
        "except Exception/BaseException without re-raise around "
        "yielding code turns a diagnosed protocol failure into "
        "silently-wrong results."
    )

    _BROAD = {"Exception", "BaseException"}

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            body_yields = any(
                _contains(stmt, (ast.Yield, ast.YieldFrom))
                for stmt in node.body
            )
            for handler in node.handlers:
                if handler.type is None:
                    yield ctx.finding(
                        handler,
                        self.code,
                        "bare except: swallows RankFailure/DeadlockError "
                        "(and KeyboardInterrupt); name the exceptions "
                        "you expect",
                    )
                    continue
                names = set()
                htypes = (
                    handler.type.elts
                    if isinstance(handler.type, ast.Tuple)
                    else [handler.type]
                )
                for t in htypes:
                    n = _dotted(t)
                    if n:
                        names.add(n.rpartition(".")[2])
                if not (names & self._BROAD):
                    continue
                reraises = any(
                    _contains(stmt, (ast.Raise,)) for stmt in handler.body
                )
                if body_yields and not reraises:
                    yield ctx.finding(
                        handler,
                        self.code,
                        "except "
                        + "/".join(sorted(names & self._BROAD))
                        + " around yielding (communicating) code "
                        "without re-raise can swallow RankFailure/"
                        "DeadlockError; catch specific exceptions or "
                        "re-raise",
                    )


@register
class HashOrderIteration(Rule):
    code = "RPR007"
    name = "hash-order-iteration-in-deterministic-path"
    summary = (
        "no for-loops over set(...) / set algebra in deterministic "
        "packages without sorted(...)"
    )
    rationale = (
        "Set iteration order follows hash values, which for strings "
        "vary with PYTHONHASHSEED and for mixed types with memory "
        "layout.  In machine/solver/connectivity/resilience/core this "
        "leaks straight into accumulation order, cache insertion order "
        "and trace output.  Dict views are insertion-ordered and "
        "therefore exempt here (RPR005 still covers them when the loop "
        "sends messages)."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_deterministic_path and not ctx.in_tests

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            kind = _unordered_iter_kind(node.iter)
            if kind is None or kind.startswith("."):
                continue  # dict views handled by RPR005 only
            yield ctx.finding(
                node,
                self.code,
                f"for-loop over unordered {kind} in a deterministic "
                "path; wrap the iterable in sorted(...)",
            )


def _is_any_source(node: ast.AST | None) -> bool:
    """Is this expression ``ANY_SOURCE`` (bare or dotted)?"""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id == "ANY_SOURCE"
    name = _dotted(node)
    return name is not None and name.endswith(".ANY_SOURCE")


@register
class WildcardBlockingRecv(Rule):
    code = "RPR008"
    name = "wildcard-blocking-recv"
    summary = (
        "library code must not block on recv(ANY_SOURCE, ...); use "
        "drain_recv / iprobe polling"
    )
    rationale = (
        "A blocking wildcard receive matches whichever message the "
        "scheduler delivers first, so the *protocol* becomes sensitive "
        "to arrival order — exactly the coupling the sanitizer's "
        "wildcard-race check exists to catch after the fact.  The "
        "canonical pattern in this codebase is drain_recv(ANY_SOURCE, "
        "tag), which receives every queued message for a tag in one "
        "deterministic batch (cf. dcf.py), or an iprobe poll loop with "
        "explicit termination.  Tests may still use recv(ANY_SOURCE) "
        "to exercise the matching machinery itself."
    )

    _WILDCARD_RECVS = {"recv", "irecv"}

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.in_tests and not ctx.is_tag_module

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._WILDCARD_RECVS
            ):
                continue
            src = _call_arg(node, 0, "src")
            if _is_any_source(src):
                yield ctx.finding(
                    node,
                    self.code,
                    f"{node.func.attr}(ANY_SOURCE, ...) blocks on "
                    "arrival order; use drain_recv(ANY_SOURCE, tag) "
                    "to batch-receive deterministically, or an iprobe "
                    "loop with explicit termination",
                )


@register
class UnorderedFloatReduction(Rule):
    code = "RPR009"
    name = "unordered-float-reduction"
    summary = (
        "no sum()/fsum() over sets / set algebra in deterministic "
        "packages"
    )
    rationale = (
        "Float addition is not associative: summing the same values in "
        "a different order changes the last bits of the result, and "
        "set iteration order follows PYTHONHASHSEED-dependent hashes.  "
        "A sum over a set in machine/solver/connectivity/resilience/"
        "core therefore breaks bit-identical golden traces across "
        "interpreter invocations.  Sum a sorted(...) of the values "
        "instead (dict views are insertion-ordered and exempt, "
        "matching RPR007)."
    )

    _REDUCERS = {"sum", "fsum", "math.fsum"}

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_deterministic_path and not ctx.in_tests

    def _unordered_arg_kind(self, arg: ast.AST) -> str | None:
        """Unordered-kind of a reducer argument, or None.

        Either the argument *is* an unordered iterable (``sum(set(x))``)
        or it is a generator/comprehension drawing from one
        (``sum(v for v in set(x))``).  Dict views are exempt.
        """
        kind = _unordered_iter_kind(arg)
        if kind is not None and not kind.startswith("."):
            return kind
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in arg.generators:
                k = _unordered_iter_kind(gen.iter)
                if k is not None and not k.startswith("."):
                    return k
        return None

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            name = _dotted(node.func)
            if name not in self._REDUCERS:
                continue
            kind = self._unordered_arg_kind(node.args[0])
            if kind is not None:
                yield ctx.finding(
                    node,
                    self.code,
                    f"{name}() over unordered {kind} accumulates floats "
                    "in hash order; reduce over sorted(...) for a "
                    "bit-stable result",
                )
