"""Auto-fixes for mechanically-correctable lint rules (``lint --fix``).

Today one fix exists: RPR007 (hash-order iteration in a deterministic
path).  Its repair is purely local and semantics-preserving for loop
iteration: wrap the offending loop iterable in ``sorted(...)``, turning

    for g in set(donors) | set(receivers):

into

    for g in sorted(set(donors) | set(receivers)):

The rewrite operates on the *byte* representation of the source using
the AST's ``col_offset``/``end_col_offset`` (which are UTF-8 byte
offsets), so non-ASCII source survives untouched.  Edits are applied
bottom-up so earlier spans stay valid.  Only findings the rule would
actually report are touched: test trees and non-deterministic packages
are left alone, and ``# noqa``-waived lines are respected — a waiver is
an explicit human decision the fixer must not override.

The fix is idempotent: a ``sorted(...)``-wrapped iterable no longer
matches the rule, so a second pass is a no-op (pinned by the fixture
tests).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.lint import (
    LintContext,
    _iter_py_files,
    _noqa_codes,
    _relative,
)
from repro.analysis.rules import HashOrderIteration, _unordered_iter_kind

__all__ = ["FixResult", "fix_rpr007_source", "fix_paths"]


@dataclass
class FixResult:
    """Outcome of one ``--fix`` pass."""

    #: ``{relative path: number of rewrites}`` for every changed file.
    changed: dict[str, int] = field(default_factory=dict)
    files_checked: int = 0

    @property
    def fixes(self) -> int:
        return sum(self.changed.values())

    def format(self) -> str:
        lines = [
            f"{path}: rewrote {n} loop iterable(s) with sorted(...)"
            for path, n in sorted(self.changed.items())
        ]
        lines.append(
            f"fixed {self.fixes} RPR007 finding(s) in "
            f"{len(self.changed)} file(s) "
            f"({self.files_checked} checked)"
        )
        return "\n".join(lines)


def _fixable_iter_spans(
    ctx: LintContext,
) -> list[tuple[int, int, int, int]]:
    """(lineno, col, end_lineno, end_col) of every RPR007 loop iterable.

    Mirrors :class:`HashOrderIteration` exactly — same node filter, same
    scoping — and additionally honours ``# noqa`` waivers on the loop's
    header line.
    """
    rule = HashOrderIteration()
    if not rule.applies(ctx):
        return []
    spans = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        kind = _unordered_iter_kind(node.iter)
        if kind is None or kind.startswith("."):
            continue  # dict views are RPR005's business, not fixable here
        header = (
            ctx.lines[node.lineno - 1]
            if 0 < node.lineno <= len(ctx.lines)
            else ""
        )
        waived = _noqa_codes(header)
        if waived is not None and (not waived or rule.code in waived):
            continue  # human said no
        it = node.iter
        spans.append(
            (it.lineno, it.col_offset, it.end_lineno, it.end_col_offset)
        )
    return spans


def fix_rpr007_source(source: str, rel: str = "<string>") -> tuple[str, int]:
    """Rewrite RPR007 loop iterables in ``source``; returns
    ``(new_source, rewrites)``.

    ``rel`` is the repo-relative path used for rule scoping (the rule
    only applies inside the deterministic packages).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0  # unparseable files are the linter's problem
    ctx = LintContext(Path(rel), rel, source, tree)
    spans = _fixable_iter_spans(ctx)
    if not spans:
        return source, 0

    # Byte-offset arithmetic: ast columns are UTF-8 byte offsets.
    data = source.encode("utf-8")
    line_start = []
    off = 0
    for ln in source.splitlines(keepends=True):
        line_start.append(off)
        off += len(ln.encode("utf-8"))

    def abs_off(lineno: int, col: int) -> int:
        return line_start[lineno - 1] + col

    # Bottom-up (descending start offset) so earlier spans stay valid.
    edits = sorted(
        (abs_off(l0, c0), abs_off(l1, c1)) for l0, c0, l1, c1 in spans
    )
    for start, end in reversed(edits):
        data = data[:end] + b")" + data[end:]
        data = data[:start] + b"sorted(" + data[start:]
    return data.decode("utf-8"), len(edits)


def fix_paths(
    paths: Iterable[str | Path], root: Path | None = None
) -> FixResult:
    """Apply the RPR007 fix to every ``.py`` file under ``paths``.

    Files are rewritten in place only when something changed; the
    result maps changed paths to rewrite counts.
    """
    result = FixResult()
    for f in _iter_py_files(paths):
        result.files_checked += 1
        rel = _relative(f, root)
        source = f.read_text(encoding="utf-8")
        fixed, n = fix_rpr007_source(source, rel)
        if n:
            f.write_text(fixed, encoding="utf-8")
            result.changed[rel] = n
    return result
