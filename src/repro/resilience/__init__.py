"""Resilience for long moving-body runs: faults, checkpoints, recovery.

The paper's regime — thousands of timesteps on tens of nodes — is
exactly where fail-stop node loss dominates operational cost, yet the
load-balance machinery the paper develops (Algorithm 1) is precisely
what elastic recovery needs to redistribute a dead rank's work over the
survivors.  This package ties the two together:

* :mod:`repro.machine.faults` — seeded, virtual-time-deterministic
  fail-stop injection (re-exported here for convenience);
* :mod:`repro.resilience.checkpoint` — versioned, checksummed,
  timestamp-free checkpoints that restore bit-identically;
* :mod:`repro.resilience.recovery` — the failure-detection simulation,
  recovery policy and per-episode records.

See ``docs/resilience.md`` for the full fault model and a recovery
walk-through.
"""

from repro.machine.faults import FaultPlan, FaultSpec, RankFailure
from repro.resilience.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)
from repro.resilience.recovery import (
    RecoveryPolicy,
    RecoveryRecord,
    run_failure_detection,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "RankFailure",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "RecoveryPolicy",
    "RecoveryRecord",
    "run_failure_detection",
]
