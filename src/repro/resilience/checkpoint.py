"""Deterministic checkpointing for OVERFLOW-D1 runs.

A :class:`Checkpoint` is a set of named *sections*, each a pickled
snapshot of one piece of driver state (case config, driver progress,
world pose, donor-restart memory).  The container is deliberately dumb:
it stores bytes, checksums and JSON metadata — the driver
(:mod:`repro.core.overflow_d1`) decides what goes in.

Determinism contract
--------------------
Checkpoint *bytes* are a pure function of the simulated state:

* a fixed pickle protocol (no protocol drift between interpreter runs);
* no wall-clock timestamps, hostnames or other environment material in
  the file;
* sections serialised in insertion order (the driver builds the state
  dict deterministically).

So two runs that reach the same virtual state write byte-identical
checkpoints — which is what lets the test battery assert restore
round-trips and repeated faulted runs bit-for-bit.

On-disk format (version 1)::

    offset  size  field
    0       8     magic  b"RPROCKPT"
    8       8     header length H (big-endian unsigned)
    16      H     header JSON (utf-8): {"version", "meta", "sections"}
    16+H    ...   section bodies, concatenated in header order

The header lists every section's name, byte length and SHA-256; ``load``
verifies all checksums and the version before unpickling anything, so a
truncated or corrupted file fails loudly instead of resuming from
garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
]

CHECKPOINT_MAGIC = b"RPROCKPT"
CHECKPOINT_VERSION = 1

#: Fixed so the same state pickles to the same bytes on every
#: supported interpreter (protocol 4 is available from Python 3.4).
PICKLE_PROTOCOL = 4


class CheckpointError(RuntimeError):
    """Malformed, corrupted or version-incompatible checkpoint."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class Checkpoint:
    """An in-memory checkpoint: JSON-able ``meta`` + pickled sections.

    ``pack``/``unpack`` convert between live objects and section bytes;
    ``save``/``load`` move the container to and from disk.  Because
    ``unpack`` always unpickles *fresh* objects from the stored bytes,
    restoring from an in-memory checkpoint has the same deep-copy
    semantics as restoring from disk — no aliasing with live,
    possibly-mutated driver state.
    """

    def __init__(self, meta: dict, sections: dict[str, bytes]):
        self.meta = dict(meta)
        self.sections = dict(sections)

    # -- construction ---------------------------------------------------

    @classmethod
    def pack(cls, meta: dict, state: dict[str, Any]) -> "Checkpoint":
        """Pickle every value of ``state`` into a named section."""
        sections = {
            name: pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
            for name, obj in state.items()
        }
        return cls(meta, sections)

    def unpack(self) -> dict[str, Any]:
        """Unpickle every section into a fresh object."""
        return {
            name: pickle.loads(data) for name, data in self.sections.items()
        }

    # -- introspection --------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total payload size (used to model restore cost)."""
        return sum(len(b) for b in self.sections.values())

    @property
    def step(self) -> int:
        return int(self.meta.get("step", -1))

    def checksums(self) -> dict[str, str]:
        return {name: _sha256(data) for name, data in self.sections.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Checkpoint(step={self.meta.get('step')}, "
            f"case={self.meta.get('case')!r}, "
            f"sections={list(self.sections)}, nbytes={self.nbytes})"
        )

    # -- serialisation --------------------------------------------------

    def to_bytes(self) -> bytes:
        names = list(self.sections)
        header = {
            "version": CHECKPOINT_VERSION,
            "meta": self.meta,
            "sections": [
                {
                    "name": name,
                    "nbytes": len(self.sections[name]),
                    "sha256": _sha256(self.sections[name]),
                }
                for name in names
            ],
        }
        # Deterministic JSON: sorted keys, no whitespace drift.
        hdr = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        parts = [CHECKPOINT_MAGIC, len(hdr).to_bytes(8, "big"), hdr]
        parts.extend(self.sections[name] for name in names)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        if blob[:8] != CHECKPOINT_MAGIC:
            raise CheckpointError(
                f"bad magic {blob[:8]!r}; not a repro checkpoint"
            )
        hlen = int.from_bytes(blob[8:16], "big")
        try:
            header = json.loads(blob[16 : 16 + hlen].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"corrupt checkpoint header: {exc}") from exc
        version = header.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version} not supported "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        sections: dict[str, bytes] = {}
        off = 16 + hlen
        for sec in header["sections"]:
            data = blob[off : off + sec["nbytes"]]
            if len(data) != sec["nbytes"]:
                raise CheckpointError(
                    f"truncated checkpoint: section {sec['name']!r} "
                    f"expected {sec['nbytes']} bytes, got {len(data)}"
                )
            digest = _sha256(data)
            if digest != sec["sha256"]:
                raise CheckpointError(
                    f"checksum mismatch in section {sec['name']!r}: "
                    f"expected {sec['sha256'][:12]}…, got {digest[:12]}…"
                )
            sections[sec["name"]] = data
            off += sec["nbytes"]
        return cls(header["meta"], sections)

    def save(self, path: str | Path) -> Path:
        """Atomic write: temp file + rename, so a crash mid-write can
        never leave a half-checkpoint with a valid name."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(self.to_bytes())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Checkpoint":
        path = Path(path)
        if not path.is_file():
            raise CheckpointError(f"no checkpoint at {path}")
        return cls.from_bytes(path.read_bytes())


class CheckpointStore:
    """A directory of checkpoints with keep-last-k pruning.

    File names encode the absolute driver step (``ckpt-step000040.rpk``)
    so ``latest()`` is a lexicographic max — no mtime dependence, which
    keeps store behaviour deterministic across filesystems.
    """

    SUFFIX = ".rpk"

    def __init__(self, directory: str | Path, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep

    def path_for(self, step: int) -> Path:
        return self.directory / f"ckpt-step{step:06d}{self.SUFFIX}"

    def write(self, ckpt: Checkpoint) -> Path:
        step = ckpt.step
        if step < 0:
            raise CheckpointError("checkpoint meta lacks a 'step' entry")
        path = ckpt.save(self.path_for(step))
        self.prune()
        return path

    def paths(self) -> list[Path]:
        """All checkpoint files, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"ckpt-step*{self.SUFFIX}"))

    def latest(self) -> Checkpoint | None:
        paths = self.paths()
        if not paths:
            return None
        return Checkpoint.load(paths[-1])

    def prune(self) -> list[Path]:
        """Delete all but the newest ``keep`` checkpoints."""
        doomed = self.paths()[: -self.keep]
        for p in doomed:
            p.unlink()
        return doomed
