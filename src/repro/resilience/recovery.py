"""Elastic recovery: policy knobs, recovery records and the detection sim.

The driver's recovery sequence on a :class:`repro.machine.faults.RankFailure`
(see :meth:`repro.core.overflow_d1.OverflowD1` for the wiring):

1. **failure detection** — the survivors run the heartbeat/timeout
   protocol (:meth:`repro.machine.simmpi.Comm.detect_failures`) on a
   fresh simulator in which the dead ranks are killed at t = 0; every
   survivor returns the identical agreed dead set, and the protocol's
   virtual cost lands in the trace under the ``failure-detection``
   phase;
2. **restore** — the last checkpoint is re-read; the modeled cost
   (:attr:`RecoveryPolicy.restore_latency` plus bytes over
   :attr:`RecoveryPolicy.restore_bandwidth`) appears as a ``restore``
   span on every survivor;
3. **repartition** — Algorithm 1 re-runs over the surviving processor
   set (``exclude_ranks`` path of :func:`repro.partition.static_lb.
   static_balance`); survivors are renumbered contiguously (ULFM-style
   shrink) and the modeled cost appears as a ``repartition`` span;
4. the timestep loop resumes from the restored step on the shrunk
   machine.

Everything is virtual-time deterministic: repeated runs of the same
faulted case produce byte-identical metrics and traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.machine.faults import FaultPlan, FaultSpec
from repro.machine.scheduler import Simulator

if TYPE_CHECKING:  # import cycle: obs imports nothing from here
    from repro.machine.spec import MachineSpec
    from repro.obs.tracer import SpanTracer

__all__ = ["RecoveryPolicy", "RecoveryRecord", "run_failure_detection"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for the modeled cost of each recovery stage.

    The detection cost is *simulated* (the heartbeat protocol really
    runs on the event simulator); restore and repartition costs are
    *modeled* (a checkpoint read at ``restore_bandwidth`` behind
    ``restore_latency``, and a fixed Algorithm-1 rerun cost), because
    the simulated machine has no disk model.
    """

    #: Seek/open latency before checkpoint data starts flowing (s).
    restore_latency: float = 0.02
    #: Checkpoint read bandwidth (bytes / virtual second).
    restore_bandwidth: float = 50.0e6
    #: Modeled cost of re-running Algorithm 1 + rebuilding the
    #: partition maps on every survivor (s).
    repartition_seconds: float = 5.0e-3
    #: Heartbeat timeout; ``None`` uses the machine-derived default
    #: (:meth:`repro.machine.simmpi.Comm.heartbeat_timeout`).
    detection_timeout: float | None = None
    #: Give up (re-raise the failure) after this many recoveries.
    max_recoveries: int = 8


@dataclass
class RecoveryRecord:
    """One completed failure/restore/repartition episode."""

    failed_ranks: tuple[int, ...]   # numbering in effect when they died
    nprocs_before: int
    nprocs_after: int
    step_failed: int                # measured step the run had reached
    step_restored: int              # measured step execution resumed from
    t_failure: float                # global virtual time of the failure
    t_detect: float                 # heartbeat protocol elapsed (s)
    t_restore: float                # modeled checkpoint read (s)
    t_repartition: float            # modeled Algorithm-1 rerun (s)
    checkpoint_bytes: int = 0
    procs_per_grid: tuple[int, ...] = field(default_factory=tuple)

    @property
    def downtime(self) -> float:
        """Virtual seconds from failure to resumed execution."""
        return self.t_detect + self.t_restore + self.t_repartition

    def describe(self) -> str:
        ranks = ",".join(str(r) for r in self.failed_ranks)
        return (
            f"recovery: rank(s) {ranks} failed at t={self.t_failure:.4f}s "
            f"(step {self.step_failed}); detected in {self.t_detect:.4f}s, "
            f"restored step {self.step_restored} "
            f"({self.checkpoint_bytes} bytes in {self.t_restore:.4f}s), "
            f"repartitioned {self.nprocs_before}->{self.nprocs_after} ranks "
            f"in {self.t_repartition:.4f}s"
        )


def run_failure_detection(
    machine: "MachineSpec",
    failed_ranks: Iterable[int],
    tracer: "SpanTracer | None" = None,
    timeout: float | None = None,
    sanitizer: Any = None,
) -> tuple[tuple[int, ...], float]:
    """Simulate the heartbeat protocol over ``machine``'s ranks.

    ``failed_ranks`` die at virtual t = 0 (they were already dead when
    detection started); every survivor runs
    :meth:`~repro.machine.simmpi.Comm.detect_failures` under the
    ``failure-detection`` phase.  Returns the agreed dead set and the
    protocol's virtual elapsed time.

    Raises ``RuntimeError`` if survivors disagree (which would indicate
    a protocol bug — the deterministic detector cannot false-positive).
    """
    dead = tuple(sorted(set(int(r) for r in failed_ranks)))
    plan = FaultPlan([FaultSpec(rank=r, time=0.0) for r in dead])

    def _program(comm):
        yield from comm.set_phase("failure-detection")
        agreed = yield from comm.detect_failures(timeout=timeout)
        return agreed

    sim = Simulator(machine, tracer=tracer, fault_plan=plan, sanitizer=sanitizer)
    sim.spawn_all(_program)
    out = sim.run(raise_on_failure=False)

    verdicts = {
        r: out.returns[r]
        for r in range(machine.nodes)
        if r not in dead
    }
    agreed_sets = set(verdicts.values())
    if len(agreed_sets) != 1:
        raise RuntimeError(
            f"failure detector disagreement: {verdicts}"
        )
    agreed = agreed_sets.pop()
    if agreed != dead:
        raise RuntimeError(
            f"failure detector found {agreed}, scheduler killed {dead}"
        )
    return agreed, out.elapsed
