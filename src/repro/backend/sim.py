"""The simulator backend: the existing scheduler behind the backend API.

This is a thin adapter — it builds a
:class:`repro.machine.scheduler.Simulator` with exactly the arguments it
always took and spawns the programs in rank order, so a run through
``get_backend("sim")`` is *bit-identical* (virtual clocks, metrics,
trace events, sanitizer findings) to constructing the scheduler
directly.  The golden-trace regression battery pins this equivalence.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.backend.api import BackendResult, ExecutionBackend, RankProgram
from repro.machine.scheduler import Simulator

__all__ = ["SimBackend"]


class SimBackend(ExecutionBackend):
    """Conservative discrete-event execution over modeled virtual time.

    * deterministic: results and traces are a pure function of inputs;
    * ``shared_state=True``: all rank generators live in one process and
      may close over (and mutate) shared driver objects;
    * supports the full feature surface — fault injection, sanitizer
      shadow layer, warm-started clocks/metrics.
    """

    name = "sim"
    shared_state = True
    measured = False

    def run(
        self,
        machine: Any,
        programs: Sequence[RankProgram],
        *,
        tracer: Any = None,
        sanitizer: Any = None,
        fault_plan: Any = None,
        initial_clocks: Sequence[float] | None = None,
        initial_metrics: Sequence[Any] | None = None,
        eager_hooks: bool = False,
        max_events: int = 500_000_000,
        raise_on_failure: bool = True,
    ) -> BackendResult:
        if not programs:
            raise ValueError("no rank programs given")
        sim = Simulator(
            machine,
            tracer=tracer,
            fault_plan=fault_plan,
            initial_clocks=(
                list(initial_clocks) if initial_clocks is not None else None
            ),
            initial_metrics=(
                list(initial_metrics) if initial_metrics is not None else None
            ),
            sanitizer=sanitizer,
            eager_hooks=eager_hooks,
        )
        for program in programs:
            sim.spawn(program)
        out = sim.run(max_events=max_events, raise_on_failure=raise_on_failure)
        return BackendResult(
            elapsed=out.elapsed,
            returns=out.returns,
            metrics=out.metrics,
            failed_ranks=out.failed_ranks,
            backend=self.name,
            measured=False,
        )
