"""Pluggable execution backends for rank programs.

Rank programs are backend-neutral: they yield primitive operation
tuples through :class:`repro.machine.simmpi.Comm` and never observe how
those primitives execute.  This package provides the engine interface
(:mod:`repro.backend.api`) and two engines:

``sim`` (default)
    The conservative discrete-event simulator — deterministic modeled
    virtual time, full feature surface (fault injection, sanitizer,
    golden traces).  See :mod:`repro.backend.sim`.
``mp``
    Real ``multiprocessing`` processes with pickle-over-pipe transport
    and shared-memory bulk payloads — measured host wall-clock time,
    identical physics.  See :mod:`repro.backend.mp`.
``cluster``
    Multi-host execution over per-host ``repro node`` daemons speaking
    length-framed TCP, with elastic failure recovery — measured wall
    time, identical physics, survives node loss.  See
    :mod:`repro.cluster`.

Select by name::

    from repro.backend import get_backend
    out = get_backend("mp").run_spmd(machine, program, nranks=4)

The mp and cluster modules are imported lazily so hosts that cannot
run them (no ``fork``) still import this package and use ``sim``.
"""

from __future__ import annotations

from typing import Any

from repro.backend.api import (
    BackendResult,
    BackendUnavailable,
    CommProtocol,
    ExecutionBackend,
    RankProgram,
    available_backends,
    backend_help,
    get_backend,
    register_backend,
)
from repro.backend.sim import SimBackend

__all__ = [
    "BackendResult",
    "BackendUnavailable",
    "CommProtocol",
    "ExecutionBackend",
    "RankProgram",
    "SimBackend",
    "available_backends",
    "backend_help",
    "get_backend",
    "register_backend",
]


def _mp_available() -> str | None:
    from repro.backend.mp import mp_available

    return mp_available()


def _mp_factory(**options: Any) -> ExecutionBackend:
    from repro.backend.mp import MpBackend

    return MpBackend(**options)


register_backend(
    "sim",
    SimBackend,
    doc="discrete-event simulator: modeled virtual time, deterministic",
)
register_backend(
    "mp",
    _mp_factory,
    doc="real multiprocessing ranks: measured wall time, identical physics",
    available=_mp_available,
)


def _cluster_available() -> str | None:
    from repro.cluster.backend import cluster_available

    return cluster_available()


def _cluster_factory(**options: Any) -> ExecutionBackend:
    from repro.cluster.backend import ClusterBackend

    return ClusterBackend(**options)


register_backend(
    "cluster",
    _cluster_factory,
    doc="multi-host node daemons over TCP: elastic, survives node loss",
    available=_cluster_available,
)
