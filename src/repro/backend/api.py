"""Backend-neutral execution API for rank programs.

The repo's rank programs — OVERFLOW-D1 steps, the 2-D ADI solver, the
DCF connectivity exchange — are generator functions ``program(comm)``
that yield primitive operation tuples and drive all communication
through the :class:`repro.machine.simmpi.Comm` surface.  Nothing in a
program says *how* those primitives execute: the conservative
discrete-event scheduler interprets them against modeled virtual time,
but any engine that honours the same primitive contract can run the
very same generators.

This module pins that contract down:

* :class:`CommProtocol` — the rank-facing communicator surface
  (structural; :class:`repro.machine.simmpi.Comm` satisfies it, and so
  does any group communicator derived from it).
* :class:`BackendResult` — what an execution produces.  Field-compatible
  with :class:`repro.machine.scheduler.SimulationResult` (``elapsed``,
  ``returns``, ``metrics``, ``failed_ranks``) so existing drivers keep
  working unchanged, plus backend provenance (``backend``, ``measured``).
* :class:`ExecutionBackend` — the engine interface: take a machine and a
  list of rank programs, run them to completion, return a result.
* a registry (:func:`register_backend` / :func:`get_backend` /
  :func:`available_backends`) so drivers and the CLI select engines by
  name (``--backend sim``, ``--backend mp``).

Two implementations ship in this package: :mod:`repro.backend.sim`
(the default; wraps the existing scheduler, bit-identical to calling it
directly) and :mod:`repro.backend.mp` (real ``multiprocessing`` ranks
with pickle-over-pipe transport and shared-memory bulk payloads).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Protocol, Sequence, runtime_checkable

from repro.machine.event import ANY_SOURCE, ANY_TAG
from repro.machine.simmpi import MAX_USER_TAG, Request, Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX_USER_TAG",
    "Status",
    "Request",
    "CommProtocol",
    "RankProgram",
    "BackendResult",
    "BackendUnavailable",
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "backend_help",
]

#: A rank program: called once per rank with that rank's communicator,
#: returns the generator the engine drives to completion.  The
#: generator's ``return`` value becomes the rank's entry in
#: :attr:`BackendResult.returns`.
RankProgram = Callable[..., Generator]


@runtime_checkable
class CommProtocol(Protocol):
    """The rank-facing communicator surface every backend must provide.

    This is the *contract* between rank programs and execution engines.
    All methods except the attributes are generator functions invoked
    with ``yield from``; see :class:`repro.machine.simmpi.Comm` for the
    reference semantics (tag space, collective algorithms, eager-send
    model).  Backends do not subclass this — they provide objects that
    structurally satisfy it (today both backends reuse ``Comm`` itself
    and differ only in how its primitive yields are interpreted).
    """

    rank: int
    size: int

    # -- time and work -------------------------------------------------
    def compute(
        self,
        flops: float = ...,
        seconds: float = ...,
        points_per_node: float | None = ...,
    ) -> Generator: ...
    def elapse(self, seconds: float) -> Generator: ...
    def now(self) -> Generator: ...
    def set_phase(self, phase: str) -> Generator: ...

    # -- point to point ------------------------------------------------
    def send(
        self, dst: int, tag: int, payload: Any = ..., nbytes: int | None = ...
    ) -> Generator: ...
    def isend(
        self, dst: int, tag: int, payload: Any = ..., nbytes: int | None = ...
    ) -> Generator: ...
    def recv(self, src: int = ..., tag: int = ...) -> Generator: ...
    def irecv(self, src: int = ..., tag: int = ...) -> Generator: ...
    def wait(self, req: Request) -> Generator: ...
    def test(self, req: Request) -> Generator: ...
    def waitall(self, reqs: Any) -> Generator: ...
    def iprobe(self, src: int = ..., tag: int = ...) -> Generator: ...
    def drain_recv(self, src: int = ..., tag: int = ...) -> Generator: ...

    # -- collectives ---------------------------------------------------
    def barrier(self) -> Generator: ...
    def bcast(
        self, payload: Any = ..., root: int = ..., nbytes: int | None = ...
    ) -> Generator: ...
    def gather(
        self, payload: Any, root: int = ..., nbytes: int | None = ...
    ) -> Generator: ...
    def allgather(self, payload: Any, nbytes: int | None = ...) -> Generator: ...
    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = ...,
        root: int = ...,
        nbytes: int | None = ...,
    ) -> Generator: ...
    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = ...,
        nbytes: int | None = ...,
    ) -> Generator: ...
    def alltoall(self, payloads: list, nbytes: int | None = ...) -> Generator: ...
    def sendrecv(
        self,
        dst: int,
        src: int,
        tag: int,
        payload: Any = ...,
        nbytes: int | None = ...,
    ) -> Generator: ...

    # -- groups --------------------------------------------------------
    def split(self, members: list[int]) -> "CommProtocol": ...


@dataclass
class BackendResult:
    """Outcome of one backend execution.

    Quacks like :class:`repro.machine.scheduler.SimulationResult` —
    the four result fields drivers consume (``elapsed``, ``returns``,
    ``metrics``, ``failed_ranks``) carry the same types and meaning —
    with two provenance fields on top:

    ``backend``
        Registry name of the engine that produced this result.
    ``measured``
        ``False`` for modeled (virtual-time, deterministic) results,
        ``True`` for measured (host wall-clock, nondeterministic) ones.
        Anything downstream that demands bit-identical numbers (golden
        traces, canonical BENCH sections, trace-diff gates) must treat
        ``measured=True`` results as host-section data.
    """

    elapsed: float
    returns: list[Any]
    metrics: Any  # repro.machine.metrics.MachineMetrics
    failed_ranks: tuple[int, ...] = ()
    backend: str = "sim"
    measured: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        unit = "s wall" if self.measured else "s virtual"
        return (
            f"BackendResult(backend={self.backend!r}, "
            f"elapsed={self.elapsed:.6g}{unit}, "
            f"ranks={self.metrics.nranks}, failed={list(self.failed_ranks)})"
        )


class BackendUnavailable(RuntimeError):
    """The requested backend cannot run on this host/configuration."""


class ExecutionBackend(abc.ABC):
    """An engine that runs rank programs over a machine description.

    Subclasses declare three capability attributes:

    ``name``
        Registry name (``"sim"``, ``"mp"``).
    ``shared_state``
        ``True`` when all ranks execute inside one address space (the
        simulator), ``False`` when each rank owns a private copy of the
        Python objects its program closed over (real processes).  Rank
        programs that mutate shared driver state must consult this —
        see ``OverflowD1`` for the pattern (world motion is applied by
        rank 0 only under shared state, by every rank otherwise).
    ``measured``
        Whether results are host wall-clock measurements rather than
        modeled virtual time.
    ``elastic``
        ``True`` when the engine can lose execution resources mid-run
        (a cluster node dying) and *keep running subsequent chunks on
        the survivors*.  Drivers use this to arm checkpoint/recovery
        machinery even without an explicit fault plan — see
        ``OverflowD1``'s implicit step-0 snapshot.
    """

    name: str = "?"
    shared_state: bool = True
    measured: bool = False
    elastic: bool = False

    @abc.abstractmethod
    def run(
        self,
        machine: Any,
        programs: Sequence[RankProgram],
        *,
        tracer: Any = None,
        sanitizer: Any = None,
        fault_plan: Any = None,
        initial_clocks: Sequence[float] | None = None,
        initial_metrics: Sequence[Any] | None = None,
        eager_hooks: bool = False,
        max_events: int = 500_000_000,
        raise_on_failure: bool = True,
    ) -> BackendResult:
        """Run one program per rank to completion.

        ``programs[i]`` runs as rank ``i``; ``len(programs)`` must not
        exceed ``machine.nodes``.  Keyword arguments mirror
        :class:`repro.machine.scheduler.Simulator`; backends that do
        not support a feature (e.g. fault injection outside the
        simulator) raise :class:`ValueError` when it is requested
        rather than silently ignoring it.
        """

    def run_spmd(
        self,
        machine: Any,
        program: RankProgram,
        nranks: int | None = None,
        **kwargs: Any,
    ) -> BackendResult:
        """Run the same program on every rank (SPMD convenience)."""
        n = machine.nodes if nranks is None else int(nranks)
        return self.run(machine, [program] * n, **kwargs)

    def close(self) -> None:
        """Release engine-held resources (daemon pools, sockets).

        No-op for in-process engines; the cluster backend overrides it
        to shut its node pool down.  Idempotent, and safe to call on a
        backend that never ran anything.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

@dataclass
class _Entry:
    factory: Callable[..., ExecutionBackend]
    doc: str = ""
    available: Callable[[], str | None] = field(default=lambda: None)


_REGISTRY: dict[str, _Entry] = {}


def register_backend(
    name: str,
    factory: Callable[..., ExecutionBackend],
    *,
    doc: str = "",
    available: Callable[[], str | None] | None = None,
) -> None:
    """Register an engine under ``name``.

    ``factory(**options)`` builds a fresh backend instance.
    ``available()`` returns ``None`` when the backend can run here, or
    a human-readable reason string when it cannot (checked lazily by
    :func:`get_backend` so merely importing the package never fails on
    a restricted host).
    """
    if not name or not name.isidentifier():
        raise ValueError(f"bad backend name {name!r}")
    _REGISTRY[name] = _Entry(
        factory=factory, doc=doc, available=available or (lambda: None)
    )


def get_backend(name: str = "sim", **options: Any) -> ExecutionBackend:
    """Instantiate a registered backend by name.

    Raises :class:`ValueError` for unknown names and
    :class:`BackendUnavailable` when the backend exists but cannot run
    on this host (e.g. ``mp`` without the ``fork`` start method).
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown backend {name!r}; known backends: {known}")
    reason = entry.available()
    if reason is not None:
        raise BackendUnavailable(f"backend {name!r} unavailable: {reason}")
    return entry.factory(**options)


def available_backends() -> list[str]:
    """Names of registered backends that can run on this host, sorted."""
    return sorted(
        name for name, e in _REGISTRY.items() if e.available() is None
    )


def backend_help() -> dict[str, str]:
    """``{name: one-line description}`` for every registered backend."""
    return {name: e.doc for name, e in sorted(_REGISTRY.items())}
