"""Real multiprocess execution of rank programs.

Runs each rank as a genuine ``multiprocessing`` process (``fork`` start
method — rank programs are closures over driver state and cannot be
pickled) and interprets the very same primitive tuples the simulator's
scheduler dispatches, against real transport:

* **pickle-over-pipe point-to-point** — one OS pipe per destination
  rank, shared by all senders behind a per-destination lock.  Frames
  are capped: any payload whose serialised form reaches
  ``shm_threshold`` bytes moves through POSIX shared memory instead
  (``numpy`` arrays are copied raw, no pickling; everything else ships
  its pickle through a segment).  Keeping every pipe frame small means
  blocking writes cannot wedge the eager-send model the programs
  assume.
* **mailbox semantics reused verbatim** — incoming frames are deposited
  into the same :class:`repro.machine.event.Mailbox` the simulator
  uses, with sender-assigned sequence numbers, so tag matching,
  wildcard receives and the canonical ``(src, seq)`` drain order are
  *identical* to the simulator.  That is the determinism argument for
  backend-equivalent physics: every consumer in the tree either names
  its source, indexes collective results by ``status.source``, or
  drains in canonical order.
* **collectives built from point-to-point** — by construction: the
  workers drive :class:`repro.machine.simmpi.Comm` unchanged, whose
  barrier/bcast/gather/reduce/alltoall are already compositions of the
  send/recv primitives.
* **reserved-tag control channel** — a per-worker duplex pipe carrying
  frames tagged :data:`CTRL_TAG` (above the entire collective tag
  space): ``done``/``error`` up, ``abort``/``exit`` down.  Results,
  measured metrics and trace events travel here, never on data pipes.
* **supervision** — the parent waits on control pipes and process
  sentinels; a worker crash (non-zero exit without a result), a worker
  timeout, or an ``error`` frame aborts the surviving workers and
  surfaces as the existing typed
  :class:`repro.machine.faults.RankFailure` (crash/timeout) or the
  re-raised original exception (program error).

Time is **measured, not modeled**: workers account host wall-clock
seconds into the standard :class:`repro.machine.metrics.RankMetrics`
shapes (generator execution → ``compute``, transport injection →
``comm``, blocked receives → ``wait``), so every Table-1/3/4-style
rollup downstream works on measured numbers — flagged
``measured=True`` and never fed to golden traces or canonical BENCH
sections.  See ``docs/backends.md`` for the full determinism contract.
"""

from __future__ import annotations

import glob
import itertools
import math
import os
import pickle
import time
import traceback
from multiprocessing import connection, get_context, resource_tracker, shared_memory
from typing import Any, Generator, Sequence

import numpy as np

from repro.backend.api import (
    BackendResult,
    BackendUnavailable,
    ExecutionBackend,
    RankProgram,
)
from repro.machine.event import Mailbox, Message
from repro.machine.faults import RankFailure
from repro.machine.metrics import MachineMetrics, RankMetrics
from repro.machine.simmpi import Comm

__all__ = ["MpBackend", "CTRL_TAG", "mp_available"]

#: Tag carried by every control-channel frame.  Sits above the entire
#: collective tag space (``simmpi._COLL_TAG_BASE`` + named collectives
#: < 2e11) so no data tag — user, group-offset or collective — can ever
#: alias a control frame, and a control frame arriving where data is
#: expected is detectable by tag alone.
CTRL_TAG = 200_000_000_000

_FRAME_INLINE = 0      # payload pickled inline in the pipe frame
_FRAME_SHM_ARRAY = 1   # contiguous ndarray copied raw into shared memory
_FRAME_SHM_PICKLE = 2  # oversized pickle staged through shared memory

_INF = math.inf
_run_counter = itertools.count()


def mp_available() -> str | None:
    """``None`` if the mp backend can run here, else the reason it cannot."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return (
            "requires the 'fork' start method (rank programs are closures "
            "and cannot be pickled for spawn)"
        )
    return None


def _untrack_shm(name: str) -> None:
    """Withdraw a segment from this process's resource tracker.

    CPython (POSIX) registers a ``SharedMemory`` with the resource
    tracker on *attach* as well as create; since segment lifetime here
    is managed explicitly (receiver unlinks after copying, parent
    sweeps leftovers), tracker bookkeeping would only produce noisy
    double-unlink warnings at interpreter exit.
    """
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - best-effort on exotic platforms
        pass


class _Abort(Exception):
    """Parent told this worker to stop (a peer failed)."""


class _TraceLog:
    """Per-worker event buffers mirroring :class:`SpanTracer` lists."""

    __slots__ = ("ops", "phases", "sends", "recvs")

    def __init__(self) -> None:
        self.ops: list[tuple] = []
        self.phases: list[tuple] = []
        self.sends: list[tuple] = []
        self.recvs: list[tuple] = []


class _Engine:
    """Interprets one rank's primitive stream against real transport.

    The primitive contract is the one
    :meth:`repro.machine.scheduler.Simulator._dispatch` defines; this
    class is its measured-time twin.  Wall accounting: the gap between
    two yields (user generator code executing) is charged ``compute``;
    the time inside a send (serialise + pipe write) is ``comm``; the
    time blocked for a matching message is ``wait``.
    """

    def __init__(
        self,
        rank: int,
        nranks: int,
        reader: Any,
        writers: Sequence[Any],
        locks: Sequence[Any],
        ctrl: Any,
        *,
        runid: str,
        shm_threshold: int,
        poll_interval: float,
        sleep_cap: float,
        start_clock: float,
        metrics: RankMetrics,
        trace: bool,
    ) -> None:
        self.rank = rank
        self.nranks = nranks
        self.reader = reader
        self.writers = writers
        self.locks = locks
        self.ctrl = ctrl
        self.runid = runid
        self.shm_threshold = shm_threshold
        self.poll_interval = poll_interval
        self.sleep_cap = sleep_cap
        self.metrics = metrics
        self.mailbox = Mailbox()
        self.phase = "default"
        self.events = _TraceLog() if trace else None
        self._seq = 0       # sender-local: strictly increasing per sender
        self._arrival = 0   # receiver-local arrival ordinal
        self._clock0 = start_clock
        self._t0 = time.perf_counter()

    # -- clocks ---------------------------------------------------------

    def wall(self) -> float:
        """Measured clock: carried start clock + wall seconds elapsed."""
        return self._clock0 + (time.perf_counter() - self._t0)

    def _charge(self, kind: str, t0: float, t1: float, *, flops: float = 0.0,
                nbytes: int = 0) -> None:
        dt = t1 - t0
        if dt > 0.0:
            self.metrics.time[self.phase][kind] += dt
        if self.events is not None and (dt > 0.0 or flops or nbytes):
            self.events.ops.append(
                (self.rank, self.phase, kind, t0, t1, flops, nbytes)
            )

    # -- transport ------------------------------------------------------

    def _encode(
        self, tag: int, payload: Any, nbytes: int, shm_ok: bool = True
    ) -> bytes:
        self._seq += 1
        seq = self._seq
        if (
            shm_ok
            and isinstance(payload, np.ndarray)
            and payload.nbytes >= self.shm_threshold
        ):
            arr = np.ascontiguousarray(payload)
            name = f"{self.runid}_{self.rank}_{seq}"
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, arr.nbytes), name=name
            )
            _untrack_shm(shm.name.lstrip("/"))
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            body = (_FRAME_SHM_ARRAY, (name, arr.shape, arr.dtype.str))
            shm.close()
        else:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            if shm_ok and len(blob) >= self.shm_threshold:
                name = f"{self.runid}_{self.rank}_{seq}"
                shm = shared_memory.SharedMemory(
                    create=True, size=len(blob), name=name
                )
                _untrack_shm(shm.name.lstrip("/"))
                shm.buf[: len(blob)] = blob
                body = (_FRAME_SHM_PICKLE, (name, len(blob)))
                shm.close()
            else:
                body = (_FRAME_INLINE, blob)
        return pickle.dumps(
            (self.rank, tag, seq, nbytes, body),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def _shm_ok(self, dst: int) -> bool:
        """Whether payloads to ``dst`` may stage through shared memory.

        All destinations share the host here; the cluster engine
        overrides this to gate the fast path to same-node peers.
        """
        return True

    def _transmit(self, dst: int, frame: bytes) -> None:
        """Deliver one encoded frame to a remote rank's inbox."""
        # Opportunistically drain our own inbox first so a blocked
        # peer writing to us is never part of a write cycle involving
        # our own blocking write below.
        self._pump(0.0)
        with self.locks[dst]:
            self.writers[dst].send_bytes(frame)

    def _deposit(self, frame: bytes) -> None:
        src, tag, seq, nbytes, (kind, data) = pickle.loads(frame)
        if kind == _FRAME_INLINE:
            payload = pickle.loads(data)
        elif kind == _FRAME_SHM_ARRAY:
            name, shape, dtype = data
            # Note: attach registers with the resource tracker and
            # unlink() below unregisters — a matched pair, so no
            # explicit _untrack_shm here (it would double-unregister).
            shm = shared_memory.SharedMemory(name=name)
            try:
                payload = np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=shm.buf
                ).copy()
            finally:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - racing sweep
                    pass
        elif kind == _FRAME_SHM_PICKLE:
            name, size = data
            shm = shared_memory.SharedMemory(name=name)
            try:
                payload = pickle.loads(bytes(shm.buf[:size]))
            finally:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - racing sweep
                    pass
        else:  # pragma: no cover - framing bug guard
            raise RuntimeError(f"unknown frame kind {kind!r}")
        self._arrival += 1
        self.mailbox.deposit(
            Message(
                src=src,
                dst=self.rank,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
                send_time=0.0,
                # Receiver-local arrival ordinal: every deposited message
                # is immediately receivable (matching probes use now=inf)
                # and wildcard peeks see true arrival order, as in MPI.
                arrival_time=float(self._arrival),
                seq=seq,
            )
        )

    def _pump(self, timeout: float = 0.0) -> bool:
        """Move every available frame from the pipe into the mailbox."""
        got = False
        t = timeout
        try:
            while self.reader.poll(t):
                self._deposit(self.reader.recv_bytes())
                got = True
                t = 0.0
        except EOFError:  # pragma: no cover - peers gone during teardown
            pass
        return got

    def _check_ctrl(self) -> None:
        while self.ctrl.poll(0):
            frame = self.ctrl.recv()
            if frame[0] == CTRL_TAG and frame[1] in ("abort", "exit"):
                raise _Abort(frame[1])

    # -- primitive interpreter -----------------------------------------

    def run(self, gen: Generator) -> Any:
        """Drive one rank generator to completion; returns its value."""
        send_value: Any = None
        mark = time.perf_counter()
        while True:
            try:
                op = gen.send(send_value)
            except StopIteration as stop:
                now = time.perf_counter()
                self._charge(
                    "compute", self._stamp(mark), self._stamp(now)
                )
                self.metrics.final_clock = self.wall()
                return stop.value
            now = time.perf_counter()
            # Gap between yields: the rank's own Python execution.
            self._charge("compute", self._stamp(mark), self._stamp(now))
            send_value = self._dispatch(op)
            mark = time.perf_counter()

    def _stamp(self, perf: float) -> float:
        return self._clock0 + (perf - self._t0)

    def _dispatch(self, op: tuple) -> Any:
        kind = op[0]
        if kind == "compute":
            _, dt, flops = op
            if dt < 0:
                raise ValueError(
                    f"negative time increment {dt} in phase {self.phase!r}"
                )
            if flops:
                self.metrics.add_flops(self.phase, flops)
            elif dt > 0.0:
                # Pure elapse = a protocol pause (e.g. the DCF service
                # loop's backoff).  Modeled flops are *not* slept — the
                # measured run times real execution only — but pauses
                # must really pause or polling loops spin hot.  Capped
                # so modeled virtual seconds can never stall the host.
                t0 = self.wall()
                time.sleep(min(dt, self.sleep_cap))
                self._charge("compute", t0, self.wall())
            return None
        if kind == "inject":
            _, dst, tag, payload, nbytes = op
            t0 = self.wall()
            frame = self._encode(
                tag, payload, nbytes,
                shm_ok=dst == self.rank or self._shm_ok(dst),
            )
            if dst == self.rank:
                # Self-send: same value semantics as remote (the pickle
                # round-trip isolates the payload), minus the pipe.
                self._deposit(frame)
            else:
                self._transmit(dst, frame)
            t1 = self.wall()
            self.metrics.time[self.phase]["comm"] += t1 - t0
            self.metrics.messages_sent += 1
            self.metrics.bytes_sent += nbytes
            if self.events is not None:
                self.events.ops.append(
                    (self.rank, self.phase, "comm", t0, t1, 0.0, nbytes)
                )
                self.events.sends.append(
                    (t0, self.rank, dst, tag, nbytes, self.phase)
                )
            return None
        if kind == "recv":
            _, src, tag = op
            t0 = self.wall()
            msg = self.mailbox.pop_matching(src, tag, _INF, allow_future=True)
            while msg is None:
                self._check_ctrl()
                ready = connection.wait(
                    [self.reader, self.ctrl], timeout=self.poll_interval
                )
                if ready:
                    self._pump(0.0)
                msg = self.mailbox.pop_matching(
                    src, tag, _INF, allow_future=True
                )
            t1 = self.wall()
            self.metrics.time[self.phase]["wait"] += t1 - t0
            self.metrics.messages_received += 1
            if self.events is not None:
                self.events.ops.append(
                    (self.rank, self.phase, "wait", t0, t1, 0.0, msg.nbytes)
                )
                self.events.recvs.append(
                    (t1, self.rank, msg.src, msg.tag, msg.nbytes, self.phase)
                )
            return msg
        if kind == "tryrecv":
            _, src, tag = op
            self._check_ctrl()
            self._pump(0.0)
            msg = self.mailbox.pop_matching(src, tag, _INF, allow_future=True)
            if msg is not None:
                self.metrics.messages_received += 1
                if self.events is not None:
                    self.events.recvs.append(
                        (
                            self.wall(), self.rank, msg.src, msg.tag,
                            msg.nbytes, self.phase,
                        )
                    )
            return msg
        if kind == "drain":
            _, src, tag = op
            self._check_ctrl()
            self._pump(0.0)
            msgs = self.mailbox.pop_all_matching(src, tag, _INF)
            if msgs:
                self.metrics.messages_received += len(msgs)
                if self.events is not None:
                    t = self.wall()
                    for m in msgs:
                        self.events.recvs.append(
                            (t, self.rank, m.src, m.tag, m.nbytes, self.phase)
                        )
            return msgs
        if kind == "iprobe":
            _, src, tag = op
            self._check_ctrl()
            self._pump(0.0)
            return (
                self.mailbox.peek_matching(src, tag, _INF, allow_future=True)
                is not None
            )
        if kind == "now":
            return self.wall()
        if kind == "set_phase":
            old, self.phase = self.phase, op[1]
            if self.events is not None:
                self.events.phases.append((self.rank, self.wall(), self.phase))
            return old
        raise ValueError(  # pragma: no cover - API misuse guard
            f"unknown primitive op {kind!r} from rank {self.rank}"
        )


def _worker_main(
    rank: int,
    nranks: int,
    machine: Any,
    program: RankProgram,
    reader: Any,
    writers: Sequence[Any],
    locks: Sequence[Any],
    ctrl: Any,
    *,
    runid: str,
    shm_threshold: int,
    poll_interval: float,
    sleep_cap: float,
    start_clock: float,
    metrics: RankMetrics,
    trace: bool,
    engine_factory: Any = None,
) -> None:
    """Entry point of one forked rank process.

    ``engine_factory`` (default :class:`_Engine`) lets other backends
    reuse this whole lifecycle — result/error control frames, abort
    handling, the linger-until-acknowledged exit — with an engine
    subclass that routes off-host traffic differently (the cluster
    node daemon passes one wired to its uplink).
    """
    try:
        engine = (engine_factory or _Engine)(
            rank,
            nranks,
            reader,
            writers,
            locks,
            ctrl,
            runid=runid,
            shm_threshold=shm_threshold,
            poll_interval=poll_interval,
            sleep_cap=sleep_cap,
            start_clock=start_clock,
            metrics=metrics,
            trace=trace,
        )
        comm = Comm(rank, nranks, machine)
        retval = engine.run(program(comm))
        events = engine.events
        payload = pickle.dumps(
            (
                retval,
                engine.metrics,
                None
                if events is None
                else (events.ops, events.phases, events.sends, events.recvs),
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        ctrl.send((CTRL_TAG, "done", payload))
    except _Abort:
        os._exit(3)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        tb = traceback.format_exc()
        try:
            blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            blob = None
        try:
            ctrl.send((CTRL_TAG, "error", (blob, tb)))
        except Exception:  # pragma: no cover - parent already gone
            pass
        os._exit(4)
    # Linger until the parent acknowledges: exiting now would close our
    # pipe ends while peers may still be running, and a late writer to a
    # closed pipe dies with BrokenPipeError.  The parent sends "exit"
    # once *every* rank has reported done, or "abort" on failure.
    try:
        while True:
            if ctrl.poll(60.0):
                frame = ctrl.recv()
                if frame[0] == CTRL_TAG and frame[1] in ("exit", "abort"):
                    break
            else:  # pragma: no cover - orphaned worker safety valve
                break
    except (EOFError, OSError):  # pragma: no cover - parent died first
        pass
    os._exit(0)


class MpBackend(ExecutionBackend):
    """Execute each rank as a real ``multiprocessing`` process.

    Parameters
    ----------
    shm_threshold:
        Serialized payloads at or above this many bytes travel through
        POSIX shared memory instead of the pipe (default 32 KiB — half
        a Linux pipe buffer, so a frame can never fill a pipe alone).
    timeout:
        Wall-clock supervision limit for the whole run, in seconds.
        Exceeding it aborts the workers and raises
        :class:`repro.machine.faults.RankFailure` naming the
        unfinished ranks.  ``None`` disables the limit.
    poll_interval:
        Worker-side blocking-receive wakeup slice (seconds); bounds
        abort latency, not message latency (arrivals wake the worker
        immediately through ``connection.wait``).
    sleep_cap:
        Upper bound actually slept for one modeled ``elapse`` pause.

    Unsupported features — requesting them raises ``ValueError``: the
    sanitizer shadow layer and fault injection both require the
    deterministic simulator (``--backend sim``).
    """

    name = "mp"
    shared_state = False
    measured = True

    def __init__(
        self,
        shm_threshold: int = 32 * 1024,
        timeout: float | None = 120.0,
        poll_interval: float = 0.02,
        sleep_cap: float = 0.005,
    ) -> None:
        reason = mp_available()
        if reason is not None:
            raise BackendUnavailable(f"backend 'mp' unavailable: {reason}")
        self.shm_threshold = int(shm_threshold)
        self.timeout = timeout
        self.poll_interval = float(poll_interval)
        self.sleep_cap = float(sleep_cap)

    # ------------------------------------------------------------------

    def run(
        self,
        machine: Any,
        programs: Sequence[RankProgram],
        *,
        tracer: Any = None,
        sanitizer: Any = None,
        fault_plan: Any = None,
        initial_clocks: Sequence[float] | None = None,
        initial_metrics: Sequence[Any] | None = None,
        eager_hooks: bool = False,
        max_events: int = 500_000_000,
        raise_on_failure: bool = True,
    ) -> BackendResult:
        if sanitizer is not None:
            raise ValueError(
                "the sanitizer shadow layer needs deterministic virtual "
                "time; use --backend sim for sanitized runs"
            )
        if fault_plan:
            raise ValueError(
                "fault injection needs deterministic virtual time; "
                "use --backend sim for fault experiments"
            )
        n = len(programs)
        if n == 0:
            raise ValueError("no rank programs given")
        if n > machine.nodes:
            raise ValueError(
                f"machine has {machine.nodes} nodes; cannot run {n} ranks"
            )
        if initial_clocks is not None and len(initial_clocks) != n:
            raise ValueError(
                f"initial_clocks has {len(initial_clocks)} entries for {n} ranks"
            )
        if initial_metrics is not None and len(initial_metrics) != n:
            raise ValueError(
                f"initial_metrics has {len(initial_metrics)} entries for {n} ranks"
            )
        trace_enabled = tracer is not None and getattr(tracer, "enabled", False)
        if trace_enabled and getattr(tracer, "clock", "virtual") == "virtual":
            try:
                tracer.clock = "wall"
            except AttributeError:  # pragma: no cover - exotic tracer
                pass

        ctx = get_context("fork")
        runid = f"repro_mp_{os.getpid()}_{next(_run_counter)}"
        readers, writers = [], []
        for _ in range(n):
            r, w = ctx.Pipe(duplex=False)
            readers.append(r)
            writers.append(w)
        locks = [ctx.Lock() for _ in range(n)]
        ctrl_parent, ctrl_child = [], []
        for _ in range(n):
            a, b = ctx.Pipe(duplex=True)
            ctrl_parent.append(a)
            ctrl_child.append(b)

        procs = []
        t_start = time.monotonic()
        try:
            for rank in range(n):
                clk = (
                    float(initial_clocks[rank])
                    if initial_clocks is not None
                    else 0.0
                )
                met = (
                    initial_metrics[rank]
                    if initial_metrics is not None
                    else RankMetrics(rank)
                )
                p = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        n,
                        machine,
                        programs[rank],
                        readers[rank],
                        writers,
                        locks,
                        ctrl_child[rank],
                    ),
                    kwargs=dict(
                        runid=runid,
                        shm_threshold=self.shm_threshold,
                        poll_interval=self.poll_interval,
                        sleep_cap=self.sleep_cap,
                        start_clock=clk,
                        metrics=met,
                        trace=trace_enabled,
                    ),
                    daemon=True,
                    name=f"repro-mp-{rank}",
                )
                p.start()
                procs.append(p)
            # The parent's copies of the data-plane ends are unused.
            for r in readers:
                r.close()
            for w in writers:
                w.close()
            for c in ctrl_child:
                c.close()
            done, errors, failed = self._supervise(
                procs, ctrl_parent, t_start, n
            )
        finally:
            self._teardown(procs, ctrl_parent, runid)

        if errors:
            rank = min(errors)
            blob, tb = errors[rank]
            exc: BaseException | None = None
            if blob is not None:
                try:
                    exc = pickle.loads(blob)
                except Exception:
                    exc = None
            if exc is None:
                exc = RuntimeError(
                    f"rank {rank} raised in the mp backend:\n{tb}"
                )
            else:
                exc.add_note(f"raised in mp worker rank {rank}:\n{tb}")
            raise exc
        if failed:
            raise RankFailure(
                failed=failed,
                time=max(failed.values()),
                blocked=[],
                completed=sorted(done),
                nranks=n,
            )

        returns: list[Any] = [None] * n
        metrics_list: list[RankMetrics] = [RankMetrics(r) for r in range(n)]
        for rank, payload in done.items():
            retval, met, events = pickle.loads(payload)
            returns[rank] = retval
            metrics_list[rank] = met
            if events is not None and trace_enabled:
                self._merge_trace(tracer, events)
        metrics = MachineMetrics(metrics_list)
        return BackendResult(
            elapsed=metrics.elapsed,
            returns=returns,
            metrics=metrics,
            failed_ranks=(),
            backend=self.name,
            measured=True,
        )

    # ------------------------------------------------------------------

    def _supervise(
        self,
        procs: list,
        ctrls: list,
        t_start: float,
        n: int,
    ) -> tuple[dict[int, bytes], dict[int, tuple], dict[int, float]]:
        """Wait for every worker; classify done / error / crashed."""
        done: dict[int, bytes] = {}
        errors: dict[int, tuple] = {}
        failed: dict[int, float] = {}
        pending = set(range(n))
        by_ctrl = {id(c): r for r, c in enumerate(ctrls)}
        by_sentinel = {procs[r].sentinel: r for r in range(n)}
        while pending and not errors and not failed:
            remaining = None
            if self.timeout is not None:
                remaining = self.timeout - (time.monotonic() - t_start)
                if remaining <= 0:
                    elapsed = time.monotonic() - t_start
                    for r in sorted(pending):
                        failed[r] = elapsed
                    break
            waitees: list[Any] = [ctrls[r] for r in pending]
            waitees += [procs[r].sentinel for r in pending]
            slice_ = 0.5 if remaining is None else min(0.5, remaining)
            ready = connection.wait(waitees, timeout=slice_)
            # Control frames first: a crashed-looking sentinel may still
            # have a buffered result.
            for obj in ready:
                rank = by_ctrl.get(id(obj))
                if rank is None or rank not in pending:
                    continue
                self._drain_ctrl(ctrls[rank], rank, done, errors, pending)
            for obj in ready:
                rank = by_sentinel.get(obj)
                if rank is None or rank not in pending:
                    continue
                # Exited without a result frame? Re-check the pipe once.
                self._drain_ctrl(ctrls[rank], rank, done, errors, pending)
                if rank in pending and not procs[rank].is_alive():
                    failed[rank] = time.monotonic() - t_start
                    pending.discard(rank)
        return done, errors, failed

    @staticmethod
    def _drain_ctrl(
        ctrl: Any,
        rank: int,
        done: dict[int, bytes],
        errors: dict[int, tuple],
        pending: set[int],
    ) -> None:
        try:
            while rank in pending and ctrl.poll(0):
                frame = ctrl.recv()
                if frame[0] != CTRL_TAG:  # pragma: no cover - framing guard
                    continue
                if frame[1] == "done":
                    done[rank] = frame[2]
                    pending.discard(rank)
                elif frame[1] == "error":
                    errors[rank] = frame[2]
                    pending.discard(rank)
        except (EOFError, OSError):
            pass

    def _teardown(self, procs: list, ctrls: list, runid: str) -> None:
        """Stop every worker and sweep shared-memory leftovers."""
        for c in ctrls:
            try:
                c.send((CTRL_TAG, "exit", None))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for p in procs:
            p.join(timeout=max(0.0, deadline - time.monotonic()))
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            if p.is_alive():  # pragma: no cover - terminate is enough
                p.join(timeout=1.0)
        for p in procs:
            p.close()
        for c in ctrls:
            try:
                c.close()
            except OSError:  # pragma: no cover
                pass
        # Messages in flight at abort time may have staged segments that
        # no receiver will ever unlink; the run id makes them findable.
        for path in glob.glob(f"/dev/shm/{runid}_*"):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass

    @staticmethod
    def _merge_trace(tracer: Any, events: tuple) -> None:
        """Replay a worker's event buffers through the tracer API."""
        ops, phases, sends, recvs = events
        for rank, phase, kind, t0, t1, flops, nbytes in ops:
            tracer.op(rank, phase, kind, t0, t1, flops, nbytes)
        for rank, t, name in phases:
            tracer.phase(rank, t, name)
        for t, src, dst, tag, nbytes, phase in sends:
            tracer.send(t, src, dst, tag, nbytes, phase)
        for t, rank, src, tag, nbytes, phase in recvs:
            tracer.recv(t, rank, src, tag, nbytes, phase)
