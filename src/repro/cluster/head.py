"""Head-side supervisor: owns the node pool and routes chunk traffic.

The supervisor is the hub of the cluster's star topology.  It listens
on one TCP port, admits node daemons through the ``hello``/``welcome``
handshake (protocol string and CPython feature version must match —
shipped programs are marshalled byte-code), and then serves the
backend one *chunk* at a time: ship programs, route inter-node data
frames by destination rank, collect per-rank results, and tear the
chunk down on success or failure.

Failure detection is two-layered, both surfacing as the same typed
:class:`repro.machine.faults.RankFailure` the mp backend raises:

* a node socket hitting EOF (daemon crashed, host died, SIGKILL) fails
  that node's still-pending ranks immediately;
* a node that stays silent past ``hb_timeout`` — no heartbeat, no
  result, no data — is declared dead even with the socket nominally
  open (half-open TCP after a power loss).

A dead node leaves the pool for good; the next chunk's placement
simply spans the survivors, which is what makes the backend's elastic
shrink-and-continue recovery possible without any rejoin choreography.
"""

from __future__ import annotations

import os
import pickle
import select
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any

from repro.cluster.placement import Placement
from repro.cluster.protocol import (
    CLUSTER_PROTOCOL_VERSION,
    ClusterProtocolError,
    HandshakeError,
    recv_message,
    send_control,
    send_data,
    send_payload,
)
from repro.machine.faults import RankFailure

__all__ = ["ClusterSupervisor", "NodeHandle"]


@dataclass
class NodeHandle:
    """One admitted node daemon, as the head sees it."""

    node_id: int
    sock: socket.socket
    name: str
    host: str
    pid: int
    proc: subprocess.Popen | None = None
    alive: bool = True
    last_seen: float = field(default_factory=time.monotonic)


class ClusterSupervisor:
    """Launch/admit node daemons and run chunks across them.

    Parameters
    ----------
    nnodes:
        Pool size to wait for before the first chunk may run.
    spawn:
        When true (the default, and what tests/CI use) the supervisor
        spawns ``nnodes`` local daemons itself via
        ``python -m repro.cluster.node``.  When false it only listens:
        operators start ``repro node --connect HOST:PORT`` on each
        host by hand.
    host / port:
        Listen address.  Port 0 picks a free port (read it back from
        :attr:`addr` to point manual nodes at it).
    hb_interval / hb_timeout:
        Heartbeat cadence pushed to nodes in ``welcome``, and the
        silence span after which a node is declared dead.
    """

    def __init__(
        self,
        nnodes: int = 2,
        *,
        spawn: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        hb_interval: float = 1.0,
        hb_timeout: float = 10.0,
        connect_timeout: float = 20.0,
    ) -> None:
        if nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {nnodes}")
        self.nnodes = int(nnodes)
        self.spawn = bool(spawn)
        self.hb_interval = float(hb_interval)
        self.hb_timeout = float(hb_timeout)
        self.connect_timeout = float(connect_timeout)
        self.nodes: dict[int, NodeHandle] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(self.nnodes + 2)
        self.addr: tuple[str, int] = self._listener.getsockname()[:2]
        self._started = False
        self._closed = False

    # ------------------------------------------------------------- pool

    def start(self) -> None:
        """Spawn (if configured) and admit the node pool."""
        if self._started:
            return
        if self.spawn:
            for i in range(self.nnodes):
                self._spawn_node(i)
        deadline = time.monotonic() + self.connect_timeout
        while len(self.nodes) < self.nnodes:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise HandshakeError(
                    f"only {len(self.nodes)}/{self.nnodes} node daemons "
                    f"connected within {self.connect_timeout:.0f}s"
                )
            self._listener.settimeout(remaining)
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            self._admit(sock)
        self._started = True

    def _spawn_node(self, i: int) -> None:
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-c",
                # -c (not -m): runpy would import repro.cluster.node
                # twice, once as a package member and once as __main__.
                "import sys; from repro.cluster.node import main; "
                "sys.exit(main(sys.argv[1:]))",
                "--connect", f"{self.addr[0]}:{self.addr[1]}",
                "--name", f"node{i}",
            ],
            env=env,
            stdin=subprocess.DEVNULL,
        )
        # The handle is attached to the NodeHandle at admit time by pid.
        self._spawned = getattr(self, "_spawned", [])
        self._spawned.append(proc)

    def _admit(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(30.0)
        msg = recv_message(sock)
        if msg is None or msg[0] != "control" or msg[1].get("op") != "hello":
            sock.close()
            raise HandshakeError("node connection did not open with hello")
        hello = msg[1]
        problems: list[str] = []
        if hello.get("protocol") != CLUSTER_PROTOCOL_VERSION:
            problems.append(
                f"protocol {hello.get('protocol')!r} != "
                f"{CLUSTER_PROTOCOL_VERSION!r}"
            )
        their_py = tuple(hello.get("python", ()))[:2]
        our_py = tuple(sys.version_info[:2])
        if their_py != our_py:
            problems.append(
                f"CPython {their_py} != head's {our_py} "
                "(shipped programs are marshalled byte-code)"
            )
        if problems:
            detail = "; ".join(problems)
            try:
                send_control(sock, {
                    "op": "welcome", "ok": False,
                    "error": {"type": "HandshakeError", "message": detail},
                })
            finally:
                sock.close()
            raise HandshakeError(f"node {hello.get('name')!r} rejected: {detail}")
        node_id = len(self.nodes)
        send_control(sock, {
            "op": "welcome", "ok": True,
            "node_id": node_id, "hb_interval": self.hb_interval,
        })
        handle = NodeHandle(
            node_id=node_id,
            sock=sock,
            name=str(hello.get("name", f"node{node_id}")),
            host=str(hello.get("host", "?")),
            pid=int(hello.get("pid", -1)),
        )
        for proc in getattr(self, "_spawned", []):
            if proc.pid == handle.pid:
                handle.proc = proc
        self.nodes[node_id] = handle

    def alive_ids(self) -> list[int]:
        return sorted(nid for nid, h in self.nodes.items() if h.alive)

    def _mark_dead(self, handle: NodeHandle, why: str) -> None:
        if not handle.alive:
            return
        handle.alive = False
        try:
            handle.sock.close()
        except OSError:  # pragma: no cover
            pass
        if handle.proc is not None and handle.proc.poll() is None:
            try:
                handle.proc.terminate()
            except OSError:  # pragma: no cover
                pass
        print(
            f"[repro cluster] node {handle.node_id} ({handle.name}) "
            f"lost: {why}",
            file=sys.stderr, flush=True,
        )

    # ------------------------------------------------------------ chunks

    def run_chunk(
        self,
        *,
        runid: str,
        machine: Any,
        nranks: int,
        placement: Placement,
        program_blobs: list[bytes],
        program_of_rank: list[int],
        config_sha: str,
        options: dict[str, Any],
        clocks: list[float],
        metrics: list[Any],
        trace: bool,
        timeout: float | None,
    ) -> dict[int, bytes]:
        """Run one chunk to completion; returns ``{rank: done_payload}``.

        Raises the worker's own exception for a program error (mp
        semantics: lowest rank wins, traceback attached as a note) and
        :class:`RankFailure` for crashed/lost/timed-out ranks.
        """
        self.start()
        participants = [self.nodes[nid] for nid in placement.node_ids]
        if not all(h.alive for h in participants):
            dead = [h.node_id for h in participants if not h.alive]
            raise ClusterProtocolError(
                f"placement names dead node(s) {dead}"
            )
        launch = {
            "op": "launch",
            "runid": runid,
            "config_sha": config_sha,
            "nranks": nranks,
            "machine": machine,
            "placement": placement.to_wire(),
            "programs": program_blobs,
            "program_of_rank": program_of_rank,
            "options": options,
            "clocks": clocks,
            "metrics": metrics,
            "trace": trace,
        }
        t_start = time.monotonic()
        for h in participants:
            h.last_seen = t_start
            send_payload(h.sock, launch)

        node_of = placement.node_of_rank
        pending = set(range(nranks))
        done: dict[int, bytes] = {}
        errors: dict[int, tuple] = {}
        failed: dict[int, float] = {}

        def elapsed() -> float:
            return time.monotonic() - t_start

        def fail_node(handle: NodeHandle, why: str) -> None:
            self._mark_dead(handle, why)
            t = elapsed()
            for r in sorted(pending):
                if node_of[r] == handle.node_id:
                    failed[r] = t
                    pending.discard(r)

        def handle_msg(handle: NodeHandle, msg: tuple[str, Any]) -> None:
            handle.last_seen = time.monotonic()
            kind, body = msg
            if kind == "data":
                dst, frame = body
                target = self.nodes.get(node_of[dst])
                if target is not None and target.alive:
                    try:
                        send_data(target.sock, dst, frame)
                    except OSError:
                        fail_node(target, "send failed")
                return
            op = body.get("op")
            if op in ("hb", "ready"):
                return
            if op == "rank_done":
                r = int(body["rank"])
                if r in pending:
                    done[r] = body["payload"]
                    pending.discard(r)
            elif op == "rank_error":
                r = int(body["rank"])
                if r in pending:
                    errors[r] = body["payload"]
                    pending.discard(r)
            elif op == "rank_crash":
                r = int(body["rank"])
                if r in pending:
                    failed[r] = elapsed()
                    pending.discard(r)
            elif op == "launch_failed":
                raise ClusterProtocolError(
                    f"node {handle.node_id} refused launch: {body.get('error')}"
                )

        try:
            while pending and not errors and not failed:
                if timeout is not None and elapsed() > timeout:
                    t = elapsed()
                    for r in sorted(pending):
                        failed[r] = t
                    break
                now = time.monotonic()
                for h in participants:
                    if h.alive and now - h.last_seen > self.hb_timeout:
                        fail_node(h, f"no heartbeat for {self.hb_timeout:.0f}s")
                socks = [h.sock for h in participants if h.alive]
                if not socks:
                    break
                ready = connection.wait(socks, timeout=0.1)
                for h in participants:
                    if not h.alive or h.sock not in ready:
                        continue
                    while h.alive:
                        r_, _, _ = select.select([h.sock], [], [], 0)
                        if not r_:
                            break
                        try:
                            msg = recv_message(h.sock)
                        except (OSError, ClusterProtocolError) as exc:
                            fail_node(h, f"recv failed: {exc}")
                            break
                        if msg is None:
                            fail_node(h, "connection closed")
                            break
                        handle_msg(h, msg)
        except BaseException:
            self._abort_chunk(participants, runid)
            raise

        if errors or failed:
            self._abort_chunk(participants, runid)
        else:
            self._finish_chunk(participants, runid)

        if errors:
            rank = min(errors)
            blob, tb = errors[rank]
            exc: BaseException | None = None
            if blob is not None:
                try:
                    exc = pickle.loads(blob)
                except Exception:
                    exc = None
            if exc is None:
                exc = RuntimeError(
                    f"rank {rank} raised in the cluster backend:\n{tb}"
                )
            else:
                exc.add_note(f"raised in cluster worker rank {rank}:\n{tb}")
            raise exc
        if failed:
            raise RankFailure(
                failed=failed,
                time=max(failed.values()),
                blocked=[],
                completed=sorted(done),
                nranks=nranks,
            )
        return done

    def _abort_chunk(self, participants: list[NodeHandle], runid: str) -> None:
        for h in participants:
            if not h.alive:
                continue
            try:
                send_control(h.sock, {"op": "abort", "runid": runid})
            except OSError:
                self._mark_dead(h, "abort send failed")
        self._await_acks(participants, "chunk_aborted", deadline=3.0)

    def _finish_chunk(self, participants: list[NodeHandle], runid: str) -> None:
        for h in participants:
            if not h.alive:  # pragma: no cover - all alive on success
                continue
            try:
                send_control(h.sock, {"op": "exit_chunk", "runid": runid})
            except OSError:
                self._mark_dead(h, "exit_chunk send failed")
        self._await_acks(participants, "chunk_done", deadline=5.0)

    def _await_acks(
        self, participants: list[NodeHandle], op: str, deadline: float
    ) -> None:
        """Best-effort wait for per-node teardown acknowledgements (late
        data frames in flight are drained and dropped on the floor)."""
        waiting = {h.node_id for h in participants if h.alive}
        limit = time.monotonic() + deadline
        while waiting and time.monotonic() < limit:
            socks = [
                h.sock for h in participants
                if h.alive and h.node_id in waiting
            ]
            if not socks:
                break
            ready = connection.wait(
                socks, timeout=max(0.0, limit - time.monotonic())
            )
            for h in participants:
                if h.node_id not in waiting or not h.alive:
                    continue
                if h.sock not in ready:
                    continue
                try:
                    msg = recv_message(h.sock)
                except (OSError, ClusterProtocolError):
                    self._mark_dead(h, "teardown recv failed")
                    waiting.discard(h.node_id)
                    continue
                if msg is None:
                    self._mark_dead(h, "closed during teardown")
                    waiting.discard(h.node_id)
                    continue
                h.last_seen = time.monotonic()
                if msg[0] == "control" and msg[1].get("op") == op:
                    waiting.discard(h.node_id)

    # ------------------------------------------------------------- close

    def close(self) -> None:
        """Shut the pool down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for h in self.nodes.values():
            if not h.alive:
                continue
            try:
                send_control(h.sock, {"op": "shutdown"})
            except OSError:
                pass
            try:
                h.sock.close()
            except OSError:  # pragma: no cover
                pass
            h.alive = False
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        for proc in getattr(self, "_spawned", []):
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
