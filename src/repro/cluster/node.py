"""``repro node`` — the per-host daemon of the cluster backend.

One daemon runs on every participating host.  It dials the head,
handshakes (protocol version + CPython version — shipped programs are
marshalled byte-code, so the interpreter feature version must match),
then serves *chunks*: for each ``launch`` it forks one worker process
per local rank, pumps messages for the duration, and tears the workers
down when the head says the chunk is over.

Data plane
----------
Workers run the very same primitive interpreter as the mp backend
(:class:`repro.backend.mp._Engine`), subclassed only in how a frame
leaves the host:

* **local destination** — the frame goes straight down the peer's
  inbox pipe, shared-memory fast path included, exactly as mp;
* **remote destination** — the frame rides the worker's *uplink* pipe
  to the daemon, which wraps it in a data frame and sends it to the
  head; the head routes it to the destination's daemon, which deposits
  it into the destination worker's inbox.  Frames larger than the
  shm threshold are re-staged through a local shared-memory segment on
  arrival so inbox pipe writes stay small (the same no-wedge argument
  the mp backend makes for its pipes).

Mailbox semantics, sender sequence numbers and the canonical
``(src, seq)`` drain order are untouched — physics stays byte-identical
to ``sim`` and ``mp`` by the same argument the mp backend documents.

Control plane
-------------
Heartbeats flow daemon -> head on the reserved control channel at the
interval the ``welcome`` frame sets; worker results (``rank_done``),
program errors (``rank_error``) and silent worker deaths
(``rank_crash``) are forwarded as they happen.  A daemon that loses
its head aborts its workers and exits — orphaned rank workers see
their control pipe close and kill themselves.
"""

from __future__ import annotations

import glob
import os
import pickle
import select
import socket
import sys
import time
from multiprocessing import connection, get_context, shared_memory
from typing import Any

from repro.backend.mp import (
    CTRL_TAG,
    _Engine,
    _FRAME_INLINE,
    _FRAME_SHM_PICKLE,
    _untrack_shm,
    _worker_main,
)
from repro.cluster import shipping
from repro.cluster.protocol import (
    CLUSTER_PROTOCOL_VERSION,
    ClusterProtocolError,
    recv_message,
    send_control,
    send_data,
    send_payload,
)

__all__ = ["NodeDaemon"]

#: Daemon-side deposits are restaged through shared memory above this
#: size so every inbox pipe write stays under POSIX ``PIPE_BUF`` (4096
#: on Linux): ``select`` reporting a pipe writable then *guarantees*
#: the write cannot block, which is what makes the daemon's routing
#: loop deadlock-free (a blocking deposit into a stalled worker would
#: otherwise stop heartbeats and frame routing for the whole node).
_PIPE_SAFE = 3072


class _HeadLost(Exception):
    """The head connection died (EOF or socket error)."""


def _arm_deathwatch() -> None:
    """Tie a rank worker's life to its daemon (Linux ``PDEATHSIG``).

    Workers fork after every local pipe *and* the head socket exist, so
    each inherits the others' pipe ends and the daemon's TCP fd — a
    SIGKILLed daemon would leave workers holding the socket open (the
    head never sees EOF) and each other's control pipes open (nobody
    sees EOF there either).  ``PR_SET_PDEATHSIG`` cuts the knot: the
    kernel kills every worker the moment the daemon dies, which closes
    the socket and turns a killed node into a prompt EOF at the head.
    """
    try:
        import ctypes
        import signal

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)  # PR_SET_PDEATHSIG
        if os.getppid() == 1:  # daemon died before the watch was armed
            os._exit(4)
    except Exception:  # pragma: no cover - non-Linux fallback: the
        pass           # head's heartbeat timeout still catches the loss


class _RemoteEngine(_Engine):
    """mp's measured-time interpreter with an off-host uplink.

    ``writers[dst] is None`` marks a remote destination: those frames
    are handed to the daemon over the uplink pipe instead of a local
    inbox, and shared-memory staging is disabled for them (segments
    do not cross hosts — the raw bytes travel inline and the receiving
    daemon re-stages oversized ones locally).
    """

    def __init__(self, *args: Any, uplink: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.uplink = uplink

    def _shm_ok(self, dst: int) -> bool:
        return self.writers[dst] is not None

    def _transmit(self, dst: int, frame: bytes) -> None:
        if self.writers[dst] is not None:
            super()._transmit(dst, frame)
            return
        self._pump(0.0)
        self.uplink.send((dst, frame))


class NodeDaemon:
    """One cluster node: connects to a head and hosts rank workers."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str | None = None,
        connect_timeout: float = 30.0,
    ) -> None:
        self.head_addr = (host, port)
        self.name = name or socket.gethostname()
        self.connect_timeout = connect_timeout
        self.node_id = -1
        self.hb_interval = 1.0
        self._sock: socket.socket | None = None
        self._next_hb = 0.0
        self._restage_count = 0

    # ----------------------------------------------------------- logging

    def _log(self, msg: str) -> None:
        print(f"[repro node {self.name}] {msg}", file=sys.stderr, flush=True)

    # ------------------------------------------------------------ daemon

    def run(self) -> int:
        """Connect, handshake, serve chunks until shutdown.  Returns the
        process exit code (0 = clean shutdown from the head)."""
        try:
            self._sock = socket.create_connection(
                self.head_addr, timeout=self.connect_timeout
            )
        except OSError as exc:
            self._log(f"cannot reach head at {self.head_addr}: {exc}")
            return 1
        sock = self._sock
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            send_control(sock, {
                "op": "hello",
                "protocol": CLUSTER_PROTOCOL_VERSION,
                "python": list(sys.version_info[:3]),
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "name": self.name,
            })
            msg = recv_message(sock)
            if msg is None or msg[0] != "control":
                self._log("head closed the connection during handshake")
                return 1
            welcome = msg[1]
            if not welcome.get("ok", True):
                err = welcome.get("error", {})
                self._log(f"head refused handshake: {err.get('message', err)}")
                return 1
            self.node_id = int(welcome["node_id"])
            self.hb_interval = float(welcome.get("hb_interval", 1.0))
            self._next_hb = time.monotonic()
            self._log(
                f"joined head {self.head_addr[0]}:{self.head_addr[1]} "
                f"as node {self.node_id}"
            )
            return self._serve()
        except _HeadLost:
            self._log("head connection lost; exiting")
            return 1
        except ClusterProtocolError as exc:
            self._log(f"protocol error: {exc}")
            return 1
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def _serve(self) -> int:
        sock = self._sock
        assert sock is not None
        while True:
            self._heartbeat()
            ready = connection.wait([sock], timeout=self._hb_slice())
            if not ready:
                continue
            msg = recv_message(sock)
            if msg is None:
                raise _HeadLost()
            kind, body = msg
            op = body.get("op")
            if kind == "control" and op == "shutdown":
                self._log("shutdown requested; exiting")
                return 0
            if kind == "payload" and op == "launch":
                self._chunk(body)
            # Anything else while idle (stray data from a chunk that
            # was just torn down, late aborts) is dropped.

    def _hb_slice(self) -> float:
        return min(0.2, max(0.0, self._next_hb - time.monotonic()))

    def _heartbeat(self) -> None:
        now = time.monotonic()
        if now < self._next_hb:
            return
        self._next_hb = now + self.hb_interval
        try:
            send_control(self._sock, {"op": "hb"})
        except OSError as exc:
            raise _HeadLost() from exc

    # ------------------------------------------------------------- chunk

    def _chunk(self, launch: dict[str, Any]) -> None:
        """Run one chunk: fork local workers, pump until torn down."""
        sock = self._sock
        assert sock is not None
        runid = launch["runid"]
        n = int(launch["nranks"])
        placement = list(launch["placement"])
        blobs = launch["programs"]
        index = launch["program_of_rank"]
        opts = launch["options"]
        declared = launch["config_sha"]
        got = shipping.blobs_sha(blobs)
        if got != declared:
            send_control(sock, {
                "op": "launch_failed", "runid": runid,
                "error": f"program sha mismatch: head declared "
                         f"{declared[:12]}, received {got[:12]}",
            })
            return
        try:
            programs = [shipping.load_program(b) for b in blobs]
        except Exception as exc:
            send_control(sock, {
                "op": "launch_failed", "runid": runid,
                "error": f"{type(exc).__name__}: {exc}",
            })
            return

        local = [r for r in range(n) if placement[r] == self.node_id]
        machine = launch["machine"]
        clocks = launch["clocks"]
        metrics = launch["metrics"]
        trace = bool(launch["trace"])
        shm_threshold = int(opts["shm_threshold"])

        ctx = get_context("fork")
        writers: list[Any] = [None] * n
        locks: list[Any] = [None] * n
        readers: dict[int, Any] = {}
        for r in local:
            rd, wr = ctx.Pipe(duplex=False)
            readers[r] = rd
            writers[r] = wr
            locks[r] = ctx.Lock()
        ctrls: dict[int, Any] = {}
        ctrl_childs: dict[int, Any] = {}
        uplinks: dict[int, Any] = {}
        uplink_ws: dict[int, Any] = {}
        for r in local:
            a, b = ctx.Pipe(duplex=True)
            ctrls[r], ctrl_childs[r] = a, b
            ur, uw = ctx.Pipe(duplex=False)
            uplinks[r], uplink_ws[r] = ur, uw

        procs: dict[int, Any] = {}
        for r in local:
            uplink = uplink_ws[r]

            def factory(*a: Any, _uplink: Any = uplink, **kw: Any) -> _RemoteEngine:
                _arm_deathwatch()
                return _RemoteEngine(*a, uplink=_uplink, **kw)

            p = ctx.Process(
                target=_worker_main,
                args=(
                    r, n, machine, programs[index[r]],
                    readers[r], writers, locks, ctrl_childs[r],
                ),
                kwargs=dict(
                    runid=runid,
                    shm_threshold=shm_threshold,
                    poll_interval=float(opts["poll_interval"]),
                    sleep_cap=float(opts["sleep_cap"]),
                    start_clock=float(clocks[r]),
                    metrics=metrics[r],
                    trace=trace,
                    engine_factory=factory,
                ),
                daemon=True,
                name=f"repro-cluster-{r}",
            )
            p.start()
            procs[r] = p
        # Parent keeps the inbox *writers* (it deposits inbound frames)
        # but not the worker-held ends.
        for r in local:
            readers[r].close()
            ctrl_childs[r].close()
            uplink_ws[r].close()

        send_control(sock, {"op": "ready", "runid": runid,
                            "config_sha": declared, "ranks": local})
        try:
            self._pump_chunk(
                runid, local, writers, locks, ctrls, uplinks, procs,
            )
        finally:
            self._teardown_chunk(runid, local, writers, ctrls, uplinks, procs)

    def _pump_chunk(
        self,
        runid: str,
        local: list[int],
        writers: list[Any],
        locks: list[Any],
        ctrls: dict[int, Any],
        uplinks: dict[int, Any],
        procs: dict[int, Any],
    ) -> None:
        """Route frames and supervise local workers until the head ends
        the chunk (``exit_chunk``/``abort``) or dies."""
        sock = self._sock
        assert sock is not None
        pending = set(local)         # ranks with no done/error/crash yet
        open_uplinks = dict(uplinks)
        sentinels = {procs[r].sentinel: r for r in local}
        backlog: dict[int, list[bytes]] = {r: [] for r in local}

        def deposit(dst: int, frame: bytes) -> None:
            """Queue a frame for a local inbox; never blocks.

            Oversized frames are restaged through local shared memory
            first so each pipe write fits in one atomic ``PIPE_BUF``
            chunk, then :func:`flush` only writes while ``select``
            says the pipe can take it.
            """
            if writers[dst] is None:
                return  # stale frame for a rank we no longer host
            if len(frame) >= _PIPE_SAFE:
                frame = self._restage(runid, frame)
            backlog[dst].append(frame)
            flush(dst)

        def flush(dst: int) -> None:
            q = backlog[dst]
            w = writers[dst]
            while q:
                _, writable, _ = select.select([], [w], [], 0)
                if not writable:
                    return
                with locks[dst]:
                    w.send_bytes(q.pop(0))

        while True:
            self._heartbeat()
            for r in local:
                if backlog[r]:
                    flush(r)
            waitees: list[Any] = [sock]
            waitees += list(open_uplinks.values())
            waitees += [ctrls[r] for r in pending]
            waitees += [procs[r].sentinel for r in pending]
            backed_up = any(backlog[r] for r in local)
            timeout = 0.002 if backed_up else self._hb_slice()
            ready = connection.wait(waitees, timeout=timeout)
            ready_ids = {id(o) for o in ready}

            # -- frames from the head (drained greedily) ----------------
            if id(sock) in ready_ids or sock in ready:
                while True:
                    r_, _, _ = select.select([sock], [], [], 0)
                    if not r_:
                        break
                    msg = recv_message(sock)
                    if msg is None:
                        raise _HeadLost()
                    kind, body = msg
                    if kind == "data":
                        dst, frame = body
                        deposit(dst, frame)
                    elif kind == "control":
                        op = body.get("op")
                        if op == "abort":
                            self._abort_workers(ctrls, procs)
                            send_control(sock, {
                                "op": "chunk_aborted", "runid": runid,
                            })
                            return
                        if op == "exit_chunk":
                            self._release_workers(ctrls, procs)
                            send_control(sock, {
                                "op": "chunk_done", "runid": runid,
                            })
                            return

            # -- frames from local workers ------------------------------
            for r, ur in list(open_uplinks.items()):
                try:
                    while ur.poll(0):
                        dst, frame = ur.recv()
                        if writers[dst] is not None:
                            deposit(dst, frame)
                        else:
                            send_data(sock, dst, frame)
                except (EOFError, OSError):
                    del open_uplinks[r]

            # -- worker control frames ----------------------------------
            for r in list(pending):
                ctrl = ctrls[r]
                try:
                    while r in pending and ctrl.poll(0):
                        frame = ctrl.recv()
                        if frame[0] != CTRL_TAG:  # pragma: no cover
                            continue
                        if frame[1] == "done":
                            pending.discard(r)
                            send_payload(sock, {
                                "op": "rank_done", "runid": runid,
                                "rank": r, "payload": frame[2],
                            })
                        elif frame[1] == "error":
                            pending.discard(r)
                            send_payload(sock, {
                                "op": "rank_error", "runid": runid,
                                "rank": r, "payload": frame[2],
                            })
                except (EOFError, OSError):
                    if r in pending:
                        pending.discard(r)
                        send_control(sock, {
                            "op": "rank_crash", "runid": runid, "rank": r,
                        })

            # -- silent worker deaths -----------------------------------
            for sentinel, r in list(sentinels.items()):
                if r in pending and sentinel in ready and not procs[r].is_alive():
                    pending.discard(r)
                    send_control(sock, {
                        "op": "rank_crash", "runid": runid, "rank": r,
                    })

    def _restage(self, runid: str, frame: bytes) -> bytes:
        """Move an oversized inline frame body into local shared memory
        so the inbox pipe write stays below the pipe-buffer bound."""
        try:
            src, tag, seq, nbytes, (kind, data) = pickle.loads(frame)
        except Exception:  # pragma: no cover - forward verbatim
            return frame
        if kind != _FRAME_INLINE:
            return frame
        self._restage_count += 1
        name = f"{runid}_fw{self.node_id}_{self._restage_count}"
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(data)), name=name
        )
        _untrack_shm(shm.name.lstrip("/"))
        shm.buf[: len(data)] = data
        shm.close()
        return pickle.dumps(
            (src, tag, seq, nbytes, (_FRAME_SHM_PICKLE, (name, len(data)))),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    # ---------------------------------------------------------- teardown

    @staticmethod
    def _abort_workers(ctrls: dict[int, Any], procs: dict[int, Any]) -> None:
        for rank in sorted(ctrls):
            try:
                ctrls[rank].send((CTRL_TAG, "abort", None))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for p in procs.values():
            p.join(timeout=max(0.0, deadline - time.monotonic()))
        for p in procs.values():
            if p.is_alive():
                p.terminate()

    @staticmethod
    def _release_workers(ctrls: dict[int, Any], procs: dict[int, Any]) -> None:
        for rank in sorted(ctrls):
            try:
                ctrls[rank].send((CTRL_TAG, "exit", None))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for p in procs.values():
            p.join(timeout=max(0.0, deadline - time.monotonic()))
        for p in procs.values():
            if p.is_alive():  # pragma: no cover - exit is enough
                p.terminate()

    def _teardown_chunk(
        self,
        runid: str,
        local: list[int],
        writers: list[Any],
        ctrls: dict[int, Any],
        uplinks: dict[int, Any],
        procs: dict[int, Any],
    ) -> None:
        for p in procs.values():
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for p in procs.values():
            p.close()
        for r in local:
            for conn in (writers[r], ctrls[r], uplinks[r]):
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        # Sweep staged segments no receiver will ever unlink (aborted
        # messages in flight) — same policy as the mp backend.
        for path in glob.glob(f"/dev/shm/{runid}_*"):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI shim
    """Standalone entry (the CLI's ``repro node`` calls NodeDaemon
    directly; this exists for ``python -m repro.cluster.node``)."""
    import argparse

    from repro.cluster.protocol import parse_hostport

    p = argparse.ArgumentParser(prog="repro-node")
    p.add_argument("--connect", required=True, metavar="HOST:PORT")
    p.add_argument("--name", default=None)
    args = p.parse_args(argv)
    host, port = parse_hostport(args.connect)
    try:
        return NodeDaemon(host, port, name=args.name).run()
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
