"""Ship rank-program callables to node daemons on other hosts.

The mp backend sidesteps serialisation entirely: rank programs are
closures over driver state, and ``fork`` gives every worker a copy for
free.  A node daemon on another host has no fork relationship with the
head, so the closure must really travel.  Plain pickle refuses
(functions pickle by qualified name; a closure has none that
resolves), hence this module's three-layer scheme:

* **by reference** when possible — a module-level function (or any
  picklable object) ships as its ordinary pickle, resolved by import
  on the node;
* **by value** otherwise — a closure or local function ships as its
  marshalled code object plus recursively-shipped closure cells,
  defaults and the referenced module globals.  Cells are pickled as
  *one* tuple so objects shared between cells (the config referenced
  by both ``cfg`` and ``world.config``) keep their shared identity on
  the far side, exactly as a fork copy would;
* **globals by import, with a shipped overlay as fallback** — the
  rebuilt function prefers the live ``__dict__`` of its defining
  module (importable on any node with the same checkout); only when
  that import fails does it fall back to the shipped name-by-name
  snapshot of the globals its code actually references.

``marshal`` byte-code is CPython-version specific, so blobs embed the
producing ``(major, minor)`` and :func:`load_program` refuses a
mismatch — the cluster handshake enforces the same rule before any
program is ever shipped.
"""

from __future__ import annotations

import builtins
import hashlib
import importlib
import marshal
import pickle
import sys
import types
from typing import Any, Callable, Iterable

__all__ = ["ShipError", "ship_program", "load_program", "blobs_sha"]

#: Bumped on any incompatible change to the shipped tree layout.
SHIP_FORMAT = 1

_EMPTY_CELL = "__repro_empty_cell__"


class ShipError(TypeError):
    """A callable (or something it closes over) cannot be shipped."""


def _code_names(code: types.CodeType) -> set[str]:
    """Global names referenced by ``code``, including nested code."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _code_names(const)
    return names


def _ship(obj: Any, path: str) -> tuple:
    """Encode one object as a tagged tree node."""
    if isinstance(obj, types.ModuleType):
        return ("module", obj.__name__)
    if isinstance(obj, types.FunctionType):
        # Module-level functions resolve by qualified name; prefer the
        # reference so the node runs the *live* definition.  ``__main__``
        # never qualifies: the node's ``__main__`` is the daemon, not
        # whatever script defined the function.  The loads-back check
        # also rejects decorated/shadowed names that would resolve to a
        # different object on the far side.
        mod = getattr(obj, "__module__", None)
        if mod and mod != "__main__":
            try:
                blob = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
                if pickle.loads(blob) is obj:
                    return ("pickle", blob)
            except Exception:
                pass
        return _ship_function(obj, path)
    try:
        return ("pickle", pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))
    except Exception as exc:
        raise ShipError(
            f"cannot ship {path}: {type(obj).__name__} is not picklable "
            f"({exc})"
        ) from exc


def _ship_function(fn: types.FunctionType, path: str) -> tuple:
    code = fn.__code__
    cells: list[Any] = []
    for cell in fn.__closure__ or ():
        try:
            cells.append(cell.cell_contents)
        except ValueError:  # pragma: no cover - unbound recursive cell
            cells.append(_EMPTY_CELL)
    try:
        # One pickle for all cells: objects shared between cells stay
        # shared after the round trip (fork-copy identity semantics).
        closure_node: tuple = ("pickle", pickle.dumps(
            tuple(cells), pickle.HIGHEST_PROTOCOL
        ))
    except Exception:
        closure_node = ("tuple", tuple(
            _ship(v, f"{path}.<cell {i}>") for i, v in enumerate(cells)
        ))
    shipped_globals: dict[str, tuple] = {}
    fn_globals = fn.__globals__
    for name in sorted(_code_names(code)):
        if name not in fn_globals:
            continue  # a builtin, or resolved at call time
        try:
            shipped_globals[name] = _ship(fn_globals[name], f"{path}.{name}")
        except ShipError:
            # Leave it to the module-import path on the node; a real
            # miss surfaces as a NameError naming the symbol.
            continue
    return ("func", {
        "code": marshal.dumps(code),
        "name": fn.__name__,
        "qualname": fn.__qualname__,
        "module": getattr(fn, "__module__", None),
        "defaults": _ship(fn.__defaults__, f"{path}.__defaults__"),
        "kwdefaults": _ship(fn.__kwdefaults__, f"{path}.__kwdefaults__"),
        "closure": closure_node,
        "globals": shipped_globals,
    })


def _load(node: tuple) -> Any:
    tag, data = node
    if tag == "pickle":
        return pickle.loads(data)
    if tag == "module":
        return importlib.import_module(data)
    if tag == "tuple":
        return tuple(_load(item) for item in data)
    if tag == "func":
        return _load_function(data)
    raise ShipError(f"unknown ship node tag {tag!r}")


def _load_function(data: dict[str, Any]) -> types.FunctionType:
    code = marshal.loads(data["code"])
    modname = data["module"]
    g: dict[str, Any] | None = None
    if modname and modname != "__main__":
        # ``__main__`` is excluded: importing it here would resolve to
        # the *daemon's* entry module, not the script that defined fn.
        try:
            g = vars(importlib.import_module(modname))
        except Exception:
            g = None
    if g is None:
        g = {"__builtins__": builtins, "__name__": modname or "<shipped>"}
        for name, sub in data["globals"].items():
            g[name] = _load(sub)
    cells = _load(data["closure"])
    closure = tuple(
        types.CellType() if _is_empty(v) else types.CellType(v)
        for v in cells
    ) or None
    fn = types.FunctionType(
        code, g, data["name"], _load(data["defaults"]), closure
    )
    fn.__kwdefaults__ = _load(data["kwdefaults"])
    fn.__qualname__ = data["qualname"]
    return fn


def _is_empty(value: Any) -> bool:
    return isinstance(value, str) and value == _EMPTY_CELL


def ship_program(fn: Callable) -> bytes:
    """Serialise one rank program for transport to a node daemon."""
    if not callable(fn):
        raise ShipError(f"rank program must be callable, got {type(fn).__name__}")
    tree = _ship(fn, getattr(fn, "__qualname__", repr(fn)))
    return pickle.dumps(
        {
            "format": SHIP_FORMAT,
            "python": tuple(sys.version_info[:2]),
            "tree": tree,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def load_program(blob: bytes) -> Callable:
    """Rebuild a shipped rank program (on the node daemon)."""
    doc = pickle.loads(blob)
    if doc.get("format") != SHIP_FORMAT:
        raise ShipError(
            f"shipped-program format {doc.get('format')!r} != {SHIP_FORMAT}"
        )
    produced = tuple(doc.get("python", ()))
    here = tuple(sys.version_info[:2])
    if produced != here:
        raise ShipError(
            f"program marshalled by CPython {produced} cannot load on "
            f"{here} (marshal is version-specific)"
        )
    fn = _load(doc["tree"])
    if not callable(fn):
        raise ShipError(f"shipped blob decoded to non-callable {type(fn).__name__}")
    return fn


def blobs_sha(blobs: Iterable[bytes], extra: bytes = b"") -> str:
    """Content identity of a chunk's shipped programs (the launch
    handshake's ``config_sha``): nodes verify what they received is
    what the head declared."""
    h = hashlib.sha256()
    for blob in blobs:
        h.update(hashlib.sha256(blob).digest())
    h.update(extra)
    return h.hexdigest()
