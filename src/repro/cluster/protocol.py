"""Length-framed wire protocol between the cluster head and node daemons.

One TCP connection per node daemon carries three frame kinds, each
``kind byte + 4-byte big-endian body length + body``:

``J`` (control, JSON)
    Small structured control messages: the ``hello``/``welcome``
    handshake (protocol version, CPython version, node identity),
    ``hb`` heartbeats on the reserved control channel, ``ready`` /
    ``rank_crash`` / ``abort`` / ``exit_chunk`` / ``shutdown`` and
    their acknowledgements.  Capped at :data:`MAX_CONTROL_FRAME` —
    mirroring the ``repro.serve`` framing discipline, an oversized or
    malformed control frame is a typed error, never a raw traceback.
``P`` (payload, pickle)
    Control messages that must carry binary cargo: ``launch`` (shipped
    program blobs, machine spec, per-rank clocks/metrics) and
    ``rank_done`` / ``rank_error`` results.  Head and nodes are
    mutually trusted (the head spawns the nodes, or an operator starts
    them against a head they own), so pickle is acceptable here; the
    handshake's version checks keep it compatible.
``B`` (data)
    One rank-to-rank message frame in transit: 4-byte big-endian
    destination rank followed by the *verbatim* mp-engine frame bytes.
    The head routes these by destination; neither the head nor the
    daemons ever unpickle user payloads in flight.

Framing errors are typed (:class:`ClusterProtocolError`,
:class:`FrameTooLarge`, :class:`HandshakeError`) and a clean EOF is
``None`` from :func:`recv_message` — the caller decides whether that
is a graceful shutdown or a dead peer.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
from typing import Any

__all__ = [
    "CLUSTER_PROTOCOL_VERSION",
    "MAX_CONTROL_FRAME",
    "MAX_BULK_FRAME",
    "ClusterProtocolError",
    "FrameTooLarge",
    "HandshakeError",
    "send_control",
    "send_payload",
    "send_data",
    "recv_message",
    "parse_hostport",
]

#: Bumped on every incompatible wire change; ``hello``/``welcome``
#: must agree exactly.
CLUSTER_PROTOCOL_VERSION = "repro-cluster/1"

#: Control (JSON) frames are tiny; a megabyte of headroom means the
#: cap only ever trips on garbage or abuse (same policy as serve).
MAX_CONTROL_FRAME = 1 << 20

#: Pickle/data frames carry program blobs and user payloads; 1 GiB is
#: far above anything the engine ships while still catching a
#: corrupted length word before it turns into an allocation bomb.
MAX_BULK_FRAME = 1 << 30

_KIND_CONTROL = b"J"
_KIND_PAYLOAD = b"P"
_KIND_DATA = b"B"

_LEN = struct.Struct(">I")
_DST = struct.Struct(">I")


class ClusterProtocolError(ValueError):
    """A frame violated the cluster wire contract."""


class FrameTooLarge(ClusterProtocolError):
    """A frame exceeded its size cap (the connection must close)."""


class HandshakeError(ClusterProtocolError):
    """Version or identity mismatch during the hello/welcome exchange."""


def _send_frame(sock: socket.socket, kind: bytes, body: bytes) -> None:
    sock.sendall(kind + _LEN.pack(len(body)) + body)


def send_control(sock: socket.socket, obj: dict[str, Any]) -> None:
    """Send one JSON control frame."""
    try:
        body = json.dumps(obj, separators=(",", ":"), allow_nan=False).encode()
    except (TypeError, ValueError) as exc:
        raise ClusterProtocolError(f"unencodable control frame: {exc}") from exc
    if len(body) > MAX_CONTROL_FRAME:
        raise FrameTooLarge(
            f"control frame of {len(body)} bytes exceeds the "
            f"{MAX_CONTROL_FRAME}-byte cap"
        )
    _send_frame(sock, _KIND_CONTROL, body)


def send_payload(sock: socket.socket, obj: dict[str, Any]) -> None:
    """Send one pickled control frame (launch / results)."""
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_BULK_FRAME:
        raise FrameTooLarge(
            f"payload frame of {len(body)} bytes exceeds the "
            f"{MAX_BULK_FRAME}-byte cap"
        )
    _send_frame(sock, _KIND_PAYLOAD, body)


def send_data(sock: socket.socket, dst: int, frame: bytes) -> None:
    """Send one in-transit rank message frame addressed to ``dst``."""
    if len(frame) + _DST.size > MAX_BULK_FRAME:
        raise FrameTooLarge(
            f"data frame of {len(frame)} bytes exceeds the "
            f"{MAX_BULK_FRAME}-byte cap"
        )
    _send_frame(sock, _KIND_DATA, _DST.pack(dst) + frame)


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes | None:
    """Read exactly ``nbytes``; ``None`` on EOF at a frame boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < nbytes:
        chunk = sock.recv(min(nbytes - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ClusterProtocolError(
                f"connection closed mid-frame ({got}/{nbytes} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket,
) -> tuple[str, Any] | None:
    """Receive one frame; ``None`` on clean EOF.

    Returns ``("control", dict)``, ``("payload", dict)`` or
    ``("data", (dst, frame_bytes))``.  Raises
    :class:`ClusterProtocolError` for unknown kinds, size-cap
    violations and mid-frame EOF.
    """
    header = _recv_exact(sock, 1 + _LEN.size)
    if header is None:
        return None
    kind, length = header[:1], _LEN.unpack(header[1:])[0]
    cap = MAX_CONTROL_FRAME if kind == _KIND_CONTROL else MAX_BULK_FRAME
    if length > cap:
        raise FrameTooLarge(
            f"incoming {kind!r} frame of {length} bytes exceeds the "
            f"{cap}-byte cap"
        )
    body = _recv_exact(sock, length) if length else b""
    if body is None and length:
        raise ClusterProtocolError("connection closed before frame body")
    assert body is not None
    if kind == _KIND_CONTROL:
        try:
            obj = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ClusterProtocolError(
                f"control frame is not valid JSON: {exc}"
            ) from exc
        if not isinstance(obj, dict):
            raise ClusterProtocolError(
                f"control frame must be a JSON object, got "
                f"{type(obj).__name__}"
            )
        return ("control", obj)
    if kind == _KIND_PAYLOAD:
        try:
            obj = pickle.loads(body)
        except Exception as exc:
            raise ClusterProtocolError(
                f"payload frame failed to unpickle: {exc}"
            ) from exc
        if not isinstance(obj, dict):
            raise ClusterProtocolError(
                f"payload frame must be a dict, got {type(obj).__name__}"
            )
        return ("payload", obj)
    if kind == _KIND_DATA:
        if len(body) < _DST.size:
            raise ClusterProtocolError("data frame shorter than its header")
        dst = _DST.unpack(body[: _DST.size])[0]
        return ("data", (dst, body[_DST.size:]))
    raise ClusterProtocolError(f"unknown frame kind {kind!r}")


def parse_hostport(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (the ``repro node --connect`` argument)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ClusterProtocolError(
            f"expected HOST:PORT, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ClusterProtocolError(
            f"bad port in {text!r}"
        ) from None
