"""Rank-to-node placement for cluster chunks.

The head assigns global ranks to node daemons in contiguous blocks —
the same blocking discipline :func:`repro.partition.static_lb` uses
for grids over ranks — so ranks of one grid tend to land on one host
and the intra-node shared-memory fast path carries the halo traffic.
Node ids are the *handshake* ids the head assigned at connect time;
after a node loss the surviving ids keep their numbers and the next
chunk's placement simply spans fewer nodes (elastic shrink — ranks
are renumbered by the driver's repartition, nodes never are).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Placement"]


@dataclass(frozen=True)
class Placement:
    """Immutable map of global rank -> hosting node id."""

    node_of_rank: tuple[int, ...]

    @classmethod
    def contiguous(cls, nranks: int, node_ids: list[int] | tuple[int, ...]) -> "Placement":
        """Balanced contiguous blocks over ``node_ids`` (in order).

        With ``nranks = q*k + r`` over ``k`` nodes the first ``r``
        nodes host ``q+1`` ranks each — identical to the partitioner's
        remainder rule, so placements are deterministic functions of
        the shape.  Fewer ranks than nodes leaves the tail nodes idle
        for the chunk (they still heartbeat and stay in the pool).
        """
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        ids = list(node_ids)
        if not ids:
            raise ValueError("no nodes to place ranks on")
        k = min(len(ids), nranks)
        base, rem = divmod(nranks, k)
        out: list[int] = []
        for j in range(k):
            out.extend([ids[j]] * (base + (1 if j < rem else 0)))
        return cls(node_of_rank=tuple(out))

    @property
    def nranks(self) -> int:
        return len(self.node_of_rank)

    @property
    def node_ids(self) -> tuple[int, ...]:
        """Participating node ids, first-rank order, deduplicated."""
        seen: list[int] = []
        for nid in self.node_of_rank:
            if nid not in seen:
                seen.append(nid)
        return tuple(seen)

    def ranks_of(self, node_id: int) -> tuple[int, ...]:
        """Global ranks hosted by ``node_id`` (ascending)."""
        return tuple(
            r for r, nid in enumerate(self.node_of_rank) if nid == node_id
        )

    def to_wire(self) -> list[int]:
        return list(self.node_of_rank)

    @classmethod
    def from_wire(cls, data: list[int]) -> "Placement":
        return cls(node_of_rank=tuple(int(v) for v in data))
