"""``--backend cluster``: rank programs on a pool of node daemons.

The third execution engine in the registry.  Rank programs — the very
same generators ``sim`` interprets against virtual time and ``mp``
runs as forked processes — execute inside worker processes hosted by
per-host ``repro node`` daemons; the head (this process) ships the
programs over TCP, routes inter-node messages, and collects results.

Physics is byte-identical to ``sim`` and ``mp`` by construction: the
workers run the mp backend's primitive interpreter with the same
Mailbox, the same sender sequence numbers and the same canonical
``(src, seq)`` drain order, so every receive resolves to the same
message regardless of arrival jitter.  Only the *clock* differs (host
wall time, like mp), which is why results carry ``measured=True``.

What cluster adds over mp is ``elastic=True``: losing a node mid-run
raises the same typed :class:`RankFailure` the simulator's fault plans
produce, and the pool keeps serving chunks on the survivors — which is
exactly the contract ``repro.resilience`` needs to checkpoint-restore
and shrink-repartition the run to completion (see ``docs/cluster.md``).
"""

from __future__ import annotations

import itertools
import os
import pickle
from typing import Any, Sequence

from repro.backend.api import (
    BackendResult,
    BackendUnavailable,
    ExecutionBackend,
    RankProgram,
)
from repro.backend.mp import MpBackend, mp_available
from repro.cluster.head import ClusterSupervisor
from repro.cluster.placement import Placement
from repro.cluster.shipping import blobs_sha, ship_program
from repro.machine.metrics import MachineMetrics, RankMetrics

__all__ = ["ClusterBackend", "cluster_available"]

_run_counter = itertools.count()


def cluster_available() -> str | None:
    """``None`` when the cluster backend can run here, else the reason.

    Node daemons fork their rank workers, so the same host requirement
    as mp applies on every node; the head additionally needs working
    loopback TCP, which any host with sockets has.
    """
    return mp_available()


class ClusterBackend(ExecutionBackend):
    """Execute ranks across node daemons connected over TCP.

    Parameters
    ----------
    nnodes:
        Node-daemon pool size (default 2).  With ``spawn=True`` the
        pool is spawned on localhost at first use — the two-node
        localhost topology the docs and CI smoke job use.
    spawn:
        ``False`` means "operator brings the nodes": the supervisor
        only listens on ``host:port`` and waits for ``repro node
        --connect`` daemons to dial in.
    shm_threshold / timeout / poll_interval / sleep_cap:
        Same worker-level knobs as the mp backend, applied on every
        node.
    hb_interval / hb_timeout:
        Heartbeat cadence and the silence span after which a node is
        declared dead (driving elastic :class:`RankFailure`).

    Like mp, requesting the sanitizer or a fault plan raises
    ``ValueError`` — both need deterministic virtual time.  *Real*
    faults (kill a node daemon) need no plan at all.
    """

    name = "cluster"
    shared_state = False
    measured = True
    elastic = True

    def __init__(
        self,
        nnodes: int = 2,
        *,
        spawn: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        shm_threshold: int = 32 * 1024,
        timeout: float | None = 120.0,
        poll_interval: float = 0.02,
        sleep_cap: float = 0.005,
        hb_interval: float = 0.5,
        hb_timeout: float = 5.0,
        connect_timeout: float = 20.0,
    ) -> None:
        reason = cluster_available()
        if reason is not None:
            raise BackendUnavailable(
                f"backend 'cluster' unavailable: {reason}"
            )
        self.nnodes = int(nnodes)
        self.spawn = bool(spawn)
        self.host = host
        self.port = int(port)
        self.shm_threshold = int(shm_threshold)
        self.timeout = timeout
        self.poll_interval = float(poll_interval)
        self.sleep_cap = float(sleep_cap)
        self.hb_interval = float(hb_interval)
        self.hb_timeout = float(hb_timeout)
        self.connect_timeout = float(connect_timeout)
        self._sup: ClusterSupervisor | None = None

    # ------------------------------------------------------------- pool

    @property
    def supervisor(self) -> ClusterSupervisor:
        """The node pool, started lazily on first use."""
        if self._sup is None:
            self._sup = ClusterSupervisor(
                self.nnodes,
                spawn=self.spawn,
                host=self.host,
                port=self.port,
                hb_interval=self.hb_interval,
                hb_timeout=self.hb_timeout,
                connect_timeout=self.connect_timeout,
            )
            self._sup.start()
        return self._sup

    def attach(self, supervisor: ClusterSupervisor) -> None:
        """Adopt an externally managed node pool (operator flow).

        The supervisor is started if it is not already (blocking until
        its ``nnodes`` daemons have dialed in); the backend then owns
        it — :meth:`close` shuts it down.  Lets a caller bind the
        listening port first, point ``repro node --connect HOST:PORT``
        daemons at :attr:`ClusterSupervisor.addr`, and only then hand
        the pool to the engine (see ``docs/cluster.md``).
        """
        if self._sup is not None:
            raise RuntimeError(
                "cluster backend already has a node pool; close() it "
                "before attaching another"
            )
        supervisor.start()
        self._sup = supervisor

    def close(self) -> None:
        if self._sup is not None:
            self._sup.close()
            self._sup = None

    # -------------------------------------------------------------- run

    def run(
        self,
        machine: Any,
        programs: Sequence[RankProgram],
        *,
        tracer: Any = None,
        sanitizer: Any = None,
        fault_plan: Any = None,
        initial_clocks: Sequence[float] | None = None,
        initial_metrics: Sequence[Any] | None = None,
        eager_hooks: bool = False,
        max_events: int = 500_000_000,
        raise_on_failure: bool = True,
    ) -> BackendResult:
        if sanitizer is not None:
            raise ValueError(
                "the sanitizer shadow layer needs deterministic virtual "
                "time; use --backend sim for sanitized runs"
            )
        if fault_plan:
            raise ValueError(
                "fault injection needs deterministic virtual time; "
                "use --backend sim for fault experiments (the cluster "
                "backend experiences real faults: kill a node daemon)"
            )
        n = len(programs)
        if n == 0:
            raise ValueError("no rank programs given")
        if n > machine.nodes:
            raise ValueError(
                f"machine has {machine.nodes} nodes; cannot run {n} ranks"
            )
        if initial_clocks is not None and len(initial_clocks) != n:
            raise ValueError(
                f"initial_clocks has {len(initial_clocks)} entries for {n} ranks"
            )
        if initial_metrics is not None and len(initial_metrics) != n:
            raise ValueError(
                f"initial_metrics has {len(initial_metrics)} entries for {n} ranks"
            )
        trace_enabled = tracer is not None and getattr(tracer, "enabled", False)
        if trace_enabled and getattr(tracer, "clock", "virtual") == "virtual":
            try:
                tracer.clock = "wall"
            except AttributeError:  # pragma: no cover - exotic tracer
                pass

        sup = self.supervisor
        alive = sup.alive_ids()
        if not alive:
            raise BackendUnavailable(
                "backend 'cluster' unavailable: every node daemon is dead"
            )
        placement = Placement.contiguous(n, alive)

        # SPMD runs ship each distinct program object once.
        blob_index: dict[int, int] = {}
        blobs: list[bytes] = []
        program_of_rank: list[int] = []
        for prog in programs:
            idx = blob_index.get(id(prog))
            if idx is None:
                idx = len(blobs)
                blob_index[id(prog)] = idx
                blobs.append(ship_program(prog))
            program_of_rank.append(idx)
        config_sha = blobs_sha(blobs)

        runid = f"repro_cl_{os.getpid()}_{next(_run_counter)}"
        clocks = (
            [float(c) for c in initial_clocks]
            if initial_clocks is not None
            else [0.0] * n
        )
        metrics_in = (
            list(initial_metrics)
            if initial_metrics is not None
            else [RankMetrics(r) for r in range(n)]
        )
        done = sup.run_chunk(
            runid=runid,
            machine=machine,
            nranks=n,
            placement=placement,
            program_blobs=blobs,
            program_of_rank=program_of_rank,
            config_sha=config_sha,
            options={
                "shm_threshold": self.shm_threshold,
                "poll_interval": self.poll_interval,
                "sleep_cap": self.sleep_cap,
            },
            clocks=clocks,
            metrics=metrics_in,
            trace=trace_enabled,
            timeout=self.timeout,
        )

        returns: list[Any] = [None] * n
        metrics_list: list[RankMetrics] = [RankMetrics(r) for r in range(n)]
        for rank, payload in done.items():
            retval, met, events = pickle.loads(payload)
            returns[rank] = retval
            metrics_list[rank] = met
            if events is not None and trace_enabled:
                MpBackend._merge_trace(tracer, events)
        metrics = MachineMetrics(metrics_list)
        return BackendResult(
            elapsed=metrics.elapsed,
            returns=returns,
            metrics=metrics,
            failed_ranks=(),
            backend=self.name,
            measured=True,
        )
