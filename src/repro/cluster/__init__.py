"""Multi-host socket-based execution for rank programs.

The package behind ``--backend cluster``: a head-side supervisor
(:mod:`repro.cluster.head`), per-host node daemons
(:mod:`repro.cluster.node`), the length-framed wire protocol between
them (:mod:`repro.cluster.protocol`), closure shipping for rank
programs (:mod:`repro.cluster.shipping`) and rank-to-node placement
(:mod:`repro.cluster.placement`).  See ``docs/cluster.md`` for the
topology, failure model and a two-node localhost walkthrough.
"""

from repro.cluster.backend import ClusterBackend, cluster_available
from repro.cluster.head import ClusterSupervisor
from repro.cluster.node import NodeDaemon
from repro.cluster.placement import Placement
from repro.cluster.protocol import (
    CLUSTER_PROTOCOL_VERSION,
    ClusterProtocolError,
    FrameTooLarge,
    HandshakeError,
)
from repro.cluster.shipping import ShipError, blobs_sha, load_program, ship_program

__all__ = [
    "ClusterBackend",
    "cluster_available",
    "ClusterSupervisor",
    "NodeDaemon",
    "Placement",
    "CLUSTER_PROTOCOL_VERSION",
    "ClusterProtocolError",
    "FrameTooLarge",
    "HandshakeError",
    "ShipError",
    "ship_program",
    "load_program",
    "blobs_sha",
]
