"""Streaming, sharded trace store (append-only segments + index).

The scalable successor to buffering every event in
:class:`repro.obs.tracer.SpanTracer`: :class:`StoreTracer` streams
events to per-rank segment files with bounded memory, and
:func:`load_store` reconstructs the exact in-memory view for the
existing exporters and analyzers.  See ``docs/observability.md`` for
the on-disk format.
"""

from repro.obs.store.codec import (
    KIND_MARK,
    KIND_OP,
    KIND_PHASE,
    KIND_RECV,
    KIND_SEND,
    StoreCodecError,
)
from repro.obs.store.reader import (
    StoreReader,
    TailReader,
    load_index,
    load_store,
)
from repro.obs.store.segment import (
    SegmentWriter,
    StoreCorruptionError,
    iter_segment_records,
    shard_segments,
)
from repro.obs.store.writer import (
    DRIVER_SHARD,
    INDEX_NAME,
    STORE_FORMAT,
    StoreTracer,
)

__all__ = [
    "DRIVER_SHARD",
    "INDEX_NAME",
    "KIND_MARK",
    "KIND_OP",
    "KIND_PHASE",
    "KIND_RECV",
    "KIND_SEND",
    "STORE_FORMAT",
    "SegmentWriter",
    "StoreCodecError",
    "StoreCorruptionError",
    "StoreReader",
    "StoreTracer",
    "TailReader",
    "iter_segment_records",
    "load_index",
    "load_store",
    "shard_segments",
]
