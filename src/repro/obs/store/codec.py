"""Binary value codec and record framing for the segment store.

Segment files are sequences of **length-framed records**::

    u32 payload_length | u32 crc32(payload) | payload

The frame makes the stream self-synchronising for the one failure mode
an append-only log has: a crash mid-write leaves a truncated tail.  A
reader that hits a short header, a short payload, or a CRC mismatch on
the *final* frame of the *final* segment simply drops that tail — every
fully-flushed record before it is intact (see
:func:`repro.obs.store.segment.iter_segment_records`).

The payload is one record: a kind byte, a varint global sequence
number, and the event's fields encoded with a small tagged value codec
(:func:`encode_value` / :func:`decode_value`).  The codec round-trips
exactly the Python values the tracer records — ``None``, ``bool``,
arbitrary-precision ``int``, ``float`` (binary64, bit-exact), ``str``,
``bytes``, ``list`` and ``dict`` — so a trace read back from the store
compares **equal** to the in-memory one, and exporters fed either
produce byte-identical output.  Tuples are encoded as lists (the
tracer's tuple layouts are rebuilt by the reader, not the codec).
"""

from __future__ import annotations

import struct
import zlib

__all__ = [
    "FRAME_HEADER",
    "KIND_MARK",
    "KIND_OP",
    "KIND_PHASE",
    "KIND_RECV",
    "KIND_SEND",
    "RECORD_FIELDS",
    "StoreCodecError",
    "decode_record",
    "decode_value",
    "encode_record",
    "encode_value",
    "frame",
    "read_frame",
]

#: struct layout of the frame header: payload length, payload crc32.
FRAME_HEADER = struct.Struct("<II")

# Record kind bytes (also the reader's dispatch key).
KIND_OP = 1
KIND_PHASE = 2
KIND_MARK = 3
KIND_SEND = 4
KIND_RECV = 5

#: Field count per record kind (after the kind byte and seq varint),
#: mirroring the SpanTracer tuple layouts.
RECORD_FIELDS = {
    KIND_OP: 7,     # rank, phase, kind, t0, t1, flops, nbytes
    KIND_PHASE: 3,  # rank, t, name
    KIND_MARK: 3,   # t, name, args-dict
    KIND_SEND: 6,   # t, src, dst, tag, nbytes, phase
    KIND_RECV: 6,   # t, rank, src, tag, nbytes, phase
}


class StoreCodecError(ValueError):
    """Malformed frame or value encoding (not a truncated tail)."""


# ----------------------------------------------------------------------
# varints (unsigned LEB128)


def _encode_uvarint(value: int, out: bytearray) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_uvarint(buf: bytes, off: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if off >= len(buf):
            raise StoreCodecError("truncated varint")
        byte = buf[off]
        off += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, off
        shift += 7


# ----------------------------------------------------------------------
# tagged values

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT_POS = 3   # uvarint
_T_INT_NEG = 4   # uvarint of -value
_T_FLOAT = 5     # binary64 little-endian
_T_STR = 6       # uvarint length + utf-8
_T_BYTES = 7     # uvarint length + raw
_T_LIST = 8      # uvarint count + values
_T_DICT = 9      # uvarint count + (key value)*

_F64 = struct.Struct("<d")


def encode_value(value: object, out: bytearray) -> None:
    """Append one tagged value to ``out``."""
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is int:
        if value >= 0:
            out.append(_T_INT_POS)
            _encode_uvarint(value, out)
        else:
            out.append(_T_INT_NEG)
            _encode_uvarint(-value, out)
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _encode_uvarint(len(raw), out)
        out += raw
    elif type(value) is bytes:
        out.append(_T_BYTES)
        _encode_uvarint(len(value), out)
        out += value
    elif type(value) in (list, tuple):
        out.append(_T_LIST)
        _encode_uvarint(len(value), out)  # type: ignore[arg-type]
        for item in value:  # type: ignore[union-attr]
            encode_value(item, out)
    elif type(value) is dict:
        out.append(_T_DICT)
        _encode_uvarint(len(value), out)
        for key, item in value.items():
            if type(key) is not str:
                raise StoreCodecError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            encode_value(key, out)
            encode_value(item, out)
    else:
        # numpy scalars and friends: reduce to the nearest Python type
        # so re-reading yields plain numbers (equality still holds).
        item = getattr(value, "item", None)
        if callable(item):
            encode_value(item(), out)
            return
        raise StoreCodecError(
            f"value of type {type(value).__name__} is not storable"
        )


def decode_value(buf: bytes, off: int) -> tuple[object, int]:
    """Decode one tagged value at ``off``; returns ``(value, next_off)``."""
    if off >= len(buf):
        raise StoreCodecError("truncated value")
    tag = buf[off]
    off += 1
    if tag == _T_NONE:
        return None, off
    if tag == _T_TRUE:
        return True, off
    if tag == _T_FALSE:
        return False, off
    if tag == _T_INT_POS:
        return _decode_uvarint(buf, off)
    if tag == _T_INT_NEG:
        value, off = _decode_uvarint(buf, off)
        return -value, off
    if tag == _T_FLOAT:
        if off + 8 > len(buf):
            raise StoreCodecError("truncated float")
        return _F64.unpack_from(buf, off)[0], off + 8
    if tag in (_T_STR, _T_BYTES):
        length, off = _decode_uvarint(buf, off)
        if off + length > len(buf):
            raise StoreCodecError("truncated string")
        raw = buf[off: off + length]
        off += length
        return (raw.decode("utf-8") if tag == _T_STR else bytes(raw)), off
    if tag == _T_LIST:
        count, off = _decode_uvarint(buf, off)
        items = []
        for _ in range(count):
            item, off = decode_value(buf, off)
            items.append(item)
        return items, off
    if tag == _T_DICT:
        count, off = _decode_uvarint(buf, off)
        mapping = {}
        for _ in range(count):
            key, off = decode_value(buf, off)
            item, off = decode_value(buf, off)
            mapping[key] = item  # type: ignore[index]
        return mapping, off
    raise StoreCodecError(f"unknown value tag {tag}")


# ----------------------------------------------------------------------
# records and frames


def encode_record(kind: int, seq: int, fields: tuple) -> bytes:
    """One framed record: header + (kind, seq, fields...) payload."""
    expected = RECORD_FIELDS.get(kind)
    if expected is None:
        raise StoreCodecError(f"unknown record kind {kind}")
    if len(fields) != expected:
        raise StoreCodecError(
            f"record kind {kind} takes {expected} fields, got {len(fields)}"
        )
    payload = bytearray()
    payload.append(kind)
    _encode_uvarint(seq, payload)
    for value in fields:
        encode_value(value, payload)
    return frame(bytes(payload))


def frame(payload: bytes) -> bytes:
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_frame(buf: bytes, off: int) -> tuple[bytes | None, int]:
    """Extract one frame's payload at ``off``.

    Returns ``(payload, next_off)``; ``(None, off)`` when the remaining
    bytes do not hold one complete, CRC-clean frame (a truncated or
    in-flight tail — the caller decides whether to wait, drop, or
    raise).
    """
    end = off + FRAME_HEADER.size
    if end > len(buf):
        return None, off
    length, crc = FRAME_HEADER.unpack_from(buf, off)
    if end + length > len(buf):
        return None, off
    payload = buf[end: end + length]
    if zlib.crc32(payload) != crc:
        return None, off
    return payload, end + length


def decode_record(payload: bytes) -> tuple[int, int, list]:
    """Decode one frame payload into ``(kind, seq, fields)``."""
    if not payload:
        raise StoreCodecError("empty record payload")
    kind = payload[0]
    expected = RECORD_FIELDS.get(kind)
    if expected is None:
        raise StoreCodecError(f"unknown record kind {kind}")
    seq, off = _decode_uvarint(payload, 1)
    fields = []
    for _ in range(expected):
        value, off = decode_value(payload, off)
        fields.append(value)
    if off != len(payload):
        raise StoreCodecError(
            f"record kind {kind} has {len(payload) - off} trailing bytes"
        )
    return kind, seq, fields
