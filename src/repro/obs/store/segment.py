"""Append-only segment files: one shard per rank, bounded buffering.

A *shard* is one logical event stream (one rank, or the rank-less
``driver`` stream of marks).  On disk a shard is a series of numbered
segment files::

    <store>/shard-0-00000.seg, shard-0-00001.seg, ...
    <store>/shard-driver-00000.seg, ...

each an append-only sequence of framed records (:mod:`codec`).  The
writer holds exactly **one open segment per shard**: a bounded byte
buffer (flushed whenever it exceeds ``flush_bytes`` or on an explicit
:meth:`SegmentWriter.flush`) plus the current file handle.  When a
segment file reaches ``segment_bytes`` it is closed and the next one
started — so writer memory is O(flush buffer), never O(trace), and a
finished segment is immutable from that point on.

Readers tolerate a truncated tail on the *last* segment of a shard
(crash mid-flush); a short or corrupt frame anywhere else raises
:class:`StoreCorruptionError`, because an interior segment can only be
damaged by outside interference, not by a crash.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import IO, Iterator

from repro.obs.store.codec import (
    StoreCodecError,
    decode_record,
    encode_record,
    read_frame,
)

__all__ = [
    "SegmentWriter",
    "StoreCorruptionError",
    "iter_segment_records",
    "segment_path",
    "shard_segments",
]

#: Default segment rotation size (bytes of framed records per file).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Default flush threshold for the in-memory buffer.
DEFAULT_FLUSH_BYTES = 64 * 1024

_SEGMENT_RE = re.compile(r"^shard-(\d+|driver)-(\d{5})\.seg$")


class StoreCorruptionError(RuntimeError):
    """A segment is damaged somewhere other than its recoverable tail."""


def segment_path(directory: Path, shard: str, index: int) -> Path:
    return directory / f"shard-{shard}-{index:05d}.seg"


def shard_segments(directory: Path) -> dict[str, list[Path]]:
    """Map shard name -> ordered segment files found in ``directory``."""
    shards: dict[str, list[tuple[int, Path]]] = {}
    for path in directory.iterdir():
        m = _SEGMENT_RE.match(path.name)
        if m:
            shards.setdefault(m.group(1), []).append((int(m.group(2)), path))
    return {
        shard: [p for _, p in sorted(entries)]
        for shard, entries in sorted(shards.items())
    }


def iter_segment_records(
    path: Path, last: bool = True, start: int = 0
) -> Iterator[tuple[int, int, list]]:
    """Yield ``(kind, seq, fields)`` records from one segment file.

    ``last=True`` (the final segment of a shard) makes an incomplete or
    CRC-failing tail frame a silent stop — the crash-recovery contract.
    On interior segments the same condition raises
    :class:`StoreCorruptionError`.  ``start`` skips to a byte offset
    (must be a frame boundary, e.g. from the index's per-step offsets).
    """
    buf = path.read_bytes()
    off = start
    while off < len(buf):
        payload, off2 = read_frame(buf, off)
        if payload is None:
            if last:
                return  # truncated tail: drop it
            raise StoreCorruptionError(
                f"{path}: corrupt frame at byte {off} in a non-final segment"
            )
        try:
            yield decode_record(payload)
        except StoreCodecError as exc:
            raise StoreCorruptionError(f"{path}: {exc}") from exc
        off = off2


class SegmentWriter:
    """Buffered append-only writer for one shard.

    Tracks a buffer high-water mark (``max_buffered``) so tests can
    assert the bounded-memory contract, and exposes ``position()`` —
    the (segment index, byte offset) the *next* record will land at —
    for the store index's per-step offsets.
    """

    def __init__(
        self,
        directory: Path,
        shard: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
    ) -> None:
        if segment_bytes < 1 or flush_bytes < 1:
            raise ValueError("segment_bytes and flush_bytes must be >= 1")
        self.directory = directory
        self.shard = shard
        self.segment_bytes = segment_bytes
        self.flush_bytes = flush_bytes
        self.segment_index = 0
        self.records = 0
        self.max_buffered = 0
        self._written = 0          # bytes flushed to the current segment
        self._buffer = bytearray()
        self._file: IO[bytes] | None = None  # opened lazily on first flush
        self._segments: list[dict] = []  # closed-segment index entries
        self._first_seq: int | None = None
        self._last_seq: int | None = None

    # -- writing --------------------------------------------------------

    def append(self, kind: int, seq: int, fields: tuple) -> None:
        if self._first_seq is None:
            self._first_seq = seq
        self._last_seq = seq
        self.records += 1
        self._buffer += encode_record(kind, seq, fields)
        if len(self._buffer) > self.max_buffered:
            self.max_buffered = len(self._buffer)
        if len(self._buffer) >= self.flush_bytes:
            self.flush()

    def position(self) -> tuple[int, int]:
        """(segment index, byte offset) of the next record appended."""
        return self.segment_index, self._written + len(self._buffer)

    def flush(self) -> None:
        """Write the buffer out; rotate when the segment is full."""
        if not self._buffer:
            return
        if self._file is None:
            self._file = open(  # noqa: SIM115 - held across calls
                segment_path(self.directory, self.shard, self.segment_index),
                "ab",
            )
        self._file.write(self._buffer)
        self._file.flush()
        self._written += len(self._buffer)
        self._buffer.clear()
        if self._written >= self.segment_bytes:
            self._rotate()

    def _rotate(self) -> None:
        assert self._file is not None
        self._file.close()
        self._file = None
        self._segments.append(
            {"index": self.segment_index, "bytes": self._written}
        )
        self.segment_index += 1
        self._written = 0

    def close(self) -> None:
        self.flush()
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._written:
            self._segments.append(
                {"index": self.segment_index, "bytes": self._written}
            )
            self._written = 0

    # -- index metadata -------------------------------------------------

    def describe(self) -> dict:
        """Index entry for this shard (closed + current segments)."""
        segments = list(self._segments)
        if self._written:
            segments = segments + [
                {"index": self.segment_index, "bytes": self._written}
            ]
        return {
            "records": self.records,
            "first_seq": self._first_seq,
            "last_seq": self._last_seq,
            "segments": segments,
        }
