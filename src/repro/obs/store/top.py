"""``repro top``: live terminal view of a streaming trace store.

Tails a store directory that a running job (sim, mp, cluster, or
serve) is writing through :class:`~repro.obs.store.writer.StoreTracer`
and renders, per refresh:

* one row per rank — busy/wait seconds, busy fraction, the f(p)-style
  busy-imbalance factor (max-over-mean busy time, the time analogue of
  the paper's I(p)/Ibar), the rank's current phase, and a phase
  occupancy bar;
* the comm-matrix hot edges (top sender→receiver pairs by bytes);
* the most recent driver marks (epochs, rebalances, recoveries).

The aggregator is incremental — it consumes only the records that
became durable since the last poll (O(new records) per refresh, never
O(trace)) — and entirely deterministic for a given record stream, so
``--once`` snapshots are testable.
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.obs.store.codec import (
    KIND_MARK,
    KIND_OP,
    KIND_PHASE,
    KIND_RECV,
    KIND_SEND,
)
from repro.obs.store.reader import Record, TailReader

__all__ = ["TopAggregator", "render_top", "run_top"]

#: ANSI clear-screen + home, used between live refreshes.
_CLEAR = "\x1b[2J\x1b[H"


class TopAggregator:
    """Incremental per-rank / per-edge aggregation of a record stream."""

    def __init__(self, recent_marks: int = 4) -> None:
        self.records = 0
        self.t_end = 0.0
        # rank -> {"busy": s, "wait": s, "phase_time": {phase: s},
        #          "phase": current phase name}
        self.ranks: dict[int, dict[str, Any]] = {}
        # (src, dst) -> [messages, bytes]
        self.edges: dict[tuple[int, int], list[int]] = {}
        self.marks: deque[tuple[float, str, dict]] = deque(
            maxlen=recent_marks
        )
        self.sends = 0
        self.recvs = 0

    def _rank(self, rank: int) -> dict[str, Any]:
        state = self.ranks.get(rank)
        if state is None:
            state = {"busy": 0.0, "wait": 0.0, "phase_time": {}, "phase": "-"}
            self.ranks[rank] = state
        return state

    def feed(self, records: Iterable[Record]) -> int:
        """Consume new records; returns how many were consumed."""
        n = 0
        for _seq, kind, fields in records:
            n += 1
            if kind == KIND_OP:
                rank, phase, op_kind, t0, t1 = fields[:5]
                state = self._rank(rank)
                span = t1 - t0
                if op_kind == "wait":
                    state["wait"] += span
                else:
                    state["busy"] += span
                pt = state["phase_time"]
                pt[phase] = pt.get(phase, 0.0) + span
                if t1 > self.t_end:
                    self.t_end = t1
            elif kind == KIND_PHASE:
                rank, t, name = fields
                self._rank(rank)["phase"] = name
            elif kind == KIND_MARK:
                t, name, args = fields
                self.marks.append((t, name, args))
            elif kind == KIND_SEND:
                _t, src, dst, _tag, nbytes, _phase = fields
                edge = self.edges.setdefault((src, dst), [0, 0])
                edge[0] += 1
                edge[1] += nbytes
                self.sends += 1
            elif kind == KIND_RECV:
                self.recvs += 1
        self.records += n
        return n

    def imbalance(self) -> dict[int, float]:
        """Per-rank f(p): busy time over the mean busy time."""
        busies = {r: s["busy"] for r, s in self.ranks.items()}
        total = sum(busies.values())
        if not busies or total <= 0:
            return {r: 1.0 for r in busies}
        mean = total / len(busies)
        return {r: b / mean for r, b in busies.items()}

    def hot_edges(self, top_k: int = 5) -> list[tuple[int, int, int, int]]:
        """Top (src, dst, messages, bytes) edges by bytes (stable order)."""
        ranked = sorted(
            self.edges.items(), key=lambda kv: (-kv[1][1], kv[0])
        )
        return [
            (src, dst, msgs, nbytes)
            for (src, dst), (msgs, nbytes) in ranked[:top_k]
        ]


def _phase_markers(phases: Iterable[str]) -> dict[str, str]:
    """Unique one-character marker per phase (initial letter preferred)."""
    markers: dict[str, str] = {}
    taken: set[str] = set()
    fallback = "0123456789*#@+%"
    for name in sorted(phases):
        char = next(
            (c.upper() for c in name if c.upper() not in taken), None
        )
        if char is None:
            char = next(c for c in fallback if c not in taken)
        markers[name] = char
        taken.add(char)
    return markers


def _bar(
    phase_time: dict[str, float], markers: dict[str, str], width: int
) -> str:
    """Occupancy bar: each phase gets slots proportional to its time."""
    total = sum(phase_time.values())
    if total <= 0 or width <= 0:
        return " " * width
    bar: list[str] = []
    for name in sorted(phase_time):
        slots = int(round(phase_time[name] / total * width))
        bar.extend(markers[name] * slots)
    return "".join(bar)[:width].ljust(width)


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return (
                f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
            )
        value /= 1024
    return f"{value:.1f}GB"  # pragma: no cover - unreachable


def render_top(
    agg: TopAggregator,
    index: dict[str, Any] | None = None,
    directory: str | Path = "",
    width: int = 80,
) -> str:
    """Render one snapshot of the aggregated state."""
    lines: list[str] = []
    step = "-"
    status = "running"
    clock = "virtual"
    if index is not None:
        clock = index.get("clock", "virtual")
        steps = index.get("steps", [])
        if steps:
            step = str(len(steps) - 1)
        if index.get("complete"):
            status = "complete"
    lines.append(
        f"repro top — {directory}  [{clock} clock, {agg.records} records, "
        f"step {step}, {status}]"
    )
    lines.append(
        f"t_end {agg.t_end:.4f}s   sends {agg.sends}   recvs {agg.recvs}"
    )
    lines.append("")
    bar_width = max(10, width - 52)
    lines.append(
        f"{'rank':>4} {'busy_s':>9} {'wait_s':>9} {'busy%':>6} {'f(p)':>6} "
        f"{'phase':<10} occupancy"
    )
    fp = agg.imbalance()
    markers = _phase_markers(
        {p for s in agg.ranks.values() for p in s["phase_time"]}
    )
    for rank in sorted(agg.ranks):
        state = agg.ranks[rank]
        total = state["busy"] + state["wait"]
        busy_pct = 100.0 * state["busy"] / total if total > 0 else 0.0
        bar = _bar(state["phase_time"], markers, bar_width)
        lines.append(
            f"{rank:>4} {state['busy']:>9.3f} {state['wait']:>9.3f} "
            f"{busy_pct:>5.1f}% {fp.get(rank, 1.0):>6.2f} "
            f"{state['phase']:<10} [{bar}]"
        )
    if not agg.ranks:
        lines.append("  (no rank activity yet)")
    if markers:
        lines.append(
            "      occupancy: "
            + "  ".join(f"{mk}={p}" for p, mk in sorted(markers.items()))
        )
    edges = agg.hot_edges()
    if edges:
        lines.append("")
        lines.append("hot edges (by bytes):")
        for src, dst, msgs, nbytes in edges:
            lines.append(
                f"  {src:>3} -> {dst:<3} {_fmt_bytes(nbytes):>10} "
                f"in {msgs} msgs"
            )
    if agg.marks:
        lines.append("")
        lines.append("recent marks:")
        for t, name, args in agg.marks:
            detail = " ".join(f"{k}={v}" for k, v in sorted(args.items()))
            lines.append(f"  {t:>10.4f}s  {name}" + (f"  {detail}" if detail else ""))
    return "\n".join(lines)


def run_top(
    directory: str | Path,
    interval: float = 1.0,
    once: bool = False,
    width: int = 80,
    emit: Callable[[str], None] = print,
    max_refreshes: int | None = None,
) -> int:
    """Tail ``directory`` and render until the store completes.

    ``once`` polls whatever is durable right now, renders a single
    snapshot, and returns.  In loop mode the screen is cleared between
    refreshes and the loop ends when the index reports ``complete`` and
    no further records arrive (or on Ctrl-C).  ``max_refreshes`` bounds
    the loop for tests.
    """
    tail = TailReader(directory)
    agg = TopAggregator()
    refreshes = 0
    try:
        while True:
            fresh = tail.poll()
            agg.feed(fresh)
            index = tail.index()
            frame = render_top(
                agg, index=index, directory=directory, width=width
            )
            if once:
                emit(frame)
                return 0
            emit(_CLEAR + frame)
            refreshes += 1
            done = (
                index is not None
                and index.get("complete")
                and not fresh
                and agg.records >= index.get("records", 0)
            )
            if done:
                return 0
            if max_refreshes is not None and refreshes >= max_refreshes:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        emit("")
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed; silence the interpreter's
        # shutdown flush of the broken stdout and exit cleanly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
