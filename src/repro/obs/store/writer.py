"""StoreTracer: the streaming, sharded counterpart of SpanTracer.

Implements the full :class:`repro.obs.tracer.Tracer` API, so every
producer — the simulated scheduler, the mp/cluster trace-merge path,
serve's per-job tracer — works unchanged.  Instead of accumulating
events in Python lists it appends framed binary records to per-rank
segment files (:mod:`repro.obs.store.segment`): op/phase records go to
the rank's shard, sends to the source rank's shard, recvs to the
receiving rank's shard, and rank-less driver marks to the ``driver``
shard.  Memory is bounded by one flush buffer per shard regardless of
run length.

Every record carries a **global sequence number** assigned under the
store lock, so a reader merging the shards by sequence recovers the
exact order SpanTracer would have recorded — which is what makes the
reconstructed view (and everything exported from it) byte-identical to
the in-memory path.

The writer also maintains the **segment index** (``index.json``):
per-shard segment lists, per-step start offsets, and per-step rollups
of phase/kind busy time per rank.  Steps are detected from phase
switches — a rank entering ``step_phase`` (default ``"overflow"``, the
first phase of every solver step) starts its next step.  The index is
rewritten atomically on :meth:`flush`, :meth:`advance` and
:meth:`close`; readers never need it for correctness (segments are
self-describing) but use it for per-step analytics and trend plots.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.obs.store.codec import (
    KIND_MARK,
    KIND_OP,
    KIND_PHASE,
    KIND_RECV,
    KIND_SEND,
)
from repro.obs.store.segment import (
    DEFAULT_FLUSH_BYTES,
    DEFAULT_SEGMENT_BYTES,
    SegmentWriter,
)
from repro.obs.tracer import Tracer

__all__ = ["StoreTracer", "INDEX_NAME", "STORE_FORMAT", "DRIVER_SHARD"]

#: File name of the segment index inside a store directory.
INDEX_NAME = "index.json"

#: Format tag written to (and checked from) the index.
STORE_FORMAT = "repro-trace-store/1"

#: Shard name for rank-less driver marks.
DRIVER_SHARD = "driver"

#: Default phase name whose entry starts a new solver step.
DEFAULT_STEP_PHASE = "overflow"


class StoreTracer(Tracer):
    """Streaming tracer writing a sharded segment store.

    Parameters
    ----------
    directory:
        Store directory (created if missing).  With ``fresh=True`` any
        store-owned files already there (``shard-*.seg``, the index)
        are removed first; otherwise their presence is an error — a
        store is append-only within one run, never across runs.
    segment_bytes / flush_bytes:
        Rotation size per segment file and flush threshold of the
        per-shard buffer (see :class:`SegmentWriter`).
    step_phase:
        Phase name that opens a new solver step on each rank.
    meta:
        Optional JSON-serialisable dict stored verbatim in the index
        (case name, backend, nranks requested, ...).
    flush_every:
        When > 0, flush all shards and rewrite the index every that
        many records — the knob long-lived producers (``repro serve``)
        use so a live ``repro top`` sees progress without waiting for
        an epoch boundary.  0 (default) flushes only on
        :meth:`advance`, :meth:`flush` and :meth:`close` plus the
        per-shard byte threshold.
    """

    enabled = True

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
        step_phase: str = DEFAULT_STEP_PHASE,
        meta: dict[str, Any] | None = None,
        fresh: bool = False,
        flush_every: int = 0,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        existing = sorted(
            p.name
            for p in self.directory.iterdir()
            if p.name == INDEX_NAME or p.name.endswith(".seg")
        )
        if existing:
            if not fresh:
                raise FileExistsError(
                    f"{self.directory} already holds a trace store "
                    f"({existing[0]}, ...); use a fresh directory"
                )
            for name in existing:
                (self.directory / name).unlink()
        self.segment_bytes = segment_bytes
        self.flush_bytes = flush_bytes
        self.step_phase = step_phase
        self.flush_every = flush_every
        self.meta = dict(meta or {})
        self.closed = False
        self._lock = threading.RLock()
        self._seq = 0
        self._offset = 0.0
        self._advances: list[float] = []
        self._writers: dict[str, SegmentWriter] = {}
        self._max_rank = -1
        self._step_of_rank: dict[int, int] = {}
        self._steps: list[dict[str, Any]] = []
        self._index_gen = 0
        self._published_gen = 0

    # -- shard plumbing -------------------------------------------------

    def _writer(self, shard: str) -> SegmentWriter:
        writer = self._writers.get(shard)
        if writer is None:
            writer = SegmentWriter(
                self.directory,
                shard,
                segment_bytes=self.segment_bytes,
                flush_bytes=self.flush_bytes,
            )
            self._writers[shard] = writer
        return writer

    def _append(
        self, shard: str, kind: int, fields: tuple
    ) -> tuple[int, str] | None:
        """Append one record; returns an index snapshot to publish when
        the ``flush_every`` cadence fires (caller writes it to disk
        *after* releasing the lock)."""
        if self.closed:
            raise RuntimeError("trace store is closed")
        writer = self._writer(shard)
        writer.append(kind, self._seq, fields)
        self._seq += 1
        if self.flush_every and self._seq % self.flush_every == 0:
            for w in self._writers.values():
                w.flush()
            return self._snapshot_index(complete=False)
        return None

    def _saw_rank(self, *ranks: int) -> None:
        for rank in ranks:
            if rank > self._max_rank:
                self._max_rank = rank

    # -- step / rollup accounting ---------------------------------------

    def _step_entry(self, step: int) -> dict[str, Any]:
        while len(self._steps) <= step:
            self._steps.append(
                {
                    "step": len(self._steps),
                    "starts": {},
                    "t0": None,
                    "t1": None,
                    "phase_time": {},
                    "kind_time": {},
                }
            )
        return self._steps[step]

    # -- recording ------------------------------------------------------

    def op(
        self,
        rank: int,
        phase: str,
        kind: str,
        t0: float,
        t1: float,
        flops: float = 0.0,
        nbytes: int = 0,
    ) -> None:
        off = self._offset
        with self._lock:
            self._saw_rank(rank)
            snapshot = self._append(
                str(rank),
                KIND_OP,
                (rank, phase, kind, t0 + off, t1 + off, flops, nbytes),
            )
            step = self._step_of_rank.get(rank, -1)
            if step >= 0:
                entry = self._steps[step]
                span = t1 - t0
                key = str(rank)
                for bucket, name in (
                    (entry["phase_time"], phase),
                    (entry["kind_time"], kind),
                ):
                    per_rank = bucket.setdefault(name, {})
                    per_rank[key] = per_rank.get(key, 0.0) + span
                if entry["t0"] is None or t0 + off < entry["t0"]:
                    entry["t0"] = t0 + off
                if entry["t1"] is None or t1 + off > entry["t1"]:
                    entry["t1"] = t1 + off
        self._publish_index(snapshot)

    def phase(self, rank: int, t: float, name: str) -> None:
        with self._lock:
            self._saw_rank(rank)
            shard = str(rank)
            if name == self.step_phase:
                step = self._step_of_rank.get(rank, -1) + 1
                self._step_of_rank[rank] = step
                entry = self._step_entry(step)
                # Offset of the phase record itself, so reading a step
                # from its start yields the opening phase mark too.
                seg, byte = self._writer(shard).position()
                entry["starts"][shard] = [seg, byte]
            snapshot = self._append(
                shard, KIND_PHASE, (rank, t + self._offset, name)
            )
        self._publish_index(snapshot)

    def mark(self, t: float, name: str, **args: Any) -> None:
        with self._lock:
            snapshot = self._append(
                DRIVER_SHARD, KIND_MARK, (t + self._offset, name, dict(args))
            )
        self._publish_index(snapshot)

    def send(
        self, t: float, src: int, dst: int, tag: int, nbytes: int, phase: str
    ) -> None:
        with self._lock:
            self._saw_rank(src, dst)
            snapshot = self._append(
                str(src),
                KIND_SEND,
                (t + self._offset, src, dst, tag, nbytes, phase),
            )
        self._publish_index(snapshot)

    def recv(
        self, t: float, rank: int, src: int, tag: int, nbytes: int, phase: str
    ) -> None:
        with self._lock:
            self._saw_rank(rank, src)
            snapshot = self._append(
                str(rank),
                KIND_RECV,
                (t + self._offset, rank, src, tag, nbytes, phase),
            )
        self._publish_index(snapshot)

    # -- epoch plumbing -------------------------------------------------

    @property
    def offset(self) -> float:
        return self._offset

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot advance the trace origin by {dt}")
        with self._lock:
            self._offset += dt
            self._advances.append(dt)
            for writer in self._writers.values():
                writer.flush()
            snapshot = self._snapshot_index(complete=False)
        self._publish_index(snapshot)

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Flush every shard buffer and rewrite the index atomically."""
        with self._lock:
            for writer in self._writers.values():
                writer.flush()
            snapshot = self._snapshot_index(complete=False)
        self._publish_index(snapshot)

    def close(self) -> None:
        """Flush, seal segments, and mark the index complete."""
        with self._lock:
            if self.closed:
                return
            for writer in self._writers.values():
                writer.close()
            snapshot = self._snapshot_index(complete=True)
            self.closed = True
        self._publish_index(snapshot)

    def __enter__(self) -> "StoreTracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- introspection --------------------------------------------------

    @property
    def nranks(self) -> int:
        """Number of ranks seen across all five event streams."""
        return self._max_rank + 1

    @property
    def records(self) -> int:
        """Total records appended so far."""
        return self._seq

    @property
    def max_buffered_bytes(self) -> int:
        """High-water mark of any single shard's flush buffer."""
        with self._lock:
            return max(
                (w.max_buffered for w in self._writers.values()), default=0
            )

    @property
    def open_segments(self) -> int:
        """Open segment files right now (at most one per shard)."""
        with self._lock:
            return sum(
                1 for w in self._writers.values() if w._file is not None
            )

    def index_payload(self, complete: bool) -> dict[str, Any]:
        return {
            "format": STORE_FORMAT,
            "clock": self.clock,
            "complete": complete,
            "records": self._seq,
            "nranks": self.nranks,
            "offset": self._offset,
            "advances": list(self._advances),
            "step_phase": self.step_phase,
            "steps": self._steps,
            "shards": {
                shard: writer.describe()
                for shard, writer in sorted(self._writers.items())
            },
            "meta": self.meta,
        }

    def _snapshot_index(self, complete: bool) -> tuple[int, str]:
        """Serialize the index under the lock; caller publishes outside.

        Returns ``(generation, json text)``.  Serialization must happen
        while the lock is held (the payload reads writer state), but
        the disk write must not — with ``flush_every`` active every
        recording thread would otherwise stall behind index I/O.
        """
        self._index_gen += 1
        text = json.dumps(
            self.index_payload(complete), sort_keys=True, indent=1
        ) + "\n"
        return self._index_gen, text

    def _publish_index(self, snapshot: tuple[int, str] | None) -> None:
        """Atomically install an index snapshot, newest-wins.

        The tmp file is written with no lock held; the cheap rename is
        gated on the generation so a slow writer can never clobber a
        newer snapshot (in particular, ``close()``'s ``complete`` index
        always survives).
        """
        if snapshot is None:
            return
        gen, text = snapshot
        tmp = self.directory / f"{INDEX_NAME}.{gen}.tmp"
        tmp.write_text(text, encoding="utf-8")
        with self._lock:
            stale = gen <= self._published_gen
            if not stale:
                os.replace(tmp, self.directory / INDEX_NAME)
                self._published_gen = gen
        if stale:
            tmp.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreTracer({self.directory}, {self._seq} records, "
            f"{len(self._writers)} shards)"
        )
