"""Readers for the sharded segment store.

Three consumers, three shapes:

:func:`load_store`
    Reconstruct the exact :class:`~repro.obs.tracer.SpanTracer` view of
    a finished store — merge every shard by global sequence number and
    replay into a fresh tracer.  Everything downstream (Chrome-trace
    exporter, rollup CSV, critical path, ``repro trace-diff``) consumes
    the result unchanged and byte-identically to the in-memory path.

:class:`StoreReader`
    Lazy k-way merge over the shards (O(shards) memory) plus access to
    the index.  Works with or without ``index.json``: segments are
    self-describing, so a store whose writer crashed before its first
    index flush still reads back everything durably flushed.

:class:`TailReader`
    Incremental tailing of a store that is **still being written** —
    the feed for ``repro top``.  Each :meth:`~TailReader.poll` returns
    records that became durable since the previous poll, tolerating
    in-flight partial frames (retried next poll) and newly appearing
    segment files.
"""

from __future__ import annotations

import heapq
import itertools
import json
from pathlib import Path
from typing import Any, Iterator

from repro.obs.store.codec import (
    KIND_MARK,
    KIND_OP,
    KIND_PHASE,
    KIND_RECV,
    KIND_SEND,
    read_frame,
)
from repro.obs.store.codec import decode_record as _decode_record
from repro.obs.store.segment import (
    StoreCorruptionError,
    iter_segment_records,
    shard_segments,
)
from repro.obs.store.writer import INDEX_NAME, STORE_FORMAT
from repro.obs.tracer import SpanTracer

__all__ = ["StoreReader", "TailReader", "load_store", "load_index"]

#: One decoded record: (seq, kind, fields).
Record = tuple[int, int, list]


def load_index(directory: str | Path) -> dict[str, Any] | None:
    """Load ``index.json``; ``None`` when absent or unreadable.

    A missing/torn index is not an error — the writer may have crashed
    before its first flush, and segments carry all the event data.  A
    *well-formed* index with the wrong format tag raises, because that
    is a version mismatch, not a crash artefact.
    """
    path = Path(directory) / INDEX_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    fmt = payload.get("format")
    if fmt != STORE_FORMAT:
        raise StoreCorruptionError(
            f"{path}: unsupported store format {fmt!r} "
            f"(expected {STORE_FORMAT!r})"
        )
    return payload


class StoreReader:
    """Read a (finished or crashed) store directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(f"no trace store at {self.directory}")
        self.index = load_index(self.directory)
        self.shards = shard_segments(self.directory)
        if not self.shards and self.index is None:
            raise FileNotFoundError(
                f"{self.directory} holds neither segments nor an index"
            )

    def _iter_shard(self, shard: str) -> Iterator[Record]:
        paths = self.shards.get(shard, [])
        for i, path in enumerate(paths):
            last = i == len(paths) - 1
            for kind, seq, fields in iter_segment_records(path, last=last):
                yield seq, kind, fields

    def _shard_by_index(self, shard: str) -> dict[int, Path]:
        return {
            int(p.name.rsplit("-", 1)[1].split(".")[0]): p
            for p in self.shards.get(shard, [])
        }

    def _iter_shard_from(
        self, shard: str, seg: int, byte: int
    ) -> Iterator[Record]:
        """One shard's records starting at a (segment, byte) offset."""
        by_index = self._shard_by_index(shard)
        if not by_index:
            return
        final = max(by_index)
        for idx in sorted(by_index):
            if idx < seg:
                continue
            start = byte if idx == seg else 0
            for kind, seq, fields in iter_segment_records(
                by_index[idx], last=idx == final, start=start
            ):
                yield seq, kind, fields

    def _step_starts(self, from_step: int) -> dict[str, tuple[int, int]]:
        """Per-shard (segment, byte) start offsets for ``from_step``."""
        steps = self.steps
        if not steps:
            raise ValueError(
                f"partial replay needs a store index with per-step "
                f"offsets; {self.directory} has none"
            )
        if not 0 <= from_step < len(steps):
            raise ValueError(
                f"from_step {from_step} out of range; store has steps "
                f"0..{len(steps) - 1}"
            )
        starts = steps[from_step].get("starts", {})
        return {s: (int(v[0]), int(v[1])) for s, v in starts.items()}

    def iter_records(self, from_step: int | None = None) -> Iterator[Record]:
        """All records across shards, merged by global sequence number.

        Per-shard streams are already seq-sorted (the writer's counter
        is monotone), so this is a lazy k-way heap merge: O(shards)
        memory however long the trace is.

        ``from_step`` seeds each rank shard at the index's per-step
        byte offset instead of replaying from byte zero — only the
        bytes from that step on are read.  Shards without an offset
        entry for the step (the rank-less ``driver`` stream, or ranks
        that died earlier) are filtered to sequence numbers at or after
        the earliest offset-started record, so the merged stream is
        exactly the tail of the full replay.  Raises :class:`ValueError`
        when the store has no index or the step is out of range.
        """
        if from_step is None:
            return heapq.merge(
                *(self._iter_shard(shard) for shard in self.shards)
            )
        starts = self._step_starts(from_step)
        streams: list[Iterator[Record]] = []
        min_seq: int | None = None
        for shard in sorted(starts):
            if shard not in self.shards:
                continue
            seg, byte = starts[shard]
            it = self._iter_shard_from(shard, seg, byte)
            first = next(it, None)
            if first is None:
                continue
            if min_seq is None or first[0] < min_seq:
                min_seq = first[0]
            streams.append(itertools.chain([first], it))
        floor = 0 if min_seq is None else min_seq
        for shard in self.shards:
            if shard in starts:
                continue
            streams.append(
                rec for rec in self._iter_shard(shard) if rec[0] >= floor
            )
        return heapq.merge(*streams)

    def to_tracer(self, from_step: int | None = None) -> SpanTracer:
        """Replay the merged stream into an in-memory SpanTracer."""
        tracer = SpanTracer()
        if self.index is not None:
            tracer.clock = self.index.get("clock", "virtual")
            tracer._offset = float(self.index.get("offset", 0.0))
        for _seq, kind, fields in self.iter_records(from_step=from_step):
            if kind == KIND_OP:
                tracer.ops.append(tuple(fields))
            elif kind == KIND_PHASE:
                tracer.phase_marks.append(tuple(fields))
            elif kind == KIND_MARK:
                tracer.marks.append(tuple(fields))
            elif kind == KIND_SEND:
                tracer.sends.append(tuple(fields))
            elif kind == KIND_RECV:
                tracer.recvs.append(tuple(fields))
            else:  # pragma: no cover - codec rejects unknown kinds first
                raise StoreCorruptionError(f"unknown record kind {kind}")
        return tracer

    @property
    def steps(self) -> list[dict[str, Any]]:
        """Per-step index entries (empty when no index was written)."""
        if self.index is None:
            return []
        return list(self.index.get("steps", []))


def load_store(
    directory: str | Path, from_step: int | None = None
) -> SpanTracer:
    """Reconstruct the SpanTracer view of a store directory."""
    return StoreReader(directory).to_tracer(from_step=from_step)


class TailReader:
    """Incrementally tail a store that may still be growing.

    Keeps one cursor per shard: the segment currently being read and
    the byte offset of the next frame.  A shard's cursor only advances
    past a segment once the *next* numbered segment exists (rotation
    means the previous file is sealed); an incomplete or CRC-failing
    frame at the current position is treated as in-flight and retried
    on the next poll.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        # shard -> [segment index, byte offset]
        self._cursors: dict[str, list[int]] = {}

    def poll(self) -> list[Record]:
        """Return records that became durable since the last poll."""
        out: list[Record] = []
        if not self.directory.is_dir():
            return out
        shards = shard_segments(self.directory)
        for shard, paths in shards.items():
            by_index = {
                int(p.name.rsplit("-", 1)[1].split(".")[0]): p for p in paths
            }
            cursor = self._cursors.setdefault(shard, [0, 0])
            while True:
                path = by_index.get(cursor[0])
                if path is None:
                    break
                buf = path.read_bytes()
                off = cursor[1]
                while off < len(buf):
                    payload, off2 = read_frame(buf, off)
                    if payload is None:
                        break  # in-flight tail: retry next poll
                    kind, seq, fields = _decode_record(payload)
                    out.append((seq, kind, fields))
                    off = off2
                cursor[1] = off
                # Advance to the next segment only once it exists:
                # rotation guarantees the current file is sealed then.
                if cursor[0] + 1 in by_index and off >= len(buf):
                    cursor[0] += 1
                    cursor[1] = 0
                else:
                    break
        out.sort()
        return out

    def index(self) -> dict[str, Any] | None:
        """Latest index snapshot, if the writer has flushed one."""
        return load_index(self.directory)
