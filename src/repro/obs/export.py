"""Exporters: Chrome trace_event JSON, CSV rollups, ASCII timelines.

* :func:`chrome_trace` — the ``trace_event`` format understood by
  ``chrome://tracing`` and Perfetto: one complete ("X") event per
  primitive span (name = kind, category = phase), one "X" event per
  contiguous phase band on a synthetic ``phases`` track, cumulative
  counter ("C") series of per-phase comm-matrix traffic, plus instant
  ("i") events for driver marks.  Timestamps are virtual microseconds.
* :func:`rollup_csv` — per-rank, per-phase rows of a
  :class:`repro.obs.rollup.PhaseRollup`; lands under
  ``benchmarks/results/`` so table regenerations and traces live in
  one place.
* :func:`ascii_timeline` — per-rank timeline rendered through
  :func:`repro.core.ascii_plot.timeline_chart`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.rollup import PhaseRollup
from repro.obs.tracer import SpanTracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "rollup_csv",
    "write_rollup_csv",
    "ascii_timeline",
]

_US = 1.0e6  # virtual seconds -> trace_event microseconds


def chrome_trace(tracer: SpanTracer, pretty: bool = False) -> str:
    """Serialise a trace to Chrome ``trace_event`` JSON (object format)."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "simulated machine"},
        }
    ]
    for rank in range(tracer.nranks):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    # Phase bands on a dedicated track per rank (pid 1) so the op spans
    # (pid 0) stay readable underneath.
    for rank, spans in sorted(tracer.phase_spans().items()):
        for t0, t1, phase in spans:
            events.append(
                {
                    "name": phase,
                    "cat": "phase",
                    "ph": "X",
                    "ts": t0 * _US,
                    "dur": (t1 - t0) * _US,
                    "pid": 1,
                    "tid": rank,
                }
            )
    for rank, phase, kind, t0, t1, flops, nbytes in tracer.ops:
        ev: dict[str, Any] = {
            "name": kind,
            "cat": phase,
            "ph": "X",
            "ts": t0 * _US,
            "dur": (t1 - t0) * _US,
            "pid": 0,
            "tid": rank,
        }
        args: dict[str, Any] = {}
        if flops:
            args["flops"] = flops
        if nbytes:
            args["bytes"] = nbytes
        if args:
            ev["args"] = args
        events.append(ev)
    # Cumulative comm-matrix counters (pid 2): one "C" series per phase
    # tracking bytes and message count over time, so the comm volume the
    # analytics comm_matrix() reports is visible *in* the timeline —
    # slope changes line up with the op spans that caused them.
    if tracer.sends:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 2,
                "tid": 0,
                "args": {"name": "comm counters"},
            }
        )
        totals: dict[str, list[int]] = {}
        for t, _src, _dst, _tag, nbytes, phase in sorted(tracer.sends):
            cum = totals.setdefault(phase, [0, 0])
            cum[0] += int(nbytes)
            cum[1] += 1
            events.append(
                {
                    "name": f"comm {phase}",
                    "cat": "comm",
                    "ph": "C",
                    "ts": t * _US,
                    "pid": 2,
                    "tid": 0,
                    "args": {"bytes": cum[0], "msgs": cum[1]},
                }
            )
    for t, name, args in tracer.marks:
        events.append(
            {
                "name": name,
                "cat": "driver",
                "ph": "i",
                "s": "g",  # global-scope instant
                "ts": t * _US,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    return json.dumps(doc, indent=2 if pretty else None)


def write_chrome_trace(tracer: SpanTracer, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(chrome_trace(tracer) + "\n")
    return path


def rollup_csv(rollup: PhaseRollup) -> str:
    """Per-rank, per-phase CSV rows of one :class:`PhaseRollup`."""
    lines = ["rank,phase,compute_s,comm_s,wait_s,total_s,flops,bytes,events"]
    for rank in range(rollup.nranks):
        for phase in rollup.phases():
            c = rollup.cell(rank, phase)
            lines.append(
                f"{rank},{phase},{c.compute:.9g},{c.comm:.9g},"
                f"{c.wait:.9g},{c.total:.9g},{c.flops:.9g},"
                f"{c.nbytes},{c.events}"
            )
    return "\n".join(lines)


def write_rollup_csv(rollup: PhaseRollup, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rollup_csv(rollup) + "\n")
    return path


def ascii_timeline(tracer: SpanTracer, width: int = 72) -> str:
    """Per-rank phase timeline (one row per rank, one char per slot)."""
    # Imported here: repro.core pulls in the drivers, which import
    # repro.obs — a module-level import would be circular.
    from repro.core.ascii_plot import timeline_chart

    return timeline_chart(
        tracer.phase_spans(),
        t_end=tracer.t_end,
        width=width,
        title="per-rank phase timeline (virtual time)",
    )
