"""Observability: per-rank phase tracing, rollups and exporters.

The paper's entire evaluation (Tables 1--5) is built from per-phase,
per-rank timing breakdowns: flow solve vs. grid motion vs. DCF3D
connectivity, received-IGBP counts I(p), and load-imbalance factors
f(p) = I(p)/Ibar.  This subpackage is the instrumentation layer that
produces those series from the simulated machine:

* :mod:`tracer` — span-event recording (:class:`SpanTracer`) with a
  zero-cost disabled path (:class:`NullTracer` / ``tracer=None``); the
  scheduler emits one span per primitive (compute, message injection,
  blocked-receive wait, poll) tagged with rank, phase, virtual begin
  and end times, flops and bytes;
* :mod:`rollup` — derived per-rank/per-phase aggregates
  (:class:`PhaseRollup`, the Table-4-style breakdown) and the I(p) /
  f(p) series (:class:`IgbpRollup`) consumed by
  :mod:`repro.partition.dynamic_lb`;
* :mod:`export` — Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto), CSV rollups, and an ASCII per-rank
  timeline rendered through :mod:`repro.core.ascii_plot`;
* :mod:`perf` — the performance observatory: critical-path and
  comm-matrix analytics over recorded traces, the ``repro bench``
  canonical-JSON harness and the ``repro trace-diff`` regression gate;
* :mod:`store` — the streaming, sharded trace store
  (:class:`StoreTracer` writing append-only per-rank segment files
  with an index, :func:`load_store` reconstructing the exact
  SpanTracer view) that lifts the in-memory cap on run length and
  feeds the live ``repro top`` view.

See ``docs/observability.md`` for the schema and reading guide.
"""

from repro.obs.tracer import NullTracer, SpanTracer, Tracer
from repro.obs.rollup import IgbpRollup, PhaseCell, PhaseRollup
from repro.obs.export import (
    ascii_timeline,
    chrome_trace,
    rollup_csv,
    write_chrome_trace,
    write_rollup_csv,
)
from repro.obs.store import StoreReader, StoreTracer, TailReader, load_store

__all__ = [
    "Tracer",
    "NullTracer",
    "SpanTracer",
    "StoreTracer",
    "StoreReader",
    "TailReader",
    "load_store",
    "PhaseCell",
    "PhaseRollup",
    "IgbpRollup",
    "chrome_trace",
    "write_chrome_trace",
    "rollup_csv",
    "write_rollup_csv",
    "ascii_timeline",
]
