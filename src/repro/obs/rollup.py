"""Derived rollups: the paper's per-rank / per-phase breakdowns.

Two aggregates cover everything the evaluation consumes:

* :class:`PhaseRollup` — per-rank, per-phase seconds split into
  compute / comm / wait, plus flops, bytes and event counts.  This is
  the Table-4-style breakdown (flow solve vs. grid motion vs. DCF3D
  connectivity vs. wait time) and the source of the load-imbalance
  factors the tables report.  It can be built from the scheduler's
  always-on :class:`repro.machine.metrics.MachineMetrics` (cheap; no
  event counts or bytes) or from a :class:`repro.obs.tracer.SpanTracer`
  (full fidelity); on the shared fields the two constructions agree
  exactly, which the test battery asserts.

* :class:`IgbpRollup` — the per-step, per-rank received-IGBP counts
  I(p) with the derived global average Ibar and load factors
  f(p) = I(p)/Ibar.  This is the series Algorithm 2
  (:mod:`repro.partition.dynamic_lb`) consumes; the driver no longer
  threads raw counter arrays through its result types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.machine.metrics import KINDS

__all__ = ["PhaseCell", "PhaseRollup", "IgbpRollup"]


@dataclass
class PhaseCell:
    """Accounting for one (rank, phase) pair."""

    compute: float = 0.0
    comm: float = 0.0
    wait: float = 0.0
    flops: float = 0.0
    nbytes: int = 0
    events: int = 0

    @property
    def total(self) -> float:
        """Virtual seconds attributed to this cell (all kinds)."""
        return self.compute + self.comm + self.wait

    def add(self, other: "PhaseCell") -> None:
        self.compute += other.compute
        self.comm += other.comm
        self.wait += other.wait
        self.flops += other.flops
        self.nbytes += other.nbytes
        self.events += other.events


class PhaseRollup:
    """Per-rank, per-phase aggregate of one or more simulated runs.

    Phases keep first-seen order, matching the order ranks entered them.
    """

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError(f"rollup needs >= 1 rank, got {nranks}")
        self.nranks = nranks
        self.elapsed = 0.0  # virtual wall-clock covered by this rollup
        self._cells: dict[tuple[int, str], PhaseCell] = {}
        self._phases: dict[str, None] = {}  # insertion-ordered set

    # -- construction ---------------------------------------------------

    @classmethod
    def from_metrics(cls, metrics: Any) -> "PhaseRollup":
        """Build from :class:`repro.machine.metrics.MachineMetrics`.

        Always available (the scheduler keeps these counters whether or
        not tracing is enabled); ``nbytes``/``events`` stay zero because
        the coarse counters do not attribute them per phase.
        """
        roll = cls(metrics.nranks)
        roll.elapsed = metrics.elapsed
        for r in metrics.ranks:
            for phase, kinds in r.time.items():
                cell = roll._cell(r.rank, phase)
                for kind, dt in kinds.items():
                    setattr(cell, kind, getattr(cell, kind) + dt)
            for phase, fl in r.flops.items():
                roll._cell(r.rank, phase).flops += fl
        return roll

    @classmethod
    def from_tracer(
        cls, tracer: Any, nranks: int | None = None
    ) -> "PhaseRollup":
        """Build from a :class:`repro.obs.tracer.SpanTracer`'s op spans."""
        n = tracer.nranks if nranks is None else nranks
        roll = cls(max(1, n))
        roll.elapsed = tracer.t_end
        for rank, phase, kind, t0, t1, flops, nbytes in tracer.ops:
            cell = roll._cell(rank, phase)
            if kind not in KINDS:
                raise ValueError(f"unknown span kind {kind!r}")
            setattr(cell, kind, getattr(cell, kind) + (t1 - t0))
            cell.flops += flops
            cell.nbytes += nbytes
            cell.events += 1
        return roll

    def merge(self, other: "PhaseRollup") -> "PhaseRollup":
        """Accumulate another rollup (e.g. the next epoch) in place.

        Elapsed times add (epochs are sequential); rank counts may
        differ across repartitions — the merged rollup covers the
        largest rank id seen.
        """
        self.nranks = max(self.nranks, other.nranks)
        self.elapsed += other.elapsed
        for (rank, phase), cell in other._cells.items():
            self._cell(rank, phase).add(cell)
        return self

    # -- access ---------------------------------------------------------

    def _cell(self, rank: int, phase: str) -> PhaseCell:
        key = (rank, phase)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = PhaseCell()
            self._phases.setdefault(phase)
        return cell

    def cell(self, rank: int, phase: str) -> PhaseCell:
        """The (possibly empty) accounting cell for one rank and phase."""
        return self._cells.get((rank, phase), PhaseCell())

    def phases(self) -> list[str]:
        return list(self._phases)

    def rank_total(self, rank: int) -> float:
        """All virtual seconds accounted to ``rank`` across phases."""
        return sum(
            c.total for (r, _), c in self._cells.items() if r == rank
        )

    def phase_seconds(self, phase: str) -> np.ndarray:
        """Per-rank seconds in ``phase`` (zeros where a rank never entered)."""
        out = np.zeros(self.nranks)
        for (rank, p), cell in self._cells.items():
            if p == phase:
                out[rank] = cell.total
        return out

    def phase_total(self, phase: str) -> float:
        """Summed rank-seconds in ``phase``."""
        return float(self.phase_seconds(phase).sum())

    def phase_max(self, phase: str) -> float:
        """Slowest single rank — the barrier-separated critical path."""
        return float(self.phase_seconds(phase).max())

    def phase_avg(self, phase: str) -> float:
        return self.phase_total(phase) / self.nranks

    def phase_wait(self, phase: str) -> float:
        """Summed rank-seconds idle (blocked) inside ``phase``."""
        return sum(
            c.wait for (_, p), c in self._cells.items() if p == phase
        )

    def imbalance(self, phase: str) -> float:
        """max/avg load factor for one phase (1.0 = perfect balance)."""
        avg = self.phase_avg(phase)
        return self.phase_max(phase) / avg if avg else 1.0

    def total_seconds(self) -> float:
        return sum(c.total for c in self._cells.values())

    def total_flops(self) -> float:
        return sum(c.flops for c in self._cells.values())

    def phase_fraction(self, phase: str) -> float:
        total = self.total_seconds()
        return self.phase_total(phase) / total if total else 0.0

    # -- presentation ---------------------------------------------------

    def breakdown(self, order: list[str] | None = None) -> list[dict]:
        """Table-4-style rows: one dict per phase.

        ``avg_s``/``max_s`` are per-rank seconds over the whole rollup;
        ``wait_s`` the summed idle seconds inside the phase;
        ``imbalance`` the max/avg factor; ``fraction`` the share of all
        rank-seconds.
        """
        phases = order if order is not None else self.phases()
        return [
            {
                "phase": p,
                "avg_s": self.phase_avg(p),
                "max_s": self.phase_max(p),
                "wait_s": self.phase_wait(p),
                "imbalance": self.imbalance(p),
                "fraction": self.phase_fraction(p),
            }
            for p in phases
        ]

    def format_breakdown(self) -> str:
        """Human-readable breakdown table (the paper's Table-4 shape)."""
        hdr = f"{'phase':>12s} {'avg s':>10s} {'max s':>10s} {'wait s':>10s} {'imbal':>7s} {'frac':>6s}"
        lines = [hdr]
        for row in self.breakdown():
            lines.append(
                f"{row['phase']:>12s} {row['avg_s']:>10.5f} "
                f"{row['max_s']:>10.5f} {row['wait_s']:>10.5f} "
                f"{row['imbalance']:>7.3f} {row['fraction']:>6.1%}"
            )
        return "\n".join(lines)

    def summary(self) -> dict:
        """JSON-serialisable summary (used by the golden-trace tests)."""
        return {
            "nranks": self.nranks,
            "elapsed": self.elapsed,
            "total_flops": self.total_flops(),
            "phases": {
                p: {
                    "total_s": self.phase_total(p),
                    "max_s": self.phase_max(p),
                    "wait_s": self.phase_wait(p),
                    "events": int(
                        sum(
                            c.events
                            for (_, q), c in self._cells.items()
                            if q == p
                        )
                    ),
                }
                for p in self.phases()
            },
        }


class IgbpRollup:
    """Per-step, per-rank received-IGBP counts and the f(p) series.

    ``record`` appends one timestep's I(p); if the rank count changes
    (the partition was rebuilt) accumulation restarts, mirroring the
    paper's per-window measurement between load-balance checks.
    """

    def __init__(self) -> None:
        self._steps: list[np.ndarray] = []

    # -- recording ------------------------------------------------------

    def record(self, counts: Any) -> None:
        arr = np.asarray(counts, dtype=np.int64).ravel()
        if arr.size == 0:
            raise ValueError("empty I(p) sample")
        if self._steps and arr.size != self._steps[0].size:
            self._steps = []  # repartition: restart the window
        self._steps.append(arr.copy())

    def merge(self, other: "IgbpRollup") -> "IgbpRollup":
        for arr in other._steps:
            self.record(arr)
        return self

    def reset(self) -> None:
        self._steps = []

    # -- access ---------------------------------------------------------

    @property
    def nsteps(self) -> int:
        return len(self._steps)

    @property
    def nranks(self) -> int:
        return self._steps[0].size if self._steps else 0

    def per_step(self) -> np.ndarray:
        """The raw (nsteps, nranks) I(p) matrix."""
        if not self._steps:
            return np.zeros((0, 0), dtype=np.int64)
        return np.stack(self._steps)

    def accumulated(self) -> np.ndarray:
        """I(p) summed over the recorded window (one entry per rank)."""
        if not self._steps:
            return np.zeros(0, dtype=np.int64)
        return self.per_step().sum(axis=0)

    def ibar(self) -> float:
        """Global average received-IGBP count over the window."""
        acc = self.accumulated()
        return float(acc.mean()) if acc.size else 0.0

    def f(self) -> np.ndarray:
        """Load factors f(p) = I(p)/Ibar (all ones when Ibar == 0)."""
        acc = self.accumulated().astype(float)
        ib = self.ibar()
        if acc.size == 0:
            return acc
        if ib == 0:
            return np.ones_like(acc)
        return acc / ib

    def summary(self) -> dict:
        acc = self.accumulated()
        return {
            "nsteps": self.nsteps,
            "nranks": self.nranks,
            "I": [int(v) for v in acc],
            "ibar": self.ibar(),
            "f_max": float(self.f().max()) if acc.size else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IgbpRollup(nsteps={self.nsteps}, nranks={self.nranks}, "
            f"ibar={self.ibar():.3g})"
        )
