"""Span-event tracing for the simulated machine.

Events are recorded by :class:`repro.machine.scheduler.Simulator` as it
dispatches rank primitives; every record call sites behind an
``if tracer is not None`` guard, and the default is ``None``, so the
disabled path costs one pointer comparison and allocates nothing —
benchmark virtual times are bit-identical with tracing on or off
(asserted by the golden-trace tests).

Five event kinds are kept, all in *virtual seconds*:

``op`` spans
    ``(rank, phase, kind, t0, t1, flops, nbytes)`` — one per scheduler
    primitive.  ``kind`` is ``compute`` (charged arithmetic), ``comm``
    (message injection / polling; the sender-side cost) or ``wait``
    (blocked receive; ``t1 - t0`` is the idle time, ``nbytes`` the size
    of the message that ended it).
``phase`` marks
    ``(rank, t, name)`` — emitted at every ``Comm.set_phase``.
``mark`` instants
    ``(t, name, args)`` — driver-level annotations (epoch boundaries,
    repartitions).
``send`` events
    ``(t, src, dst, tag, nbytes, phase)`` — one per message injection
    (including messages black-holed at failed ranks: the sender still
    paid).  These feed :class:`repro.obs.perf.CommMatrix`.
``recv`` events
    ``(t, rank, src, tag, nbytes, phase)`` — one per message actually
    consumed (blocking recv, successful tryrecv, or drain).  These let
    :mod:`repro.obs.perf.critical_path` blame wait spans on the sender
    whose message ended them.

A multi-epoch run (the driver restarts the scheduler after each dynamic
rebalance) calls :meth:`Tracer.advance` between epochs so recorded
times stay on one continuous virtual axis.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Tracer", "NullTracer", "SpanTracer", "OpEvent"]

#: Alias documenting the tuple layout of one ``op`` span.
OpEvent = tuple  # (rank, phase, kind, t0, t1, flops, nbytes)


class Tracer:
    """Recording interface; the base class ignores everything.

    ``enabled`` is the contract with the scheduler: a simulator given a
    tracer with ``enabled=False`` drops it at construction time, so the
    per-event hot path never even sees the object.
    """

    enabled: bool = False

    #: Time base of recorded events.  ``"virtual"`` (the default) means
    #: modeled seconds from the discrete-event scheduler; execution
    #: backends that record measured host time (``repro.backend.mp``)
    #: set this to ``"wall"`` so downstream analytics and baselines can
    #: refuse to compare traces across clock domains.
    clock: str = "virtual"

    # -- recording (called from the scheduler hot path) ----------------

    def op(
        self,
        rank: int,
        phase: str,
        kind: str,
        t0: float,
        t1: float,
        flops: float = 0.0,
        nbytes: int = 0,
    ) -> None:
        """Record one primitive span on ``rank``."""

    def phase(self, rank: int, t: float, name: str) -> None:
        """Record a phase switch on ``rank`` at virtual time ``t``."""

    def mark(self, t: float, name: str, **args: Any) -> None:
        """Record an instantaneous driver-level annotation."""

    def send(
        self, t: float, src: int, dst: int, tag: int, nbytes: int, phase: str
    ) -> None:
        """Record one message injection (``src`` -> ``dst``)."""

    def recv(
        self, t: float, rank: int, src: int, tag: int, nbytes: int, phase: str
    ) -> None:
        """Record one message consumption on ``rank`` (sender ``src``)."""

    # -- epoch plumbing -------------------------------------------------

    @property
    def offset(self) -> float:
        """Current virtual-time offset added to recorded times."""
        return 0.0

    def advance(self, dt: float) -> None:
        """Shift the virtual-time origin forward by ``dt`` (one epoch)."""


class NullTracer(Tracer):
    """Explicitly-disabled tracer; identical to passing ``tracer=None``."""


class SpanTracer(Tracer):
    """Accumulates every event in memory.

    Attributes
    ----------
    ops:
        List of ``(rank, phase, kind, t0, t1, flops, nbytes)`` tuples in
        deterministic scheduler dispatch order.
    phase_marks:
        List of ``(rank, t, name)`` phase-switch marks.
    marks:
        List of ``(t, name, args)`` driver annotations.
    sends:
        List of ``(t, src, dst, tag, nbytes, phase)`` message injections.
    recvs:
        List of ``(t, rank, src, tag, nbytes, phase)`` consumptions.
    """

    enabled = True

    def __init__(self) -> None:
        self.ops: list[tuple] = []
        self.phase_marks: list[tuple] = []
        self.marks: list[tuple] = []
        self.sends: list[tuple] = []
        self.recvs: list[tuple] = []
        self._offset = 0.0

    # -- recording ------------------------------------------------------

    def op(
        self,
        rank: int,
        phase: str,
        kind: str,
        t0: float,
        t1: float,
        flops: float = 0.0,
        nbytes: int = 0,
    ) -> None:
        off = self._offset
        self.ops.append((rank, phase, kind, t0 + off, t1 + off, flops, nbytes))

    def phase(self, rank: int, t: float, name: str) -> None:
        self.phase_marks.append((rank, t + self._offset, name))

    def mark(self, t: float, name: str, **args: Any) -> None:
        self.marks.append((t + self._offset, name, dict(args)))

    def send(
        self, t: float, src: int, dst: int, tag: int, nbytes: int, phase: str
    ) -> None:
        self.sends.append((t + self._offset, src, dst, tag, nbytes, phase))

    def recv(
        self, t: float, rank: int, src: int, tag: int, nbytes: int, phase: str
    ) -> None:
        self.recvs.append((t + self._offset, rank, src, tag, nbytes, phase))

    # -- epoch plumbing -------------------------------------------------

    @property
    def offset(self) -> float:
        return self._offset

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot advance the trace origin by {dt}")
        self._offset += dt

    # -- derived views --------------------------------------------------

    @property
    def nranks(self) -> int:
        """Number of ranks seen (max rank id + 1), across all five
        event streams — a rank black-holed before its first op span
        still shows up as a send source or destination."""
        top = -1
        for e in self.ops:
            if e[0] > top:
                top = e[0]
        for e in self.phase_marks:
            if e[0] > top:
                top = e[0]
        for e in self.sends:  # (t, src, dst, ...)
            if e[1] > top:
                top = e[1]
            if e[2] > top:
                top = e[2]
        for e in self.recvs:  # (t, rank, src, ...)
            if e[1] > top:
                top = e[1]
            if e[2] > top:
                top = e[2]
        return top + 1

    @property
    def t_end(self) -> float:
        """Latest span end time (0 for an empty trace)."""
        return max((e[4] for e in self.ops), default=0.0)

    def rank_ops(self, rank: int) -> list[tuple]:
        """This rank's op spans, in time order."""
        return [e for e in self.ops if e[0] == rank]

    def phase_spans(self) -> dict[int, list[tuple[float, float, str]]]:
        """Contiguous per-rank phase bands derived from the op spans.

        Returns ``{rank: [(t0, t1, phase), ...]}`` where consecutive ops
        in the same phase are coalesced into one band.  Gaps between
        bands are times the rank had already finished (or had no
        recorded activity).
        """
        out: dict[int, list[tuple[float, float, str]]] = {}
        for rank, phase, _kind, t0, t1, _f, _b in self.ops:
            spans = out.setdefault(rank, [])
            if spans and spans[-1][2] == phase and t0 <= spans[-1][1] + 1e-15:
                prev = spans[-1]
                spans[-1] = (prev[0], max(prev[1], t1), phase)
            else:
                spans.append((t0, t1, phase))
        return out

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpanTracer({len(self.ops)} ops, {self.nranks} ranks, "
            f"t_end={self.t_end:.6g}s)"
        )
