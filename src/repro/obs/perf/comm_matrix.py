"""Communication matrix: ranks x ranks traffic per accounting phase.

Built from the ``send`` events a :class:`repro.obs.tracer.SpanTracer`
records (one per message injection, including messages black-holed at
failed ranks — the sender still paid the injection cost).  The matrix
answers the questions the paper's communication analysis asks: who
talks to whom, in which phase, and which point-to-point edges dominate
the volume (the "hot edges" that a partitioner should keep on-node).
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["CommMatrix"]


class CommMatrix:
    """Per-phase (nranks x nranks) bytes/messages matrices.

    Entry ``[src, dst]`` accounts messages *sent* by ``src`` to ``dst``
    while ``src`` was in the given phase (sender-side attribution,
    matching the scheduler's comm-time accounting).
    """

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError(f"comm matrix needs >= 1 rank, got {nranks}")
        self.nranks = nranks
        # phase -> (bytes matrix, message-count matrix); insertion order
        # is first-seen order, matching the rollup convention.
        self._bytes: dict[str, np.ndarray] = {}
        self._msgs: dict[str, np.ndarray] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer: Any, nranks: int | None = None) -> "CommMatrix":
        """Build from a :class:`SpanTracer`'s ``send`` event stream."""
        n = tracer.nranks if nranks is None else nranks
        mat = cls(max(1, n))
        for _t, src, dst, _tag, nbytes, phase in tracer.sends:
            mat.add(src, dst, nbytes, phase)
        return mat

    def add(self, src: int, dst: int, nbytes: int, phase: str) -> None:
        b = self._bytes.get(phase)
        if b is None:
            b = self._bytes[phase] = np.zeros(
                (self.nranks, self.nranks), dtype=np.int64
            )
            self._msgs[phase] = np.zeros(
                (self.nranks, self.nranks), dtype=np.int64
            )
        b[src, dst] += nbytes
        self._msgs[phase][src, dst] += 1

    # -- access ---------------------------------------------------------

    def phases(self) -> list[str]:
        return list(self._bytes)

    def bytes_matrix(self, phase: str | None = None) -> np.ndarray:
        """Bytes matrix for one phase, or summed over all phases."""
        if phase is not None:
            return self._bytes.get(
                phase, np.zeros((self.nranks, self.nranks), dtype=np.int64)
            )
        out = np.zeros((self.nranks, self.nranks), dtype=np.int64)
        for m in self._bytes.values():
            out += m
        return out

    def msgs_matrix(self, phase: str | None = None) -> np.ndarray:
        """Message-count matrix for one phase, or summed over all."""
        if phase is not None:
            return self._msgs.get(
                phase, np.zeros((self.nranks, self.nranks), dtype=np.int64)
            )
        out = np.zeros((self.nranks, self.nranks), dtype=np.int64)
        for m in self._msgs.values():
            out += m
        return out

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_matrix().sum())

    @property
    def total_messages(self) -> int:
        return int(self.msgs_matrix().sum())

    def hot_edges(
        self, k: int = 10, phase: str | None = None
    ) -> list[dict[str, int]]:
        """Top-``k`` (src, dst) edges by bytes (ties broken by rank ids).

        Deterministic: the sort key is ``(-bytes, -msgs, src, dst)``.
        """
        b = self.bytes_matrix(phase)
        m = self.msgs_matrix(phase)
        edges = [
            {
                "src": int(s),
                "dst": int(d),
                "bytes": int(b[s, d]),
                "msgs": int(m[s, d]),
            }
            for s, d in zip(*np.nonzero(m))
        ]
        edges.sort(key=lambda e: (-e["bytes"], -e["msgs"], e["src"], e["dst"]))
        return edges[:k]

    # -- serialization --------------------------------------------------

    def to_dict(self, top_k: int = 10) -> dict:
        """JSON-serialisable sparse form (deterministic entry order)."""
        phases = {}
        for phase in self.phases():
            b, m = self._bytes[phase], self._msgs[phase]
            entries = [
                [int(s), int(d), int(m[s, d]), int(b[s, d])]
                for s, d in zip(*np.nonzero(m))
            ]
            entries.sort()
            phases[phase] = {
                "bytes": int(b.sum()),
                "msgs": int(m.sum()),
                "entries": entries,
            }
        return {
            "nranks": self.nranks,
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "phases": phases,
            "hot_edges": self.hot_edges(top_k),
        }

    # -- presentation ---------------------------------------------------

    def format(self, phase: str | None = None, max_ranks: int = 16) -> str:
        """Human-readable matrix (kB) plus the hot-edge list."""
        b = self.bytes_matrix(phase)
        title = f"comm matrix ({phase or 'all phases'}): " \
                f"{self.total_messages} msgs, {self.total_bytes} B"
        lines = [title]
        if self.nranks <= max_ranks:
            hdr = "      " + "".join(f"{d:>8d}" for d in range(self.nranks))
            lines.append(hdr + "  (dst, kB)")
            for s in range(self.nranks):
                row = "".join(f"{b[s, d] / 1024.0:>8.1f}" for d in range(self.nranks))
                lines.append(f"  {s:>3d} {row}")
        for e in self.hot_edges(5, phase):
            lines.append(
                f"  hot edge {e['src']:>3d} -> {e['dst']:<3d} "
                f"{e['bytes']:>10d} B in {e['msgs']} msgs"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommMatrix({self.nranks} ranks, {self.total_messages} msgs, "
            f"{self.total_bytes} B)"
        )
