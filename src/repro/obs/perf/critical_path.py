"""Critical-path analysis: the longest chain through each timestep.

OVERFLOW-D1 advances in barrier-separated phases — flow solve
("overflow"), grid motion ("motion"), connectivity ("dcf3d") — so the
elapsed time of one timestep is the sum over phases of the *slowest*
rank's interval in that phase; everything the other ranks spend short
of the slowest is slack.  This module walks a
:class:`repro.obs.tracer.SpanTracer`'s event streams and reproduces the
paper's Table-style accounting per timestep:

* the **chain**: per (step, phase) the wall interval ``[t0, t1]``, the
  critical rank (the last finisher, ties to the lowest rank id) and its
  busy time;
* **slack attribution** per rank: measured ``wait`` (blocked receives),
  ``comm`` (injection/poll), ``compute``, and the residual
  ``barrier_s`` — the span time the rank was simply finished early
  (idle at the dissemination barrier);
* **imbalance factors** per phase (max/avg busy time, the Table-4
  column) and — when an :class:`repro.obs.rollup.IgbpRollup` is
  supplied — the paper's received-IGBP distribution f(p) = I(p)/Ibar;
* **wait blame**: each completed blocking receive ends a recorded wait
  span; the matching ``recv`` event names the sender, so idle seconds
  can be charged to the rank whose message arrived late.

Steps are identified by counting per-rank entries into the *first*
cyclic phase (``phase_order[0]``): the k-th entry starts that rank's
step k.  Activity before the first entry, and activity in phases
outside ``phase_order`` (e.g. ``restore`` / ``repartition`` recovery
spans), is grouped under the pseudo-step ``-1`` ("off-cycle") so
faulted runs remain analyzable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["CriticalPathReport", "analyze_critical_path", "DEFAULT_PHASE_ORDER"]

#: The OVERFLOW-D1 per-step phase cycle (see repro.core.overflow_d1).
DEFAULT_PHASE_ORDER: tuple[str, ...] = ("overflow", "motion", "dcf3d")

#: Pseudo-step index for activity outside the phase cycle.
OFF_CYCLE = -1


@dataclass
class _Cell:
    """Accounting for one (step, phase, rank) triple."""

    compute: float = 0.0
    comm: float = 0.0
    wait: float = 0.0
    t0: float = float("inf")
    t1: float = float("-inf")

    @property
    def busy(self) -> float:
        return self.compute + self.comm

    @property
    def total(self) -> float:
        return self.compute + self.comm + self.wait


@dataclass
class PhaseChainLink:
    """One phase of one timestep on the critical chain."""

    step: int
    phase: str
    t0: float
    t1: float
    critical_rank: int
    busy_max: float
    busy_avg: float
    wait_total: float
    barrier_total: float
    imbalance: float

    @property
    def span(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "phase": self.phase,
            "t0": self.t0,
            "t1": self.t1,
            "span_s": self.span,
            "critical_rank": self.critical_rank,
            "busy_max_s": self.busy_max,
            "busy_avg_s": self.busy_avg,
            "wait_s": self.wait_total,
            "barrier_s": self.barrier_total,
            "imbalance": self.imbalance,
        }


@dataclass
class CriticalPathReport:
    """Result object of :func:`analyze_critical_path`."""

    nranks: int
    nsteps: int
    phase_order: tuple[str, ...]
    #: In-cycle chain links, ordered by (step, phase position).
    chain: list[PhaseChainLink] = field(default_factory=list)
    #: phase -> aggregate dict (summed over steps).
    phase_totals: dict[str, dict] = field(default_factory=dict)
    #: rank -> {compute_s, comm_s, wait_s, barrier_s}.
    rank_slack: dict[int, dict] = field(default_factory=dict)
    #: phase -> [(sender rank, blamed wait seconds)], top offenders.
    wait_blame: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    #: Off-cycle (recovery / default-phase) per-phase seconds.
    off_cycle: dict[str, float] = field(default_factory=dict)
    #: f(p) = I(p)/Ibar block when an IgbpRollup was supplied.
    igbp: dict | None = None

    @property
    def chain_seconds(self) -> float:
        """Sum of in-cycle phase spans — the barrier-separated critical
        path through the measured timesteps."""
        return sum(link.span for link in self.chain)

    def step_links(self, step: int) -> list[PhaseChainLink]:
        return [c for c in self.chain if c.step == step]

    # -- serialization --------------------------------------------------

    def to_dict(self, include_steps: bool = False) -> dict:
        out: dict[str, Any] = {
            "nranks": self.nranks,
            "nsteps": self.nsteps,
            "phase_order": list(self.phase_order),
            "chain_seconds": self.chain_seconds,
            "phases": self.phase_totals,
            "rank_slack": {
                str(r): v for r, v in sorted(self.rank_slack.items())
            },
            "wait_blame": {
                p: [[r, s] for r, s in blames]
                for p, blames in self.wait_blame.items()
            },
            "off_cycle": dict(self.off_cycle),
        }
        if self.igbp is not None:
            out["igbp"] = self.igbp
        if include_steps:
            out["steps"] = [c.to_dict() for c in self.chain]
        return out

    # -- presentation ---------------------------------------------------

    def format(self) -> str:
        lines = [
            f"critical path: {self.nsteps} step(s), {self.nranks} rank(s), "
            f"chain {self.chain_seconds:.5f} s"
        ]
        hdr = (
            f"  {'phase':>10s} {'span s':>10s} {'busy max':>10s} "
            f"{'busy avg':>10s} {'wait s':>10s} {'barrier s':>10s} "
            f"{'imbal':>7s} {'crit ranks':>12s}"
        )
        lines.append(hdr)
        for phase in self.phase_order:
            tot = self.phase_totals.get(phase)
            if tot is None:
                continue
            lines.append(
                f"  {phase:>10s} {tot['span_s']:>10.5f} "
                f"{tot['busy_max_s']:>10.5f} {tot['busy_avg_s']:>10.5f} "
                f"{tot['wait_s']:>10.5f} {tot['barrier_s']:>10.5f} "
                f"{tot['imbalance']:>7.3f} "
                f"{str(tot['critical_ranks'])[:12]:>12s}"
            )
        for phase, blames in self.wait_blame.items():
            if blames:
                top = ", ".join(f"rank {r}: {s:.5f}s" for r, s in blames[:3])
                lines.append(f"  wait blame [{phase}]: {top}")
        if self.off_cycle:
            oc = ", ".join(
                f"{p}={s:.5f}s" for p, s in sorted(self.off_cycle.items())
            )
            lines.append(f"  off-cycle: {oc}")
        if self.igbp is not None:
            lines.append(
                f"  IGBP imbalance: Ibar={self.igbp['ibar']:.2f}, "
                f"max f(p)={self.igbp['f_max']:.3f}"
            )
        return "\n".join(lines)


def _step_segments(
    tracer: Any, phase_order: tuple[str, ...]
) -> dict[int, list[tuple[float, int, str]]]:
    """Per-rank step boundaries from the phase-mark stream.

    Returns ``{rank: [(t, step, phase), ...]}`` in time order, where
    ``step`` is the 0-based timestep the segment belongs to (OFF_CYCLE
    for pre-cycle or out-of-cycle phases).
    """
    cycle = set(phase_order)
    first = phase_order[0]
    segs: dict[int, list[tuple[float, int, str]]] = {}
    counters: dict[int, int] = {}
    for rank, t, name in tracer.phase_marks:
        lst = segs.setdefault(rank, [])
        if name == first:
            counters[rank] = counters.get(rank, -1) + 1
        step = counters.get(rank, OFF_CYCLE) if name in cycle else OFF_CYCLE
        lst.append((t, step, name))
    return segs


def analyze_critical_path(
    tracer: Any,
    igbp: Any | None = None,
    phase_order: tuple[str, ...] = DEFAULT_PHASE_ORDER,
    blame_top_k: int = 5,
) -> CriticalPathReport:
    """Walk one :class:`SpanTracer` into a :class:`CriticalPathReport`.

    Parameters
    ----------
    tracer:
        The recorded trace (op spans + phase marks + send/recv events).
    igbp:
        Optional :class:`repro.obs.rollup.IgbpRollup`; its f(p) series
        is embedded in the report (the paper's Algorithm-2 input).
    phase_order:
        The per-step phase cycle; entries into ``phase_order[0]`` start
        a new step on that rank.
    blame_top_k:
        How many sender ranks to keep per phase in the wait-blame list.
    """
    nranks = tracer.nranks
    segs = _step_segments(tracer, phase_order)

    # Attribute each op span to (step, phase, rank).
    cells: dict[tuple[int, str, int], _Cell] = {}
    off_cycle: dict[str, float] = {}
    pointers = {rank: 0 for rank in segs}
    cur: dict[int, tuple[int, str]] = {}  # rank -> (step, phase)
    for rank, phase, kind, t0, t1, _flops, _nbytes in tracer.ops:
        marks = segs.get(rank, [])
        i = pointers.get(rank, 0)
        while i < len(marks) and marks[i][0] <= t0:
            cur[rank] = (marks[i][1], marks[i][2])
            i += 1
        pointers[rank] = i
        step, seg_phase = cur.get(rank, (OFF_CYCLE, "default"))
        # Trust the op's own phase label; use the segment only for the
        # step index (the label is what the scheduler charged).
        if step == OFF_CYCLE or phase != seg_phase:
            if phase not in set(phase_order):
                off_cycle[phase] = off_cycle.get(phase, 0.0) + (t1 - t0)
                continue
            if step == OFF_CYCLE:
                off_cycle[phase] = off_cycle.get(phase, 0.0) + (t1 - t0)
                continue
        cell = cells.get((step, phase, rank))
        if cell is None:
            cell = cells[(step, phase, rank)] = _Cell()
        if kind == "compute":
            cell.compute += t1 - t0
        elif kind == "comm":
            cell.comm += t1 - t0
        else:
            cell.wait += t1 - t0
        cell.t0 = min(cell.t0, t0)
        cell.t1 = max(cell.t1, t1)

    steps = sorted({s for (s, _p, _r) in cells if s != OFF_CYCLE})
    pos = {p: i for i, p in enumerate(phase_order)}

    # Wait blame: map recv events (t, rank, src, ...) onto the senders
    # whose messages ended recorded wait spans.  A blocking receive's
    # wait span ends exactly at the recv event's timestamp on the same
    # rank (same float: both are the post-wake clock).
    recv_src: dict[tuple[int, float], list[int]] = {}
    for t, rank, src, _tag, _nbytes, _phase in tracer.recvs:
        recv_src.setdefault((rank, t), []).append(src)
    blame: dict[str, dict[int, float]] = {}
    for rank, phase, kind, t0, t1, _f, _b in tracer.ops:
        if kind != "wait" or t1 <= t0:
            continue
        srcs = recv_src.get((rank, t1))
        if srcs:
            src = srcs[0]
            blame.setdefault(phase, {})[src] = (
                blame.setdefault(phase, {}).get(src, 0.0) + (t1 - t0)
            )

    # Assemble the chain and aggregates.
    chain: list[PhaseChainLink] = []
    phase_totals: dict[str, dict] = {}
    rank_slack: dict[int, dict] = {
        r: {"compute_s": 0.0, "comm_s": 0.0, "wait_s": 0.0, "barrier_s": 0.0}
        for r in range(nranks)
    }
    for step in steps:
        for phase in phase_order:
            ranks = [
                r for r in range(nranks) if (step, phase, r) in cells
            ]
            if not ranks:
                continue
            cs = {r: cells[(step, phase, r)] for r in ranks}
            t0 = min(c.t0 for c in cs.values())
            t1 = max(c.t1 for c in cs.values())
            # Critical rank: last finisher; ties to the lowest rank id.
            critical = min(r for r in ranks if cs[r].t1 == t1)
            busy = np.array([cs[r].busy for r in ranks])
            busy_max = float(busy.max())
            busy_avg = float(busy.mean())
            wait_total = float(sum(c.wait for c in cs.values()))
            # Barrier slack: the span time each participating rank was
            # neither computing, communicating nor in a recorded wait.
            span = t1 - t0
            barrier_total = float(
                sum(max(0.0, span - cs[r].total) for r in ranks)
            )
            chain.append(
                PhaseChainLink(
                    step=step,
                    phase=phase,
                    t0=t0,
                    t1=t1,
                    critical_rank=critical,
                    busy_max=busy_max,
                    busy_avg=busy_avg,
                    wait_total=wait_total,
                    barrier_total=barrier_total,
                    imbalance=(busy_max / busy_avg) if busy_avg else 1.0,
                )
            )
            for r in ranks:
                s = rank_slack[r]
                s["compute_s"] += cs[r].compute
                s["comm_s"] += cs[r].comm
                s["wait_s"] += cs[r].wait
                s["barrier_s"] += max(0.0, span - cs[r].total)
    chain.sort(key=lambda c: (c.step, pos.get(c.phase, len(pos))))

    for phase in phase_order:
        links = [c for c in chain if c.phase == phase]
        if not links:
            continue
        busy_max = sum(c.busy_max for c in links)
        busy_avg = sum(c.busy_avg for c in links)
        crit_counts: dict[int, int] = {}
        for c in links:
            crit_counts[c.critical_rank] = crit_counts.get(c.critical_rank, 0) + 1
        critical_ranks = sorted(
            crit_counts, key=lambda r: (-crit_counts[r], r)
        )[:3]
        phase_totals[phase] = {
            "span_s": sum(c.span for c in links),
            "busy_max_s": busy_max,
            "busy_avg_s": busy_avg,
            "wait_s": sum(c.wait_total for c in links),
            "barrier_s": sum(c.barrier_total for c in links),
            "imbalance": (busy_max / busy_avg) if busy_avg else 1.0,
            "critical_ranks": critical_ranks,
        }

    wait_blame = {
        phase: sorted(
            ((r, s) for r, s in by_src.items()),
            key=lambda rs: (-rs[1], rs[0]),
        )[:blame_top_k]
        for phase, by_src in sorted(blame.items())
    }

    igbp_block = None
    if igbp is not None:
        summ = igbp.summary()
        igbp_block = {
            "I": summ["I"],
            "ibar": summ["ibar"],
            "f": [float(v) for v in igbp.f()],
            "f_max": summ["f_max"],
            "nsteps": summ["nsteps"],
        }

    return CriticalPathReport(
        nranks=nranks,
        nsteps=len(steps),
        phase_order=tuple(phase_order),
        chain=chain,
        phase_totals=phase_totals,
        rank_slack=rank_slack,
        wait_blame=wait_blame,
        off_cycle=off_cycle,
        igbp=igbp_block,
    )
