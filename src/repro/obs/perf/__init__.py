"""Performance observatory: trace analytics over recorded runs.

The paper's core evidence is performance accounting — per-phase
timings, flow vs. connectivity imbalance, and the received-IGBP
distribution f(p) = I(p)/Ibar that drives Algorithm 2.  This
subpackage turns the raw event streams of
:class:`repro.obs.tracer.SpanTracer` into that evidence:

* :mod:`critical_path` — per-timestep longest chain through the
  flow-solve / motion / connectivity phases, with per-rank slack
  attributed to compute vs. comm vs. barrier-wait and the Table-style
  imbalance breakdown (:class:`CriticalPathReport`);
* :mod:`comm_matrix` — ranks x ranks bytes/messages per phase with
  hot-edge top-k (:class:`CommMatrix`);
* :mod:`bench` — the ``repro bench`` harness: runs the table cases
  through the analyzers and emits schema-versioned, canonical-JSON
  ``BENCH_<case>.json`` payloads, including a hook-overhead
  micro-benchmark for the scheduler's batched sanitizer hooks;
* :mod:`diff` — ``repro trace-diff``: classifies per-phase/per-metric
  deltas between two BENCH payloads with a tolerance, for the CI
  perf-regression gate;
* :mod:`trends` — per-step series from the segment-store index
  (phase seconds, busy/wait, f(p) imbalance) as ASCII charts, CSV,
  and the deterministic ``trend`` block of a BENCH payload.

See ``docs/observability.md`` for the BENCH JSON schema.
"""

from repro.obs.perf.comm_matrix import CommMatrix
from repro.obs.perf.critical_path import CriticalPathReport, analyze_critical_path
from repro.obs.perf.bench import (
    BENCH_SCHEMA,
    BENCH_CASES,
    bench_payload,
    canonical_json,
    hook_overhead_microbench,
    run_bench,
    scenario_bench_payload,
    write_bench,
)
from repro.obs.perf.diff import DiffReport, diff_bench, diff_files
from repro.obs.perf.trends import (
    step_series,
    trend_block,
    trend_chart,
    trend_csv,
    write_trend_csv,
)

__all__ = [
    "CommMatrix",
    "CriticalPathReport",
    "analyze_critical_path",
    "BENCH_SCHEMA",
    "BENCH_CASES",
    "bench_payload",
    "canonical_json",
    "hook_overhead_microbench",
    "run_bench",
    "scenario_bench_payload",
    "write_bench",
    "DiffReport",
    "diff_bench",
    "diff_files",
    "step_series",
    "trend_block",
    "trend_chart",
    "trend_csv",
    "write_trend_csv",
]
