"""Trace/bench diff: classify deltas between two BENCH payloads.

``repro trace-diff A.json B.json`` compares the *deterministic*
``simulated`` section of two ``BENCH_<case>.json`` payloads (the
``host`` section carries wall-clock noise and is ignored), classifying
every leaf delta as ``regression`` / ``improvement`` / ``unchanged``
(within tolerance) or ``added`` / ``removed``.  Two payloads from
identical runs produce zero deltas — the canonical-JSON emitter plus
the simulator's bit-determinism guarantee it — so any nonzero delta is
a real behavioural change, and the CI perf gate fails on regressions
beyond tolerance.

Direction: for most metrics smaller is better (elapsed seconds, wait
time, imbalance factors, traffic); metric names ending in one of
``_HIGHER_IS_BETTER`` invert the sign (throughput-style numbers).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["DiffReport", "MetricDelta", "diff_bench", "diff_files"]

#: Leaf-name suffixes where a larger value is an improvement.
_HIGHER_IS_BETTER = ("mflops_per_node", "speedup", "hook_speedup")

#: Leaf-name fragments that are counts/ids, not performance metrics:
#: any change is reported as ``changed`` (a regression for gating —
#: the two runs did different work).
_STRUCTURAL = ("nranks", "nsteps", "critical_rank", "schema")


@dataclass
class MetricDelta:
    """One classified leaf difference."""

    path: str
    kind: str  # regression | improvement | unchanged | changed | added | removed
    a: Any = None
    b: Any = None
    rel: float | None = None  # signed relative delta (b-a)/|a|

    def format(self) -> str:
        if self.kind in ("added", "removed"):
            v = self.b if self.kind == "added" else self.a
            return f"  [{self.kind:>11s}] {self.path} = {v!r}"
        if self.rel is None:
            return f"  [{self.kind:>11s}] {self.path}: {self.a!r} -> {self.b!r}"
        return (
            f"  [{self.kind:>11s}] {self.path}: {self.a:.6g} -> {self.b:.6g} "
            f"({self.rel:+.2%})"
        )


@dataclass
class DiffReport:
    """All classified deltas between two payloads."""

    case_a: str
    case_b: str
    tolerance: float
    deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.kind in ("regression", "changed")]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.kind == "improvement"]

    @property
    def changed(self) -> list[MetricDelta]:
        """Every non-``unchanged`` delta (deterministic path order)."""
        return [d for d in self.deltas if d.kind != "unchanged"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.deltas:
            out[d.kind] = out.get(d.kind, 0) + 1
        return dict(sorted(out.items()))

    def format(self, show_unchanged: bool = False) -> str:
        verdict = "OK" if self.ok else "REGRESSION"
        lines = [
            f"trace-diff: {verdict}  ({self.case_a} vs {self.case_b}, "
            f"tolerance {self.tolerance:.1%})"
        ]
        counts = self.counts()
        lines.append(
            "  "
            + ", ".join(f"{k}: {v}" for k, v in counts.items())
            if counts
            else "  no comparable metrics"
        )
        for d in self.deltas:
            if d.kind == "unchanged" and not show_unchanged:
                continue
            lines.append(d.format())
        if not self.changed:
            lines.append("  zero deltas: payloads are equivalent")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "counts": self.counts(),
            "deltas": [
                {
                    "path": d.path,
                    "kind": d.kind,
                    "a": d.a,
                    "b": d.b,
                    "rel": d.rel,
                }
                for d in self.deltas
                if d.kind != "unchanged"
            ],
        }


def _flatten(value: Any, prefix: str, out: dict[str, Any]) -> None:
    if isinstance(value, dict):
        for k in sorted(value):
            _flatten(value[k], f"{prefix}.{k}" if prefix else str(k), out)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            _flatten(v, f"{prefix}[{i}]", out)
    else:
        out[prefix] = value


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _leaf_name(path: str) -> str:
    tail = path.rsplit(".", 1)[-1]
    return tail.split("[", 1)[0]


def _classify(path: str, a: Any, b: Any, tolerance: float) -> MetricDelta:
    name = _leaf_name(path)
    if not (_is_number(a) and _is_number(b)):
        kind = "unchanged" if a == b else "changed"
        return MetricDelta(path=path, kind=kind, a=a, b=b)
    if a == b:
        return MetricDelta(path=path, kind="unchanged", a=a, b=b, rel=0.0)
    denom = max(abs(a), 1e-300)
    rel = (b - a) / denom
    if name in _STRUCTURAL or any(s in name for s in _STRUCTURAL):
        return MetricDelta(path=path, kind="changed", a=a, b=b, rel=rel)
    if abs(rel) <= tolerance:
        return MetricDelta(path=path, kind="unchanged", a=a, b=b, rel=rel)
    higher_better = name.endswith(_HIGHER_IS_BETTER)
    worse = rel < 0 if higher_better else rel > 0
    return MetricDelta(
        path=path,
        kind="regression" if worse else "improvement",
        a=a,
        b=b,
        rel=rel,
    )


def diff_bench(
    a: dict, b: dict, tolerance: float = 0.02
) -> DiffReport:
    """Compare two BENCH payload dicts; see the module docstring."""
    schema_a, schema_b = a.get("schema"), b.get("schema")
    if schema_a != schema_b:
        raise ValueError(
            f"schema mismatch: {schema_a!r} vs {schema_b!r}; "
            "regenerate the older payload"
        )
    report = DiffReport(
        case_a=str(a.get("case", "?")),
        case_b=str(b.get("case", "?")),
        tolerance=tolerance,
    )
    flat_a: dict[str, Any] = {}
    flat_b: dict[str, Any] = {}
    _flatten(a.get("simulated", {}), "simulated", flat_a)
    _flatten(b.get("simulated", {}), "simulated", flat_b)
    # Config identity is part of the comparison: differing shas mean
    # the runs measured different work (reported, never "unchanged").
    flat_a["config_sha"] = a.get("config_sha")
    flat_b["config_sha"] = b.get("config_sha")

    for path in sorted(set(flat_a) | set(flat_b)):
        if path not in flat_b:
            report.deltas.append(
                MetricDelta(path=path, kind="removed", a=flat_a[path])
            )
        elif path not in flat_a:
            report.deltas.append(
                MetricDelta(path=path, kind="added", b=flat_b[path])
            )
        else:
            report.deltas.append(
                _classify(path, flat_a[path], flat_b[path], tolerance)
            )
    return report


def diff_files(
    path_a: str | Path, path_b: str | Path, tolerance: float = 0.02
) -> DiffReport:
    """Load two ``BENCH_*.json`` files and diff them."""
    with open(path_a) as fa:
        a = json.load(fa)
    with open(path_b) as fb:
        b = json.load(fb)
    return diff_bench(a, b, tolerance=tolerance)
