"""``repro bench``: canonical, schema-versioned benchmark payloads.

Runs the table-reproduction scenarios (the same cases
``benchmarks/test_table*`` sweep) through the full observability stack
— span tracer, sanitizer, critical-path analyzer, comm matrix — and
emits one ``BENCH_<case>.json`` per case:

* the ``simulated`` section is **deterministic**: virtual elapsed time,
  per-phase breakdown, imbalance metrics (including the paper's
  f(p) = I(p)/Ibar), critical-path chain, comm-matrix totals and the
  sanitizer verdict.  Two runs of the same case on the same code emit
  byte-identical canonical JSON for this section — that is what
  ``repro trace-diff`` and the CI perf gate compare.
* the ``host`` section is **nondeterministic**: wall-clock medians and
  the sanitizer hook-overhead micro-benchmark (eager per-send hooks
  vs. the scheduler's batched counters).  trace-diff ignores it.
  With ``backend="mp"`` it additionally gains a ``measured`` block:
  the same Table-1/3/4-shape numbers (time/step, Mflops/node, %DCF3D)
  re-measured on real ``multiprocessing`` ranks with wall clocks —
  printed next to the modeled ones, never compared by the CI gate.

Canonical JSON: ``sort_keys=True``, ``separators=(",", ":")``, one
trailing newline, ``allow_nan=False`` (non-finite values are stringed),
so byte equality == semantic equality.
"""

from __future__ import annotations

import hashlib
import json
import math
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_CASES",
    "BenchSpec",
    "bench_payload",
    "canonical_json",
    "config_sha",
    "hook_overhead_microbench",
    "run_bench",
    "write_bench",
]

#: Version tag of the BENCH payload layout.  Bump on breaking changes;
#: ``trace-diff`` refuses to compare payloads across schema versions.
#: v2: the final repeat runs through the streaming segment store and
#: the ``simulated`` section gains a per-step ``trend`` block.
BENCH_SCHEMA = "repro-bench/2"


@dataclass(frozen=True)
class BenchSpec:
    """One benchmark scenario (full and ``--quick`` knobs)."""

    case: str
    machine: str
    nodes: int
    scale: float
    nsteps: int
    f0: float = math.inf
    quick_nodes: int = 6
    quick_scale: float = 0.1
    quick_nsteps: int = 3

    def knobs(self, quick: bool) -> dict[str, Any]:
        if quick:
            return {
                "nodes": self.quick_nodes,
                "scale": self.quick_scale,
                "nsteps": self.quick_nsteps,
            }
        return {"nodes": self.nodes, "scale": self.scale, "nsteps": self.nsteps}


#: The bench trajectory: one spec per paper table case (single node
#: count per case — the full sweeps stay in ``benchmarks/``).
BENCH_CASES: dict[str, BenchSpec] = {
    "airfoil": BenchSpec(
        "airfoil", "sp2", nodes=12, scale=1.0, nsteps=5,
        quick_nodes=8, quick_scale=0.25, quick_nsteps=3,
    ),
    "x38": BenchSpec(
        "x38", "sp2", nodes=8, scale=0.25, nsteps=4,
        quick_nodes=6, quick_scale=0.1, quick_nsteps=3,
    ),
    "deltawing": BenchSpec(
        "deltawing", "sp2", nodes=12, scale=0.15, nsteps=4,
        quick_nodes=8, quick_scale=0.05, quick_nsteps=3,
    ),
    # store keeps 16 nodes even in quick mode: the ejecting-store system
    # has 16 grids and the static partitioner needs >= 1 node per grid.
    "store": BenchSpec(
        "store", "sp2", nodes=16, scale=0.15, nsteps=5, f0=2.0,
        quick_nodes=16, quick_scale=0.05, quick_nsteps=3,
    ),
}


# ----------------------------------------------------------------------
# canonical JSON


def _jsonable(value: Any) -> Any:
    """Recursively coerce to canonical-JSON-safe types.

    numpy scalars become python numbers; non-finite floats become
    strings (``"inf"`` / ``"-inf"`` / ``"nan"``) so ``allow_nan=False``
    holds; tuples become lists."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bool):
        return value
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # "inf" / "-inf" / "nan"
    return value


def canonical_json(payload: dict) -> str:
    """Byte-stable serialisation: equal payloads -> equal bytes."""
    return (
        json.dumps(
            _jsonable(payload),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
        + "\n"
    )


def config_sha(config: dict) -> str:
    """sha256 of the canonical config dict."""
    return hashlib.sha256(canonical_json(config).encode()).hexdigest()


# ----------------------------------------------------------------------
# hook-overhead micro-benchmark

#: Message tag used by the micro-benchmark's ring exchange.
TAG_STORM = 7


def _storm_program(comm, messages: int, nbytes: int):
    """Message-heavy ring exchange: every rank sends ``messages``
    point-to-point messages, then receives as many (explicit source —
    wildcard-free, so the sanitizer stays clean)."""
    yield from comm.set_phase("storm")
    dst = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    for _ in range(messages):
        yield from comm.send(dst, TAG_STORM, None, nbytes=nbytes)
    for _ in range(messages):
        yield from comm.recv(src, TAG_STORM)
    return messages


def _run_storm(
    machine: Any, nranks: int, messages: int, nbytes: int,
    sanitizer: Any, eager_hooks: bool,
) -> Any:
    from repro.machine.scheduler import Simulator

    sim = Simulator(machine, sanitizer=sanitizer, eager_hooks=eager_hooks)
    for _ in range(nranks):
        sim.spawn(_storm_program, messages, nbytes)
    return sim.run()


def _time_loop(fn: Callable[[int], None], n: int, rounds: int) -> float:
    """Best-of-``rounds`` seconds for ``fn(n)`` (one untimed warm-up)."""
    fn(n)
    best = math.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn(n)
        best = min(best, time.perf_counter() - t0)
    return best


def hook_overhead_microbench(
    nranks: int = 8,
    messages: int = 400,
    nbytes: int = 64,
    rounds: int = 5,
    direct_calls: int = 50_000,
) -> dict[str, Any]:
    """Quantify the per-send cost of the sanitizer hooks, two ways.

    **Deterministic part** — runs the same message-heavy ring exchange
    under an eager-hook sanitizer (one Python ``on_send``/``on_recv``
    call per message, the pre-batching behaviour) and under the
    scheduler's default batched counters, and reports the *hook call
    counts* each mode executed.  Batching's win is structural: eager
    mode makes O(messages) Python calls, batched mode one full call
    per distinct (tag, phase) key plus one ``add_batched_counts``
    flush.  Both runs are also checked bit-equal in simulated time and
    message totals, so the reduction is provably lossless.

    **Timing part** — end-to-end wall time cannot resolve a few
    hundred ns/send against the simulator's ~10 us/send dispatch
    baseline on a noisy host, so the two hot-path variants are timed
    directly: the full ``Sanitizer.on_send`` call (what eager mode
    pays per message) vs. the seen-set membership test plus counter
    increment (what batched mode pays).  Best-of-``rounds`` over
    ``direct_calls`` iterations each.
    """
    from repro.analysis import Sanitizer
    from repro.machine import sp2

    machine = sp2(nodes=nranks)
    total_sends = nranks * messages

    plain_res = _run_storm(machine, nranks, messages, nbytes, None, False)
    eager_san = Sanitizer()
    eager_res = _run_storm(machine, nranks, messages, nbytes, eager_san, True)
    batched_san = Sanitizer()
    batched_res = _run_storm(
        machine, nranks, messages, nbytes, batched_san, False
    )

    elapsed = {plain_res.elapsed, eager_res.elapsed, batched_res.elapsed}
    if len(elapsed) != 1:  # pragma: no cover - determinism guard
        raise RuntimeError(
            f"sanitizer hooks perturbed virtual time: {sorted(elapsed)}"
        )
    if (
        eager_san.messages_sent != batched_san.messages_sent
        or eager_san.messages_received != batched_san.messages_received
    ):  # pragma: no cover - determinism guard
        raise RuntimeError("batched hook counters diverge from eager mode")

    # Direct hot-path timing.  Eager per-send path: the full on_send.
    timing_san = Sanitizer()

    def eager_path(n: int, on_send=timing_san.on_send) -> None:
        for _ in range(n):
            on_send(0.0, 0, 1, TAG_STORM, nbytes, "storm", dropped=False)

    # Batched per-send path: what Simulator._inject does for a seen
    # (tag, phase) key — membership test + local counter increment.
    seen = {(TAG_STORM, "storm")}

    def batched_path(n: int) -> None:
        count = 0
        key = (TAG_STORM, "storm")
        for _ in range(n):
            if key in seen:
                count += 1

    eager_ns = _time_loop(eager_path, direct_calls, rounds) * 1e9 / direct_calls
    batched_ns = (
        _time_loop(batched_path, direct_calls, rounds) * 1e9 / direct_calls
    )

    return {
        "nranks": nranks,
        "messages_per_rank": messages,
        "total_sends": total_sends,
        # Deterministic, lossless-batching evidence:
        "eager_hook_calls": eager_san.hook_calls,
        "batched_hook_calls": batched_san.hook_calls,
        "hook_call_reduction": (
            eager_san.hook_calls / batched_san.hook_calls
            if batched_san.hook_calls
            else math.inf
        ),
        # Direct hot-path cost (host-dependent):
        "eager_ns_per_send": eager_ns,
        "batched_ns_per_send": batched_ns,
        "hook_speedup": eager_ns / batched_ns if batched_ns > 0 else math.inf,
    }


# ----------------------------------------------------------------------
# the bench harness


def _build_config(spec: BenchSpec, quick: bool) -> tuple[Any, dict[str, Any]]:
    from repro.cases import build_case
    from repro.machine import MACHINE_PRESETS

    knobs = spec.knobs(quick)
    machine = MACHINE_PRESETS[spec.machine](nodes=knobs["nodes"])
    cfg = build_case(
        spec.case,
        machine=machine,
        scale=knobs["scale"],
        nsteps=knobs["nsteps"],
        f0=spec.f0,
    )
    config_dict = {
        "case": spec.case,
        "machine": spec.machine,
        "nodes": knobs["nodes"],
        "scale": knobs["scale"],
        "nsteps": knobs["nsteps"],
        "f0": spec.f0,
        "total_gridpoints": cfg.total_gridpoints,
        "ngrids": len(cfg.grids),
    }
    return cfg, config_dict


def bench_payload(
    case: str,
    quick: bool = False,
    repeats: int = 3,
    microbench: bool = True,
    backend: str = "sim",
    trace_store: str | Path | None = None,
) -> dict:
    """Run one bench case; returns the full BENCH payload dict.

    ``repeats`` runs measure wall time (median reported); every repeat
    must produce the identical simulated elapsed time or a
    ``RuntimeError`` flags the determinism violation.  The final repeat
    streams its events through the segment store
    (:mod:`repro.obs.store`) — to ``trace_store`` if given, else a
    temporary directory — and the analytics (critical path, comm
    matrix, per-step ``trend`` block) come from the store-reconstructed
    view, which is byte-identical to the in-memory tracer by
    construction.

    ``backend`` selects an *additional* measured pass: the canonical
    ``simulated`` section always comes from the ``sim`` backend (it is
    what the CI perf gate compares), but ``backend="mp"`` re-runs the
    case on real multiprocessing ranks and lands measured time/step,
    Mflops/node and %DCF3D under ``host["measured"]`` — including an
    ``igbp_matches_simulated`` physics cross-check.
    """
    import tempfile

    from repro.analysis import Sanitizer
    from repro.core import OverflowD1
    from repro.obs import SpanTracer
    from repro.obs.perf.comm_matrix import CommMatrix
    from repro.obs.perf.critical_path import analyze_critical_path
    from repro.obs.perf.trends import trend_block
    from repro.obs.store import StoreReader, StoreTracer

    try:
        spec = BENCH_CASES[case]
    except KeyError:
        raise ValueError(
            f"unknown bench case {case!r}; choose from {sorted(BENCH_CASES)}"
        )
    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    walls: list[float] = []
    elapsed_seen: set[float] = set()
    sanitizer = run = None
    config_dict: dict[str, Any] = {}
    tmp_store = None
    if trace_store is None:
        tmp_store = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        store_dir = Path(tmp_store.name)
    else:
        store_dir = Path(trace_store)
    try:
        for i in range(repeats):
            cfg, config_dict = _build_config(spec, quick)
            final = i == repeats - 1
            tracer: Any = (
                StoreTracer(
                    store_dir,
                    meta={"case": case, "component": "bench"},
                    fresh=True,
                )
                if final
                else SpanTracer()
            )
            sanitizer = Sanitizer(tracer=tracer)
            t0 = time.perf_counter()
            run = OverflowD1(cfg, tracer=tracer, sanitizer=sanitizer).run()
            walls.append(time.perf_counter() - t0)
            elapsed_seen.add(run.elapsed)
            if final:
                tracer.close()
        # repeats >= 1 was validated above, so the loop body ran.
        assert sanitizer is not None and run is not None
        if len(elapsed_seen) != 1:  # pragma: no cover - determinism guard
            raise RuntimeError(
                f"simulated elapsed time varied across repeats: "
                f"{sorted(elapsed_seen)}"
            )
        reader = StoreReader(store_dir)
        tracer = reader.to_tracer()
        trend = trend_block(reader.steps)
    finally:
        if tmp_store is not None:
            tmp_store.cleanup()

    rollup = run.rollup()
    igbp = run.igbp_rollup()
    cp = analyze_critical_path(tracer, igbp=igbp)
    comm = CommMatrix.from_tracer(tracer, nranks=rollup.nranks)
    san_report = sanitizer.report()

    simulated = {
        "elapsed_s": run.elapsed,
        "time_per_step_s": run.time_per_step,
        "mflops_per_node": run.mflops_per_node,
        "pct_dcf3d": run.pct_dcf3d,
        "nsteps": run.nsteps,
        "nranks": run.nprocs,
        "phases": rollup.breakdown(),
        "imbalance": {
            "I": [int(v) for v in igbp.accumulated()],
            "ibar": igbp.ibar(),
            "f": [float(v) for v in igbp.f()],
            "f_max": float(igbp.f().max()) if igbp.nranks else 0.0,
        },
        "critical_path": cp.to_dict(),
        "comm": comm.to_dict(top_k=5),
        "trend": trend,
        "sanitizer": {
            "ok": san_report.ok,
            "counts": san_report.counts(),
            "messages_sent": san_report.messages_sent,
            "messages_received": san_report.messages_received,
            "wildcard_recvs": san_report.wildcard_recvs,
            "collectives": san_report.collectives,
        },
        "partition_history": [
            [step, list(procs)] for step, procs in run.partition_history
        ],
    }
    host: dict[str, Any] = {
        "repeats": repeats,
        "wall_s_median": statistics.median(walls),
        "wall_s_all": walls,
    }
    if microbench:
        host["hook_microbench"] = hook_overhead_microbench()
        # End-to-end job throughput against a warm `repro serve` pool —
        # host data (wall clock), so the trace-diff gate ignores it.
        from repro.serve.pool import throughput_microbench

        serve = throughput_microbench()
        host["serve_microbench"] = serve
        if "jobs_per_sec" in serve:
            host["jobs_per_sec"] = serve["jobs_per_sec"]
    if backend not in (None, "sim"):
        host["measured"] = _measured_section(
            spec, quick, repeats, backend,
            sim_igbp=[int(v) for v in igbp.accumulated()],
        )

    return {
        "schema": BENCH_SCHEMA,
        "case": case,
        "quick": quick,
        "config": config_dict,
        "config_sha": config_sha(config_dict),
        "simulated": simulated,
        "host": host,
    }


def _measured_section(
    spec: BenchSpec,
    quick: bool,
    repeats: int,
    backend: str,
    sim_igbp: list[int],
) -> dict:
    """Re-run the case on a measured backend; host-section numbers.

    Wall elapsed varies run to run (median over ``repeats``); the
    physics must not — ``igbp_matches_simulated`` records whether the
    measured run reproduced the simulated run's accumulated per-rank
    IGBP counts exactly.
    """
    from repro.backend import get_backend
    from repro.core import OverflowD1

    engine = get_backend(backend)
    elapsed_all: list[float] = []
    wall_all: list[float] = []
    mrun = None
    try:
        # Repeats share one engine: the cluster backend's node pool
        # stays warm across them (and is shut down on the way out).
        for _ in range(repeats):
            cfg, _ = _build_config(spec, quick)
            t0 = time.perf_counter()
            mrun = OverflowD1(cfg, backend=engine).run()
            wall_all.append(time.perf_counter() - t0)
            elapsed_all.append(mrun.elapsed)
    finally:
        engine.close()
    assert mrun is not None  # repeats >= 1 (validated by the caller)
    measured_igbp = [int(v) for v in mrun.igbp_rollup().accumulated()]
    return {
        "backend": engine.name,
        "repeats": repeats,
        # Table-1/3/4-shape numbers, measured (last repeat's run):
        "elapsed_s_median": statistics.median(elapsed_all),
        "elapsed_s_all": elapsed_all,
        "time_per_step_s": mrun.time_per_step,
        "mflops_per_node": mrun.mflops_per_node,
        "pct_dcf3d": mrun.pct_dcf3d,
        "wall_s_all": wall_all,
        # Physics cross-check against the canonical simulated pass:
        "igbp_matches_simulated": measured_igbp == sim_igbp,
    }


def scenario_bench_payload(
    scenario: dict[str, Any],
    repeats: int = 1,
    backend: str = "sim",
    grouping: str | None = None,
) -> dict[str, Any]:
    """BENCH-style payload for a generated off-body scenario.

    Mirrors :func:`bench_payload`'s ``simulated`` section (phases,
    imbalance, critical path, comm matrix, sanitizer) so the existing
    ``trace-diff`` classifier applies, and adds an ``offbody`` block
    with per-epoch patch/grouping statistics.  The scenario payload
    itself is the config — its sha keys the result.  A non-``sim``
    ``backend`` adds a measured pass under ``host["measured"]`` with a
    byte-level physics cross-check against the simulated run.
    """
    from repro.analysis import Sanitizer
    from repro.obs import SpanTracer
    from repro.obs.perf.comm_matrix import CommMatrix
    from repro.obs.perf.critical_path import analyze_critical_path
    from repro.offbody import OffBodyDriver, build_offbody_case

    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    walls: list[float] = []
    elapsed_seen: set[float] = set()
    run = sanitizer = tracer = None
    for _ in range(repeats):
        case = build_offbody_case(scenario, grouping=grouping)
        tracer = SpanTracer()
        sanitizer = Sanitizer(tracer=tracer)
        t0 = time.perf_counter()
        run = OffBodyDriver(case, tracer=tracer, sanitizer=sanitizer).run()
        walls.append(time.perf_counter() - t0)
        elapsed_seen.add(run.elapsed)
    assert run is not None and sanitizer is not None and tracer is not None
    if len(elapsed_seen) != 1:  # pragma: no cover - determinism guard
        raise RuntimeError(
            f"simulated elapsed time varied across repeats: "
            f"{sorted(elapsed_seen)}"
        )

    rollup = run.rollup()
    igbp = run.igbp_rollup()
    cp = analyze_critical_path(tracer, igbp=igbp)
    comm = CommMatrix.from_tracer(tracer, nranks=rollup.nranks)
    san_report = sanitizer.report()
    signature = run.physics_signature()

    simulated = {
        "elapsed_s": run.elapsed,
        "time_per_step_s": run.time_per_step,
        "mflops_per_node": run.mflops_per_node,
        "pct_dcf3d": run.pct_dcf3d,
        "nsteps": run.nsteps,
        "nranks": run.nprocs,
        "phases": rollup.breakdown(),
        "imbalance": {
            "I": [int(v) for v in igbp.accumulated()],
            "ibar": igbp.ibar(),
            "f": [float(v) for v in igbp.f()],
            "f_max": float(igbp.f().max()) if igbp.nranks else 0.0,
        },
        "critical_path": cp.to_dict(),
        "comm": comm.to_dict(top_k=5),
        "trend": {},
        "sanitizer": {
            "ok": san_report.ok,
            "counts": san_report.counts(),
            "messages_sent": san_report.messages_sent,
            "messages_received": san_report.messages_received,
            "wildcard_recvs": san_report.wildcard_recvs,
            "collectives": san_report.collectives,
        },
        "partition_history": [
            [step, list(procs)] for step, procs in run.partition_history
        ],
        "offbody": {
            "grouping": run.epochs[0].strategy if run.epochs else None,
            "signature_sha": config_sha(signature),
            "epochs": [
                {
                    "first_step": e.first_step,
                    "npatches": e.npatches,
                    "created": e.created,
                    "destroyed": e.destroyed,
                    "cut_points": e.cut_points,
                    "cut_edges": e.cut_edges,
                    "intra_edges": e.intra_edges,
                    "balance_tau": e.balance_tau,
                }
                for e in run.epochs
            ],
        },
    }
    host: dict[str, Any] = {
        "repeats": repeats,
        "wall_s_median": statistics.median(walls),
        "wall_s_all": walls,
    }
    if backend not in (None, "sim"):
        case = build_offbody_case(scenario, grouping=grouping)
        t0 = time.perf_counter()
        mrun = OffBodyDriver(case, backend=backend).run()
        wall = time.perf_counter() - t0
        host["measured"] = {
            "backend": backend,
            "repeats": 1,
            "elapsed_s_median": mrun.elapsed,
            "elapsed_s_all": [mrun.elapsed],
            "time_per_step_s": mrun.time_per_step,
            "mflops_per_node": mrun.mflops_per_node,
            "pct_dcf3d": mrun.pct_dcf3d,
            "wall_s_all": [wall],
            "igbp_matches_simulated": canonical_json(
                mrun.physics_signature()
            ) == canonical_json(signature),
        }

    config = {"scenario": scenario, "grouping": grouping, "backend": backend}
    return {
        "schema": BENCH_SCHEMA,
        "case": scenario["name"],
        "quick": False,
        "config": config,
        "config_sha": config_sha(config),
        "simulated": simulated,
        "host": host,
    }


def write_bench(payload: dict, out_dir: str | Path) -> Path:
    """Write ``BENCH_<case>.json`` (canonical form) under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{payload['case']}.json"
    path.write_text(canonical_json(payload))
    return path


def run_bench(
    case: str,
    out_dir: str | Path,
    quick: bool = False,
    repeats: int = 3,
    microbench: bool = True,
    backend: str = "sim",
    trace_store: str | Path | None = None,
) -> tuple[dict, Path]:
    """Run one case and persist its payload; returns (payload, path)."""
    payload = bench_payload(
        case,
        quick=quick,
        repeats=repeats,
        microbench=microbench,
        backend=backend,
        trace_store=trace_store,
    )
    return payload, write_bench(payload, out_dir)
