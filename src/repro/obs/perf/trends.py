"""Per-step trend analytics from the segment-store index.

The paper's tables aggregate whole runs; its *dynamics* — connectivity
cost spiking as bodies cross grid boundaries, imbalance drifting until
Algorithm 2 repartitions — only show up step by step.  The segment
store's index (:mod:`repro.obs.store.writer`) already carries per-step
rollups of phase and kind time per rank; this module turns those into:

* :func:`step_series` — deterministic per-step series (phase seconds,
  busy/wait seconds, and the time-analogue of the paper's f(p)
  imbalance factor: max over ranks of busy time divided by the mean);
* :func:`trend_chart` — ASCII trend plots (phase seconds per step, and
  imbalance per step) via :func:`repro.core.ascii_plot.line_chart`;
* :func:`trend_csv` / :func:`write_trend_csv` — a flat CSV of the same
  series for external tooling;
* :func:`trend_block` — the compact deterministic summary embedded in
  ``repro bench``'s ``simulated`` section (and therefore compared by
  the ``trace-diff`` CI gate).

Everything here is computed from virtual-time rollups, so two runs of
the same configuration produce identical output byte for byte.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Any

__all__ = [
    "step_series",
    "trend_block",
    "trend_chart",
    "trend_csv",
    "write_trend_csv",
]

#: Op kinds counted as *busy* for the imbalance factor (``wait`` is the
#: complement: time blocked in a receive).
BUSY_KINDS = ("compute", "comm")


def step_series(steps: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate index step entries into per-step series.

    ``steps`` is the ``steps`` list of a store index (or
    :attr:`repro.obs.store.StoreReader.steps`).  Steps with no recorded
    ops (possible at a crash boundary) contribute zeros.
    """
    phases = sorted({p for s in steps for p in s.get("phase_time", {})})
    series: dict[str, Any] = {
        "steps": len(steps),
        "phases": phases,
        "phase_total_s": {p: [] for p in phases},
        "phase_max_s": {p: [] for p in phases},
        "busy_s": [],
        "wait_s": [],
        "imbalance": [],
        "span_s": [],
    }
    for entry in steps:
        phase_time = entry.get("phase_time", {})
        kind_time = entry.get("kind_time", {})
        for p in phases:
            per_rank = phase_time.get(p, {})
            series["phase_total_s"][p].append(sum(per_rank.values()))
            series["phase_max_s"][p].append(
                max(per_rank.values(), default=0.0)
            )
        busy_by_rank: dict[str, float] = {}
        for kind in BUSY_KINDS:
            for rank, sec in kind_time.get(kind, {}).items():
                busy_by_rank[rank] = busy_by_rank.get(rank, 0.0) + sec
        busy = sum(busy_by_rank.values())
        series["busy_s"].append(busy)
        series["wait_s"].append(sum(kind_time.get("wait", {}).values()))
        if busy_by_rank:
            mean = busy / len(busy_by_rank)
            series["imbalance"].append(
                max(busy_by_rank.values()) / mean if mean > 0 else 1.0
            )
        else:
            series["imbalance"].append(1.0)
        t0, t1 = entry.get("t0"), entry.get("t1")
        series["span_s"].append(
            (t1 - t0) if t0 is not None and t1 is not None else 0.0
        )
    return series


def trend_block(steps: list[dict[str, Any]]) -> dict[str, Any]:
    """The deterministic trend summary for a BENCH payload."""
    series = step_series(steps)
    return {
        "steps": series["steps"],
        "phase_total_s": series["phase_total_s"],
        "imbalance": series["imbalance"],
        "imbalance_max": max(series["imbalance"], default=1.0),
        "busy_s": series["busy_s"],
        "wait_s": series["wait_s"],
    }


def trend_chart(
    series: dict[str, Any], width: int = 64, height: int = 12
) -> str:
    """ASCII trend plots: per-phase seconds per step, then imbalance."""
    from repro.core.ascii_plot import line_chart

    nsteps = series["steps"]
    if nsteps == 0:
        return "(no steps recorded)"
    charts = []
    phase_pts = {
        p: [(float(i), v) for i, v in enumerate(series["phase_total_s"][p])]
        for p in series["phases"]
        if any(series["phase_total_s"][p])
    }
    if phase_pts:
        charts.append(
            line_chart(
                phase_pts,
                width=width,
                height=height,
                title="per-step phase time",
                xlabel="step",
                ylabel="seconds (all ranks)",
            )
        )
    charts.append(
        line_chart(
            {"f(p)": [(float(i), v) for i, v in enumerate(series["imbalance"])]},
            width=width,
            height=max(6, height // 2),
            title="per-step busy imbalance (max/mean)",
            xlabel="step",
            ylabel="imbalance factor",
        )
    )
    return "\n\n".join(charts)


def trend_csv(steps: list[dict[str, Any]]) -> str:
    """Flat CSV of the per-step series (one row per step)."""
    import csv

    series = step_series(steps)
    phases = series["phases"]
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        ["step", "span_s", "busy_s", "wait_s", "imbalance"]
        + [f"total_{p}_s" for p in phases]
        + [f"max_{p}_s" for p in phases]
    )
    for i in range(series["steps"]):
        writer.writerow(
            [
                i,
                f"{series['span_s'][i]:.9g}",
                f"{series['busy_s'][i]:.9g}",
                f"{series['wait_s'][i]:.9g}",
                f"{series['imbalance'][i]:.9g}",
            ]
            + [f"{series['phase_total_s'][p][i]:.9g}" for p in phases]
            + [f"{series['phase_max_s'][p][i]:.9g}" for p in phases]
        )
    return buf.getvalue()


def write_trend_csv(steps: list[dict[str, Any]], path: str | Path) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(trend_csv(steps), encoding="utf-8")
    return out
