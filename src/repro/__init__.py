"""repro — reproduction of Wissink & Meakin (SC 1997),
"On Parallel Implementations of Dynamic Overset Grid Methods".

Subpackages
-----------
machine
    Simulated MIMD distributed-memory machine + SimMPI message passing.
grids
    Structured curvilinear / Cartesian grid infrastructure.
partition
    Load balancing: static (Algorithm 1), dynamic (Algorithm 2),
    grouping for adaptive grids (Algorithm 3).
solver
    OVERFLOW-like structured-grid Navier-Stokes solver and its work model.
connectivity
    DCF3D-like overset domain connectivity: hole cutting, donor search,
    distributed asynchronous search protocol.
motion
    SIXDOF-like rigid-body dynamics and prescribed motions.
core
    OVERFLOW-D1 driver: per-timestep flow/move/connect loop with
    performance accounting.
adapt
    Adaptive Cartesian off-body grid scheme (paper section 5).
cases
    The paper's test problems: oscillating airfoil, descending delta
    wing, finned-store separation, X-38-like adaptive case.
"""

__version__ = "1.0.0"
