"""Refinement criteria for the adaptive off-body scheme.

Initially "the level of refinement is based on proximity to the
near-body curvilinear grids"; during the run the domain is
"repartitioned during adaption in response to body motion and estimates
of solution error" (paper section 5).  Both criteria are provided:

* :func:`proximity_flags` — flag bricks whose box intersects the
  (inflated) bounding box of any near-body grid;
* :func:`gradient_flags` — flag bricks whose sampled solution-gradient
  magnitude exceeds a threshold (a Richardson-style error surrogate).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.adapt.refine import Brick, BrickSystem
from repro.grids.bbox import AABB


def proximity_flags(
    system: BrickSystem,
    bricks: list[Brick],
    body_boxes: list[AABB],
    margin: float = 0.0,
) -> dict[Brick, bool]:
    """Flag bricks intersecting any near-body bounding box."""
    inflated = [b.inflated(margin) for b in body_boxes]
    out: dict[Brick, bool] = {}
    for brick in bricks:
        box = system.box(brick)
        out[brick] = any(box.intersects(b) for b in inflated)
    return out


def gradient_flags(
    system: BrickSystem,
    bricks: list[Brick],
    field: Callable[[np.ndarray], np.ndarray],
    threshold: float,
    samples_per_edge: int = 3,
) -> dict[Brick, bool]:
    """Flag bricks where the sampled field varies strongly.

    ``field`` maps points (n, ndim) to scalars (n,); the brick error
    indicator is the sample range divided by the brick edge — a cheap
    gradient magnitude surrogate that needs no stored solution.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    out: dict[Brick, bool] = {}
    for brick in bricks:
        box = system.box(brick)
        axes = [
            np.linspace(box.lo[d], box.hi[d], samples_per_edge)
            for d in range(box.ndim)
        ]
        mesh = np.meshgrid(*axes, indexing="ij")
        pts = np.stack([m.ravel() for m in mesh], axis=-1)
        vals = np.asarray(field(pts), dtype=float)
        edge = float(box.extent.max())
        indicator = (vals.max() - vals.min()) / max(edge, 1e-300)
        out[brick] = bool(indicator > threshold)
    return out
