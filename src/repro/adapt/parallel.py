"""Coarse-grain parallel driver for the adaptive Cartesian scheme.

Paper section 5: "The adaptive scheme is being implemented in parallel
through an entirely coarse-grain strategy...  A load balancing scheme
[Algorithm 3] gathers grids into groups and assigns each group to a
node in the parallel platform...  MPI subroutine calls are used to pass
overlapping grid information for grids which lie at the edge of the
group", and "the bulk of the connectivity solution can be performed at
very low cost because no donor searches are required".

Each simulated rank owns one Algorithm-3 group of bricks.  Per
timestep: flow arithmetic on the group's points, halo exchange for
every brick-overlap edge that crosses groups, then the O(1) Cartesian
connectivity.  Every ``adapt_interval`` steps the system adapts toward
the (moving) bodies and is regrouped; bricks that change owner are
redistributed as messages, and newly refined bricks pay a
coarse-to-fine interpolation cost — the adaption-step costs the paper
flags as one of "the two most challenging parts".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.adapt.manager import AdaptiveSystem
from repro.machine.scheduler import Simulator
from repro.machine.spec import MachineSpec
from repro.solver.workmodel import DEFAULT_WORK_MODEL, WorkModel

TAG_BRICK_HALO = 301

PHASE_FLOW = "flow"
PHASE_CONNECT = "connect"
PHASE_ADAPT = "adapt"


@dataclass
class AdaptiveRunResult:
    """Outcome of one adaptive parallel run."""

    nprocs: int
    nsteps: int
    elapsed: float
    phase_totals: dict = field(default_factory=dict)
    adapt_cycles: int = 0
    final_bricks: int = 0
    group_imbalance: float = 1.0

    @property
    def time_per_step(self) -> float:
        return self.elapsed / self.nsteps

    def phase_fraction(self, phase: str) -> float:
        total = sum(self.phase_totals.values())
        return self.phase_totals.get(phase, 0.0) / total if total else 0.0


class AdaptiveDriver:
    """Run an :class:`AdaptiveSystem` on the simulated machine.

    ``sanitizer`` (a :class:`repro.analysis.sanitizer.Sanitizer`)
    attaches the runtime SimMPI checker to every epoch's scheduler, so
    the adaptive halo/regroup protocol is race- and tag-audited in the
    same pass that measures it (the batched hook path keeps the
    overhead negligible).
    """

    def __init__(
        self,
        system: AdaptiveSystem,
        machine: MachineSpec,
        work: WorkModel = DEFAULT_WORK_MODEL,
        sanitizer=None,
    ):
        self.system = system
        self.machine = machine
        self.work = work
        self.sanitizer = sanitizer

    # ------------------------------------------------------------------

    def run(
        self,
        nsteps: int,
        body_boxes_fn: Callable[[int], list],
        adapt_interval: int = 4,
        margin: float = 0.1,
    ) -> AdaptiveRunResult:
        """Simulate ``nsteps``; bodies at step k come from
        ``body_boxes_fn(k)``."""
        if nsteps < 1:
            raise ValueError("nsteps must be >= 1")
        nprocs = self.machine.nodes
        system = self.system
        grouping = system.group(nprocs)
        result = AdaptiveRunResult(nprocs=nprocs, nsteps=nsteps, elapsed=0.0)
        phase_totals: dict[str, float] = {}

        step = 0
        while step < nsteps:
            epoch = min(adapt_interval, nsteps - step)
            out = self._run_epoch(grouping, epoch)
            result.elapsed += out.elapsed
            for p in out.metrics.phases():
                phase_totals[p] = phase_totals.get(p, 0.0) + sum(
                    r.phase_time(p) for r in out.metrics.ranks
                )
            step += epoch
            if step < nsteps:
                moved = self._adapt_and_regroup(
                    body_boxes_fn(step), grouping, nprocs, margin
                )
                grouping, adapt_cost = moved
                result.adapt_cycles += 1
                # The adapt cycle itself is charged as a serial-ish
                # phase: interpolation to new fine bricks plus brick
                # redistribution, split over the nodes.
                dt = self.machine.compute_time(adapt_cost / nprocs)
                result.elapsed += dt
                phase_totals[PHASE_ADAPT] = (
                    phase_totals.get(PHASE_ADAPT, 0.0) + dt * nprocs
                )

        result.phase_totals = phase_totals
        result.final_bricks = len(system.bricks)
        result.group_imbalance = grouping.imbalance()
        return result

    # ------------------------------------------------------------------

    def _cross_group_traffic(self, grouping) -> list[dict[int, int]]:
        """Per rank: {neighbour rank: fringe points exchanged}."""
        system = self.system
        n = system.system.points_per_brick
        ndim = system.bricks[0].ndim if system.bricks else 3
        face_pts = n ** (ndim - 1)
        out: list[dict[int, int]] = [dict() for _ in range(grouping.ngroups)]
        for a, b in system.connectivity_edges():
            ga, gb = grouping.group_of[a], grouping.group_of[b]
            if ga == gb:
                continue
            out[ga][gb] = out[ga].get(gb, 0) + face_pts
            out[gb][ga] = out[gb].get(ga, 0) + face_pts
        return out

    def _run_epoch(self, grouping, nsteps: int):
        system = self.system
        work = self.work
        traffic = self._cross_group_traffic(grouping)
        pts_per_group = list(grouping.group_points)
        fringe_per_group = [
            sum(t.values()) for t in traffic
        ]
        intra_fringe = [0] * grouping.ngroups
        n = system.system.points_per_brick
        ndim = system.bricks[0].ndim if system.bricks else 3
        face_pts = n ** (ndim - 1)
        for a, b in system.connectivity_edges():
            if grouping.group_of[a] == grouping.group_of[b]:
                intra_fringe[grouping.group_of[a]] += 2 * face_pts

        def program(comm):
            rank = comm.rank
            pts = pts_per_group[rank]
            for _ in range(nsteps):
                # Off-body flow solve: inviscid Cartesian bricks.
                yield from comm.set_phase(PHASE_FLOW)
                yield from comm.compute(
                    flops=work.flow_flops(pts, False, False, ndim),
                    points_per_node=pts,
                )
                for nbr, fringe in sorted(traffic[rank].items()):
                    yield from comm.send(
                        nbr, TAG_BRICK_HALO, None,
                        nbytes=work.halo_bytes(fringe),
                    )
                for nbr in sorted(traffic[rank]):
                    yield from comm.recv(nbr, TAG_BRICK_HALO)
                yield from comm.barrier()

                # Connectivity: closed-form Cartesian donors — only the
                # interpolation itself costs anything.
                yield from comm.set_phase(PHASE_CONNECT)
                yield from comm.compute(
                    flops=(fringe_per_group[rank] + intra_fringe[rank])
                    * work.interp_flops_per_igbp
                )
                yield from comm.barrier()
            return None

        sim = Simulator(self.machine, sanitizer=self.sanitizer)
        sim.spawn_all(program)
        return sim.run()

    def _adapt_and_regroup(self, body_boxes, old_grouping, nprocs, margin):
        system = self.system
        old_assignment = {
            b: old_grouping.group_of[i] for i, b in enumerate(system.bricks)
        }
        stats = system.adapt(body_boxes, margin=margin)
        grouping = system.group(nprocs)
        # Cost model: interpolate parent data onto refined bricks, and
        # ship bricks whose owner changed.
        pts_per_brick = (
            system.system.points_per_brick ** system.bricks[0].ndim
            if system.bricks
            else 0
        )
        interp_cost = stats.refined * pts_per_brick * 8.0  # flops
        moved = sum(
            1
            for i, b in enumerate(system.bricks)
            if old_assignment.get(b) not in (None, grouping.group_of[i])
        )
        ship_cost = moved * pts_per_brick * 2.0  # flop-equivalent packing
        return grouping, interp_cost + ship_cost
