"""The adapt cycle and its parallel decomposition.

:class:`AdaptiveSystem` owns the off-body brick set: per adapt cycle it
refines toward the (possibly moving) near-body grids and the solution
error, coarsens where neither applies, and packs the resulting bricks
into node groups with the paper's Algorithm 3
(:func:`repro.partition.group_grids`) — even work per group, maximum
intra-group connectivity.

:func:`cartesian_connectivity` demonstrates the scheme's payoff: donor
relations between overlapping bricks are computed in closed form
(:meth:`repro.grids.CartesianGrid.locate`), so the count of stencil-walk
donor searches avoided is exactly the count of brick-to-brick fringe
points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.adapt.error import gradient_flags, proximity_flags
from repro.adapt.refine import (
    Brick,
    BrickSystem,
    coarsen_bricks,
    initial_off_body_system,
    refine_bricks,
)
from repro.grids.bbox import AABB
from repro.partition.grouping import GroupingResult, group_grids


@dataclass
class AdaptStats:
    """Outcome of one adapt cycle."""

    nbricks: int
    refined: int
    coarsened: int
    max_level: int
    grouping: GroupingResult | None = None


class AdaptiveSystem:
    """Off-body Cartesian system with refinement and grouping."""

    def __init__(
        self,
        domain: AABB,
        brick_extent: float,
        max_level: int = 3,
        points_per_brick: int = 9,
    ):
        if max_level < 0:
            raise ValueError("max_level must be >= 0")
        self.system, self.bricks = initial_off_body_system(
            domain, brick_extent, points_per_brick
        )
        self.max_level = max_level
        self.history: list[AdaptStats] = []

    # ------------------------------------------------------------------

    def adapt(
        self,
        body_boxes: list[AABB],
        error_field: Callable[[np.ndarray], np.ndarray] | None = None,
        error_threshold: float = 1.0,
        margin: float = 0.0,
        ngroups: int | None = None,
    ) -> AdaptStats:
        """One refine-then-coarsen cycle toward the current body
        positions (and optionally the solution error), followed by
        Algorithm-3 grouping when ``ngroups`` is given."""
        before = set(self.bricks)

        # Refine every level at most once per cycle, innermost first so
        # newly created children can immediately refine again next cycle.
        flags = self._flags(body_boxes, error_field, error_threshold, margin)
        self.bricks = refine_bricks(self.bricks, flags, self.max_level)

        # Coarsen sibling sets that no longer matter.
        keep = self._flags(body_boxes, error_field, error_threshold, margin)
        self.bricks = coarsen_bricks(self.bricks, keep)

        after = set(self.bricks)
        grouping = None
        if ngroups is not None:
            grouping = self.group(ngroups)
        stats = AdaptStats(
            nbricks=len(self.bricks),
            refined=len(after - before),
            coarsened=len(before - after),
            max_level=max((b.level for b in self.bricks), default=0),
            grouping=grouping,
        )
        self.history.append(stats)
        return stats

    def _flags(self, body_boxes, error_field, error_threshold, margin):
        flags = proximity_flags(self.system, self.bricks, body_boxes, margin)
        if error_field is not None:
            grad = gradient_flags(
                self.system, self.bricks, error_field, error_threshold
            )
            flags = {b: flags[b] or grad[b] for b in self.bricks}
        return flags

    # ------------------------------------------------------------------

    def brick_points(self) -> list[int]:
        n = self.system.points_per_brick
        ndim = self.bricks[0].ndim if self.bricks else 0
        return [n**ndim] * len(self.bricks)

    def connectivity_edges(self) -> set[tuple[int, int]]:
        """Brick adjacency: boxes that touch or overlap are connected."""
        boxes = [self.system.box(b) for b in self.bricks]
        edges: set[tuple[int, int]] = set()
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                if boxes[i].intersects(boxes[j]):
                    edges.add((i, j))
        return edges

    def group(self, ngroups: int) -> GroupingResult:
        """Pack bricks into node groups with Algorithm 3."""
        return group_grids(
            self.brick_points(), self.connectivity_edges(), ngroups
        )

    def total_points(self) -> int:
        return sum(self.brick_points())

    def parameters_stored(self) -> int:
        """Scalars describing the whole off-body system — seven per
        brick (2*ndim + 1), the paper's storage argument."""
        if not self.bricks:
            return 0
        return len(self.bricks) * (2 * self.bricks[0].ndim + 1)


def cartesian_connectivity(
    system: BrickSystem, bricks: list[Brick]
) -> dict:
    """Closed-form donor lookup between overlapping/abutting bricks.

    For every brick, its boundary-face points are located in every finer
    or same-level neighbouring brick with the O(1) Cartesian ``locate``.
    Returns counts: donors resolved and stencil-walk searches avoided
    (equal — that is the point of the scheme).
    """
    grids = [system.grid(b) for b in bricks]
    boxes = [system.box(b) for b in bricks]
    donors = 0
    fringe_total = 0
    for i, gi in enumerate(grids):
        fringe = _face_points(gi)
        fringe_total += fringe.shape[0]
        resolved = np.zeros(fringe.shape[0], dtype=bool)
        for j, gj in enumerate(grids):
            if i == j or not boxes[i].intersects(boxes[j]):
                continue
            _, _, inside = gj.locate(fringe)
            resolved |= inside
        donors += int(resolved.sum())
    return {
        "fringe_points": fringe_total,
        "donors_resolved": donors,
        "searches_avoided": donors,
    }


def _face_points(grid) -> np.ndarray:
    xyz = grid.coordinates()
    ndim = grid.ndim
    faces = []
    for axis in range(ndim):
        sl: list = [slice(None)] * (ndim + 1)
        sl[axis] = 0
        faces.append(xyz[tuple(sl)].reshape(-1, ndim))
        sl[axis] = -1
        faces.append(xyz[tuple(sl)].reshape(-1, ndim))
    return np.concatenate(faces, axis=0)
