"""Adaptive off-body Cartesian grid scheme (paper section 5).

The paper's forward-looking scheme (Meakin [17, 18]): curvilinear
grids resolve the near-body viscous region while the off-body domain is
automatically partitioned into systems of uniform Cartesian grids
("bricks") at nested refinement levels.  Initial refinement follows
proximity to the near-body grids; subsequent adapt cycles respond to
body motion and solution-error estimates, refining and coarsening.
Because every brick is a seven-parameter uniform grid, donor lookup
between bricks is closed-form — "the bulk of the connectivity solution
can be performed at very low cost because no donor searches are
required".

* :mod:`refine` — brick generation, proximity refinement, nesting;
* :mod:`error` — refinement criteria (proximity + solution error);
* :mod:`manager` — the adapt cycle plus Algorithm-3 grouping onto
  nodes.
"""

from repro.adapt.refine import Brick, initial_off_body_system, refine_bricks
from repro.adapt.error import proximity_flags, gradient_flags
from repro.adapt.manager import AdaptiveSystem, cartesian_connectivity
from repro.adapt.parallel import AdaptiveDriver, AdaptiveRunResult

__all__ = [
    "AdaptiveDriver",
    "AdaptiveRunResult",
    "Brick",
    "initial_off_body_system",
    "refine_bricks",
    "proximity_flags",
    "gradient_flags",
    "AdaptiveSystem",
    "cartesian_connectivity",
]
