"""Off-body Cartesian brick generation and refinement.

The off-body domain is tiled by equal-size "bricks" (uniform Cartesian
grids).  Refining a brick replaces it with 2**ndim children at half the
spacing; coarsening merges a full sibling set back into the parent.
Brick identity is (level, integer lattice coordinates), so the system
is exactly an octree (quadtree in 2-D) whose leaves carry seven-
parameter grids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grids.bbox import AABB
from repro.grids.cartesian import CartesianGrid


@dataclass(frozen=True)
class Brick:
    """One off-body brick: a node of the refinement tree."""

    level: int
    ijk: tuple[int, ...]  # lattice coordinates at this level

    @property
    def ndim(self) -> int:
        return len(self.ijk)

    def children(self) -> list["Brick"]:
        out = []
        for corner in range(2**self.ndim):
            child = tuple(
                2 * self.ijk[d] + ((corner >> d) & 1)
                for d in range(self.ndim)
            )
            out.append(Brick(self.level + 1, child))
        return out

    def parent(self) -> "Brick":
        if self.level == 0:
            raise ValueError("level-0 brick has no parent")
        return Brick(self.level - 1, tuple(c // 2 for c in self.ijk))

    def siblings(self) -> list["Brick"]:
        return self.parent().children()


@dataclass
class BrickSystem:
    """Geometry shared by all bricks: domain origin and level-0 size."""

    origin: np.ndarray
    brick_extent: float           # physical edge length of a level-0 brick
    points_per_brick: int = 9     # points per edge of every brick

    def spacing(self, level: int) -> float:
        return self.brick_extent / (2**level) / (self.points_per_brick - 1)

    def box(self, brick: Brick) -> AABB:
        size = self.brick_extent / (2**brick.level)
        lo = self.origin + size * np.array(brick.ijk, dtype=float)
        return AABB(lo, lo + size)

    def grid(self, brick: Brick) -> CartesianGrid:
        box = self.box(brick)
        dims = (self.points_per_brick,) * len(brick.ijk)
        return CartesianGrid(
            f"L{brick.level}-{'_'.join(map(str, brick.ijk))}",
            box.lo,
            self.spacing(brick.level),
            dims,
            level=brick.level,
        )


def initial_off_body_system(
    domain: AABB,
    brick_extent: float,
    points_per_brick: int = 9,
) -> tuple[BrickSystem, list[Brick]]:
    """Tile ``domain`` with level-0 bricks (the "default off-body
    Cartesian set", Fig. 12a)."""
    if brick_extent <= 0:
        raise ValueError("brick_extent must be positive")
    counts = np.maximum(
        1, np.ceil(domain.extent / brick_extent - 1e-12).astype(int)
    )
    system = BrickSystem(domain.lo.copy(), brick_extent, points_per_brick)
    bricks = [
        Brick(0, tuple(int(v) for v in idx))
        for idx in np.ndindex(*counts)
    ]
    return system, bricks


def refine_bricks(
    bricks: list[Brick],
    flags: dict[Brick, bool],
    max_level: int,
) -> list[Brick]:
    """Replace flagged bricks (below ``max_level``) with their children;
    returns the new leaf set sorted for determinism."""
    out: list[Brick] = []
    for b in bricks:
        if flags.get(b, False) and b.level < max_level:
            out.extend(b.children())
        else:
            out.append(b)
    return sorted(out, key=lambda b: (b.level, b.ijk))


def coarsen_bricks(
    bricks: list[Brick],
    keep_fine: dict[Brick, bool],
) -> list[Brick]:
    """Merge complete sibling sets whose members are all unflagged."""
    leaf = set(bricks)
    out: list[Brick] = []
    merged: set[Brick] = set()
    for b in bricks:
        if b in merged:
            continue
        if b.level == 0 or keep_fine.get(b, False):
            out.append(b)
            continue
        sibs = b.siblings()
        if all(s in leaf for s in sibs) and not any(
            keep_fine.get(s, False) for s in sibs
        ):
            out.append(b.parent())
            merged.update(sibs)
        else:
            out.append(b)
    return sorted(set(out), key=lambda b: (b.level, b.ijk))
