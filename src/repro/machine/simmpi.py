"""SimMPI: an MPI-flavoured message-passing API over the event simulator.

Rank programs are generator functions taking a :class:`Comm`.  Every
communication or compute call is a *sub-generator* and must be invoked
with ``yield from``::

    def program(comm):
        yield from comm.compute(flops=2.0e6)
        if comm.rank == 0:
            yield from comm.send(1, tag=0, payload={"hello": 1}, nbytes=64)
        else:
            payload, status = yield from comm.recv(0, tag=0)
        total = yield from comm.allreduce(comm.rank)

The methods mirror the mpi4py surface the paper's codes rely on
(send/recv, isend/irecv + wait/test, iprobe, bcast, gather, allreduce,
barrier).  Collectives are built from point-to-point primitives with the
classic O(log P) algorithms so their simulated cost scales realistically.

Primitive operations are yielded to the scheduler as tuples; user code
never sees them.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Any, Callable, Generator, Iterable

from repro.machine.event import ANY_SOURCE, ANY_TAG

#: Exclusive upper bound on user-visible tags.  Everything at or above
#: it is reserved: sub-communicator translation offsets user tags by
#: multiples of :data:`SubComm._TAG_STRIDE` (= ``MAX_USER_TAG``), and
#: collectives live above *all* possible group offsets at
#: ``_COLL_TAG_BASE`` so a group-translated user tag can never collide
#: with a collective round.  ``Comm.send``/``recv``/``iprobe`` enforce
#: the bound with an explicit guard.
MAX_USER_TAG = 10_000_000

#: Sentinel distinguishing "collective without a payload check" from a
#: legitimately-``None`` payload in sanitizer notifications.
_NO_PAYLOAD = object()

# Reserved tag space for collectives; sits above every possible
# SubComm offset (< 998 * MAX_USER_TAG) plus user tag.
_COLL_TAG_BASE = 100_000_000_000
_TAG_BARRIER = _COLL_TAG_BASE + 1
_TAG_BCAST = _COLL_TAG_BASE + 2
_TAG_GATHER = _COLL_TAG_BASE + 3
_TAG_REDUCE = _COLL_TAG_BASE + 4
_TAG_ALLTOALL = _COLL_TAG_BASE + 5
#: Reserved tag for the failure-detection heartbeat protocol
#: (:meth:`Comm.detect_failures`).  Lives in the collective tag space so
#: no group-translated user tag can ever match a heartbeat.
_TAG_HEARTBEAT = _COLL_TAG_BASE + 6

#: Payload carried by one heartbeat message ("I am alive"), and its wire
#: size.  Tiny and fixed so detection cost is independent of app state.
_HEARTBEAT_NBYTES = 16

_COLL_TAG_NAMES = {
    _TAG_BCAST: "collective:bcast",
    _TAG_GATHER: "collective:gather",
    _TAG_REDUCE: "collective:reduce",
    _TAG_ALLTOALL: "collective:alltoall",
    _TAG_HEARTBEAT: "collective:heartbeat",
}


def describe_tag(tag: int) -> str:
    """Human-readable name for a message tag (for diagnostics).

    Distinguishes user tags, group-offset user tags, barrier rounds and
    the reserved collective/heartbeat tags so deadlock and failure
    reports name the protocol a rank is stuck in rather than printing a
    bare 12-digit integer.
    """
    if tag == ANY_TAG:
        return "ANY"
    if tag in _COLL_TAG_NAMES:
        return _COLL_TAG_NAMES[tag]
    if tag >= _COLL_TAG_BASE:
        # Barrier rounds use _TAG_BARRIER + k for round k; round 0 is
        # the only one outside the named-collective table above.
        k = tag - _TAG_BARRIER
        if 0 <= k < 64:
            return f"collective:barrier[round {k}]"
        return f"reserved:{tag}"
    if 0 <= tag < MAX_USER_TAG:
        return f"user:{tag}"
    if tag >= SubComm._TAG_STRIDE:
        group = tag // SubComm._TAG_STRIDE
        user = tag % SubComm._TAG_STRIDE
        return f"group[{group}]:user:{user}"
    return f"tag:{tag}"


@dataclass
class Status:
    """Receive status: who sent the matched message, with which tag."""

    source: int
    tag: int
    nbytes: int


class Request:
    """Handle for a non-blocking operation.

    Sends complete eagerly (buffered-send model), so send requests are
    born complete.  Receive requests hold their (src, tag) posting and are
    completed by :meth:`Comm.wait` / :meth:`Comm.test`.
    """

    __slots__ = ("kind", "src", "tag", "done", "payload", "status")

    def __init__(self, kind: str, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        self.kind = kind
        self.src = src
        self.tag = tag
        self.done = kind == "send"
        self.payload: Any = None
        self.status: Status | None = None


class Comm:
    """Communicator bound to one rank of the simulated machine."""

    #: Optional :class:`repro.analysis.sanitizer.Sanitizer` shadow
    #: layer, attached by the scheduler when sanitizing.  Purely
    #: observational — notifications never charge virtual time.
    _san = None

    def __init__(self, rank: int, size: int, machine):
        self.rank = rank
        self.size = size
        self.machine = machine

    # ------------------------------------------------------------------
    # sanitizer shadow layer
    # ------------------------------------------------------------------

    def _san_collective(
        self,
        name: str,
        root: int | None = None,
        payload: Any = _NO_PAYLOAD,
    ) -> None:
        """Notify the sanitizer (if any) of a collective entry; global
        rank numbering, world communicator.

        ``payload`` is forwarded for element-wise collectives
        (reduce/allreduce/alltoall) so the sanitizer can compare O(1)
        size/shape/dtype signatures across ranks; collectives with
        legitimately rank-varying contributions (gather, bcast) omit
        it.  The sentinel keeps ``payload=None`` distinguishable from
        "no payload check"."""
        if self._san is not None:
            has = payload is not _NO_PAYLOAD
            self._san.on_collective(
                self.rank,
                "world",
                name,
                root,
                payload if has else None,
                has,
            )

    # ------------------------------------------------------------------
    # time and work
    # ------------------------------------------------------------------

    def compute(
        self,
        flops: float = 0.0,
        seconds: float = 0.0,
        points_per_node: float | None = None,
    ) -> Generator:
        """Charge compute work: ``flops`` at the node's effective rate
        and/or raw ``seconds``.  ``points_per_node`` enables the cache
        model of :class:`repro.machine.spec.NodeSpec`."""
        dt = seconds
        if flops:
            dt += self.machine.compute_time(flops, points_per_node)
        if dt or flops:
            yield ("compute", dt, flops)
        return None

    def elapse(self, seconds: float) -> Generator:
        """Advance this rank's clock without attributing flops."""
        yield ("compute", seconds, 0.0)
        return None

    def now(self) -> Generator:
        """Current virtual time on this rank."""
        t = yield ("now",)
        return t

    def set_phase(self, phase: str) -> Generator:
        """Switch the accounting phase; returns the previous phase."""
        old = yield ("set_phase", phase)
        return old

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------

    @staticmethod
    def _check_user_tag(tag: int, allow_any: bool = False) -> None:
        """Guard the reserved tag space.

        User tags must satisfy ``0 <= tag < MAX_USER_TAG``; everything
        above is reserved for sub-communicator offsets and collective
        rounds (``tag >= _COLL_TAG_BASE``) and must never be usable from
        application code, or concurrent collectives could match user
        messages.
        """
        if allow_any and tag == ANY_TAG:
            return
        if not (0 <= tag < MAX_USER_TAG):
            raise ValueError(
                f"tag {tag} outside the user range [0, {MAX_USER_TAG}); "
                f"tags >= {MAX_USER_TAG} are reserved for group offsets "
                f"and collectives (collective base {_COLL_TAG_BASE})"
            )

    def send(self, dst: int, tag: int, payload: Any = None, nbytes: int | None = None) -> Generator:
        """Buffered (eager) send: returns once the message is injected."""
        self._check_user_tag(tag)
        yield from self._send(dst, tag, payload, nbytes)
        return None

    def _send(self, dst: int, tag: int, payload: Any = None, nbytes: int | None = None) -> Generator:
        """Unchecked send primitive (collectives use reserved tags)."""
        if not (0 <= dst < self.size):
            raise ValueError(f"send to invalid rank {dst} (size {self.size})")
        yield ("inject", dst, tag, payload, self._size_of(payload, nbytes))
        return None

    def isend(self, dst: int, tag: int, payload: Any = None, nbytes: int | None = None) -> Generator:
        """Non-blocking send.  With the eager-send model this is the same
        cost as :meth:`send`; the returned request is already complete."""
        yield from self.send(dst, tag, payload, nbytes)
        return Request("send")

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns ``(payload, Status)``."""
        self._check_user_tag(tag, allow_any=True)
        return (yield from self._recv(src, tag))

    def _recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Unchecked receive primitive (collectives use reserved tags)."""
        msg = yield ("recv", src, tag)
        return msg.payload, Status(msg.src, msg.tag, msg.nbytes)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Post a non-blocking receive; complete with wait/test."""
        self._check_user_tag(tag, allow_any=True)
        yield from ()  # keep generator protocol uniform
        return Request("recv", src, tag)

    def wait(self, req: Request) -> Generator:
        """Block until ``req`` completes; returns ``(payload, Status)``
        for receives, ``(None, None)`` for sends."""
        if req.done:
            return req.payload, req.status
        payload, status = yield from self.recv(req.src, req.tag)
        req.done, req.payload, req.status = True, payload, status
        return payload, status

    def test(self, req: Request) -> Generator:
        """Non-blocking completion check; returns ``True`` if done."""
        if req.done:
            return True
        got = yield from self._tryrecv(req.src, req.tag)
        if got is None:
            return False
        req.done = True
        req.payload = got.payload
        req.status = Status(got.src, got.tag, got.nbytes)
        return True

    def waitall(self, reqs: Iterable[Request]) -> Generator:
        out = []
        for r in reqs:
            out.append((yield from self.wait(r)))
        return out

    def iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Has a matching message arrived?  Charges a polling overhead."""
        self._check_user_tag(tag, allow_any=True)
        return (yield from self._iprobe(src, tag))

    def _iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        found = yield ("iprobe", src, tag)
        return found

    def _tryrecv(self, src: int, tag: int) -> Generator:
        """Non-blocking matched receive primitive (no tag translation:
        overridden by :class:`SubComm`)."""
        got = yield ("tryrecv", src, tag)
        return got

    def drain_recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Drain *every* arrived matching message in one poll.

        Returns ``[(payload, Status), ...]`` sorted by ``(source, seq)``
        — a canonical order independent of arrival interleaving, which
        makes wildcard service loops deterministic where repeated
        single-message ``ANY_SOURCE`` tryrecvs would consume messages
        in timing-dependent arrival order (the message-race pattern the
        sanitizer flags).  Charges one polling overhead regardless of
        how many messages are drained.
        """
        self._check_user_tag(tag, allow_any=True)
        msgs = yield from self._drain(src, tag)
        return [(m.payload, Status(m.src, m.tag, m.nbytes)) for m in msgs]

    def _drain(self, src: int, tag: int) -> Generator:
        """Unchecked drain primitive (overridden by :class:`SubComm`)."""
        msgs = yield ("drain", src, tag)
        return msgs

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def barrier(self) -> Generator:
        """Dissemination barrier: ceil(log2 P) rounds."""
        self._san_collective("barrier")
        p = self.size
        if p == 1:
            return None
        rounds = max(1, math.ceil(math.log2(p)))
        for k in range(rounds):
            dist = 1 << k
            yield from self._send((self.rank + dist) % p, _TAG_BARRIER + k, None, 8)
            yield from self._recv((self.rank - dist) % p, _TAG_BARRIER + k)
        return None

    def bcast(self, payload: Any = None, root: int = 0, nbytes: int | None = None) -> Generator:
        """Binomial-tree broadcast; every rank returns the root's payload.

        Virtual rank 0 is the root; a rank receives from the sender one
        step up its lowest-set-bit edge, then forwards down every lower
        bit — the classic O(log P)-round binomial tree.
        """
        self._san_collective("bcast", root)
        p = self.size
        if p == 1:
            return payload
        vrank = (self.rank - root) % p
        top = 1
        while top < p:
            top <<= 1
        received = payload
        mask = 1
        while mask < top:
            if vrank & mask:
                src = (vrank - mask + root) % p
                received, _ = yield from self._recv(src, _TAG_BCAST)
                break
            mask <<= 1
        else:
            mask = top  # vrank == 0: forward at every level
        n = self._size_of(received, nbytes)
        mask >>= 1
        while mask > 0:
            if vrank + mask < p:
                dst = (vrank + mask + root) % p
                yield from self._send(dst, _TAG_BCAST, received, n)
            mask >>= 1
        return received

    def gather(self, payload: Any, root: int = 0, nbytes: int | None = None) -> Generator:
        """Linear gather to root; root returns the list ordered by rank."""
        self._san_collective("gather", root)
        if self.size == 1:
            return [payload]
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = payload
            for _ in range(self.size - 1):
                data, status = yield from self._recv(ANY_SOURCE, _TAG_GATHER)
                out[status.source] = data
            return out
        yield from self._send(root, _TAG_GATHER, payload, nbytes)
        return None

    def allgather(self, payload: Any, nbytes: int | None = None) -> Generator:
        """Gather to rank 0 then broadcast (cost ~ gather + bcast)."""
        self._san_collective("allgather")
        gathered = yield from self.gather(payload, 0, nbytes)
        n = None if nbytes is None else nbytes * self.size
        return (yield from self.bcast(gathered, 0, n))

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        root: int = 0,
        nbytes: int | None = None,
    ) -> Generator:
        """Gather-based reduce; root returns the reduction, others None."""
        self._san_collective("reduce", root, payload=value)
        gathered = yield from self.gather(value, root, nbytes)
        if self.rank != root:
            return None
        acc = gathered[0]
        for v in gathered[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        nbytes: int | None = None,
    ) -> Generator:
        self._san_collective("allreduce", payload=value)
        reduced = yield from self.reduce(value, op, 0, nbytes)
        return (yield from self.bcast(reduced, 0, nbytes))

    def alltoall(self, payloads: list, nbytes: int | None = None) -> Generator:
        """Personalised all-to-all; ``payloads[i]`` goes to rank i."""
        self._san_collective("alltoall", payload=payloads)
        if len(payloads) != self.size:
            raise ValueError("alltoall needs one payload per rank")
        out: list[Any] = [None] * self.size
        out[self.rank] = payloads[self.rank]
        for dst in range(self.size):
            if dst != self.rank:
                yield from self._send(dst, _TAG_ALLTOALL, payloads[dst], nbytes)
        for _ in range(self.size - 1):
            data, status = yield from self._recv(ANY_SOURCE, _TAG_ALLTOALL)
            out[status.source] = data
        return out

    def sendrecv(
        self,
        dst: int,
        src: int,
        tag: int,
        payload: Any = None,
        nbytes: int | None = None,
    ) -> Generator:
        """Combined exchange: eager send to ``dst``, then receive from
        ``src`` with the same tag (deadlock-free with buffered sends)."""
        yield from self.send(dst, tag, payload, nbytes)
        return (yield from self.recv(src, tag))

    # ------------------------------------------------------------------
    # failure detection (heartbeat / timeout protocol)
    # ------------------------------------------------------------------

    def heartbeat_timeout(self) -> float:
        """Deterministic detection timeout in virtual seconds.

        Generous by construction: covers every peer's heartbeat
        injection plus several network latencies plus the probe
        overheads, so on a *healthy* machine no live rank is ever
        falsely suspected — the protocol has no false positives, only
        bounded detection delay.
        """
        net = self.machine.network
        return (
            (self.size + 2) * net.injection_time(_HEARTBEAT_NBYTES)
            + 4.0 * net.latency
            + 16 * net.poll_overhead
        )

    def detect_failures(self, timeout: float | None = None) -> Generator:
        """Simulated heartbeat/timeout failure detector.

        Each surviving rank broadcasts an "I am alive" heartbeat on the
        reserved :data:`_TAG_HEARTBEAT` channel, waits out a
        deterministic ``timeout``, then probes for each peer's
        heartbeat.  Peers whose heartbeat never arrived are *suspected*
        dead (their messages were black-holed by the scheduler).  The
        survivors then agree on the dead set with an allreduce (set
        union) over a sub-communicator containing only the locally-live
        ranks — every survivor returns the identical sorted tuple of
        dead ranks, mirroring a ULFM ``MPI_Comm_agree`` shrink.

        Must only be called when at least the calling rank is alive;
        safe to call with no failures (returns an empty tuple).
        """
        self._san_collective("detect_failures")
        if timeout is None:
            timeout = self.heartbeat_timeout()
        # 1. Broadcast heartbeats (sends to dead ranks are black-holed
        #    by the scheduler at sender cost only — no deadlock risk).
        for peer in range(self.size):
            if peer != self.rank:
                yield from self._send(
                    peer, _TAG_HEARTBEAT, ("alive", self.rank),
                    _HEARTBEAT_NBYTES,
                )
        # 2. Wait out the detection window.
        yield from self.elapse(timeout)
        # 3. Probe: whose heartbeat arrived?
        suspects: list[int] = []
        for peer in range(self.size):
            if peer == self.rank:
                continue
            got = yield from self._tryrecv(peer, _TAG_HEARTBEAT)
            if got is None:
                suspects.append(peer)
        # 4. Agreement over the locally-live group.  All survivors
        #    computed the same suspect set (the detector has no false
        #    positives and dead ranks' heartbeats reach nobody), so the
        #    group membership — and hence the SubComm tag offset — is
        #    identical on every survivor, and the allreduce is safe.
        live = [r for r in range(self.size) if r == self.rank or r not in suspects]
        if len(live) > 1:
            group = self.split(live)
            agreed = yield from group.allreduce(
                frozenset(suspects), op=lambda a, b: a | b, nbytes=64
            )
        else:
            agreed = frozenset(suspects)
        return tuple(sorted(agreed))

    # ------------------------------------------------------------------
    # sub-communicators (the paper's per-grid processor groups)
    # ------------------------------------------------------------------

    def split(self, members: list[int]) -> "SubComm":
        """Communicator over a subset of global ranks.

        OVERFLOW assigns a processor *group* to each component grid
        (paper Fig. 2); a :class:`SubComm` gives that group its own rank
        numbering and collectives while routing over the global
        communicator (tags are offset so concurrent groups do not cross
        wires).  The calling rank must be a member.
        """
        return SubComm(self, members)

    # ------------------------------------------------------------------

    @staticmethod
    def _size_of(payload: Any, nbytes: int | None) -> int:
        """Message size in bytes: explicit, or estimated from the payload."""
        if nbytes is not None:
            return int(nbytes)
        if payload is None:
            return 8
        if hasattr(payload, "nbytes"):  # numpy arrays
            return int(payload.nbytes) + 16
        if isinstance(payload, (bytes, bytearray)):
            return len(payload) + 16
        if isinstance(payload, (int, float, bool)):
            return 16
        if isinstance(payload, (list, tuple)):
            return 16 + sum(Comm._size_of(p, None) for p in payload)
        if isinstance(payload, dict):
            return 16 + sum(
                Comm._size_of(k, None) + Comm._size_of(v, None)
                for k, v in payload.items()
            )
        # Arbitrary object (e.g. a dataclass): measure the actual
        # serialised size instead of guessing a constant.  Hashable
        # payloads go through a bounded LRU memo so hot paths that
        # resend the same small object don't re-pickle it every time;
        # unhashable ones are measured directly.  Unpicklable payloads
        # keep the old conservative constant.
        try:
            hash(payload)
        except TypeError:
            return _pickled_size(payload)
        return _pickled_size_memo(payload)


def _pickled_size(payload: Any) -> int:
    """16-byte envelope + pickled body, or the legacy 64-byte guess if
    the payload cannot be pickled (e.g. holds a generator or socket)."""
    try:
        return 16 + len(pickle.dumps(payload, protocol=4))
    except Exception:
        return 64


@lru_cache(maxsize=1024)
def _pickled_size_memo(payload: Any) -> int:
    return _pickled_size(payload)


class SubComm(Comm):
    """Group communicator: local ranks 0..len(members)-1 map onto a
    sorted subset of global ranks.

    Point-to-point and collective calls use group-local ranks; tags are
    offset by a group-specific stride so that simultaneous collectives
    in different groups never match each other's messages.  A rank may
    hold several SubComms (e.g. its grid group and a row group).
    """

    _TAG_STRIDE = 10_000_000

    def __init__(self, parent: Comm, members: list[int]):
        members = sorted(set(int(m) for m in members))
        if not members:
            raise ValueError("empty group")
        bad = [m for m in members if not (0 <= m < parent.size)]
        if bad:
            raise ValueError(f"group members out of range: {bad}")
        if parent.rank not in members:
            raise ValueError(
                f"rank {parent.rank} is not a member of the group"
            )
        if isinstance(parent, SubComm):
            raise ValueError("nested splits are not supported; split the "
                             "global communicator instead")
        self.parent = parent
        self.members = members
        # Group id from the member set: deterministic and identical on
        # every member, so all of them offset tags the same way.
        gid = hash(tuple(members)) % 997
        self._tag_offset = (gid + 1) * self._TAG_STRIDE
        super().__init__(members.index(parent.rank), len(members),
                         parent.machine)
        # Sanitizer shadow layer follows the parent communicator; the
        # group claims its tag offset so reserved-tag policing knows
        # which offsets are legitimate.
        self._san = parent._san
        if self._san is not None:
            self._san.register_group(
                tuple(self.members), self._tag_offset, parent.rank
            )

    def _san_collective(
        self,
        name: str,
        root: int | None = None,
        payload: Any = _NO_PAYLOAD,
    ) -> None:
        """Collective entry under the *group* communicator id, with
        global rank numbering (so cross-rank comparison is stable)."""
        if self._san is not None:
            has = payload is not _NO_PAYLOAD
            self._san.on_collective(
                self.parent.rank,
                ("group",) + tuple(self.members),
                name,
                root,
                payload if has else None,
                has,
            )

    # -- rank/tag translation -------------------------------------------

    def _global(self, local_rank: int) -> int:
        if not (0 <= local_rank < self.size):
            raise ValueError(
                f"group rank {local_rank} out of range (size {self.size})"
            )
        return self.members[local_rank]

    def _tag(self, tag: int) -> int:
        if tag == ANY_TAG:
            return ANY_TAG
        return tag + self._tag_offset

    # -- overridden primitives (everything else composes on these) -----
    # The *public* send/recv/iprobe with their user-tag guard are
    # inherited from Comm; only the unchecked primitives translate.

    def _send(self, dst: int, tag: int, payload: Any = None, nbytes: int | None = None) -> Generator:
        yield from self.parent._send(
            self._global(dst), self._tag(tag), payload, nbytes
        )
        return None

    def _recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        gsrc = ANY_SOURCE if src == ANY_SOURCE else self._global(src)
        msg = yield ("recv", gsrc, self._tag(tag))
        local_src = (
            self.members.index(msg.src) if msg.src in self.members else -1
        )
        local_tag = (
            msg.tag - self._tag_offset if msg.tag != ANY_TAG else msg.tag
        )
        return msg.payload, Status(local_src, local_tag, msg.nbytes)

    def _iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        gsrc = ANY_SOURCE if src == ANY_SOURCE else self._global(src)
        found = yield ("iprobe", gsrc, self._tag(tag))
        return found

    def _tryrecv(self, src: int, tag: int) -> Generator:
        gsrc = ANY_SOURCE if src == ANY_SOURCE else self._global(src)
        got = yield ("tryrecv", gsrc, self._tag(tag))
        if got is None:
            return None
        local_src = (
            self.members.index(got.src) if got.src in self.members else -1
        )
        local_tag = (
            got.tag - self._tag_offset if got.tag != ANY_TAG else got.tag
        )
        return replace(got, src=local_src, tag=local_tag)

    def _drain(self, src: int, tag: int) -> Generator:
        gsrc = ANY_SOURCE if src == ANY_SOURCE else self._global(src)
        msgs = yield ("drain", gsrc, self._tag(tag))
        out = []
        for got in msgs:
            local_src = (
                self.members.index(got.src) if got.src in self.members else -1
            )
            local_tag = (
                got.tag - self._tag_offset if got.tag != ANY_TAG else got.tag
            )
            out.append(replace(got, src=local_src, tag=local_tag))
        return out
