"""Simulated MIMD distributed-memory machine.

This subpackage is the substitute for the paper's IBM SP2 / IBM SP / Cray
YMP hardware and its MPI library (see DESIGN.md section 3).  Rank programs
are Python coroutines that exchange messages through a discrete-event
network model; all times are *virtual seconds* derived from charged
floating-point work and modeled message costs, so experiments are exactly
reproducible.

Typical use::

    from repro.machine import MachineSpec, Simulator, sp2

    def program(comm):
        yield from comm.compute(1.0e6)          # charge 1 Mflop
        if comm.rank == 0:
            yield from comm.send(1, tag=7, payload=b"x" * 100, nbytes=100)
        elif comm.rank == 1:
            msg, status = yield from comm.recv(0, tag=7)
        yield from comm.barrier()

    sim = Simulator(machine=sp2(nodes=2))
    sim.spawn_all(program)
    result = sim.run()
    print(result.elapsed)     # virtual seconds
"""

from repro.machine.spec import (
    NodeSpec,
    NetworkSpec,
    MachineSpec,
    sp2,
    sp,
    cray_ymp,
    MACHINE_PRESETS,
)
from repro.machine.event import Message, Mailbox, ANY_SOURCE, ANY_TAG
from repro.machine.simmpi import MAX_USER_TAG, Comm, Request, Status, describe_tag
from repro.machine.faults import FaultSpec, FaultPlan, RankFailure
from repro.machine.scheduler import Simulator, SimulationResult, DeadlockError
from repro.machine.metrics import RankMetrics, MachineMetrics

__all__ = [
    "NodeSpec",
    "NetworkSpec",
    "MachineSpec",
    "sp2",
    "sp",
    "cray_ymp",
    "MACHINE_PRESETS",
    "Message",
    "Mailbox",
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX_USER_TAG",
    "Comm",
    "Request",
    "Status",
    "describe_tag",
    "FaultSpec",
    "FaultPlan",
    "RankFailure",
    "Simulator",
    "SimulationResult",
    "DeadlockError",
    "RankMetrics",
    "MachineMetrics",
]
