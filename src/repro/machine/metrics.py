"""Per-rank and machine-wide accounting of virtual time, flops and traffic.

The paper's evaluation reports three derived statistics per run (Tables
1--6): average Mflops/node, parallel speedup, and percentage of time in
the connectivity solution.  All three come from per-phase virtual-time
accounting collected here.  A *phase* is a caller-chosen label
("overflow", "dcf3d", "motion", ...) set through
:meth:`repro.machine.simmpi.Comm.set_phase`; within a phase, time is
split into ``compute`` (charged flops), ``comm`` (message injection and
polling) and ``wait`` (idle, blocked on a receive or collective).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

KINDS = ("compute", "comm", "wait")


def _kind_seconds() -> defaultdict:
    """kind -> seconds (module-level so RankMetrics pickles)."""
    return defaultdict(float)


def _phase_time() -> defaultdict:
    """phase -> kind -> seconds (module-level so RankMetrics pickles)."""
    return defaultdict(_kind_seconds)


@dataclass
class RankMetrics:
    """Accounting for a single rank.

    Picklable by design: checkpoints
    (:mod:`repro.resilience.checkpoint`) snapshot in-flight epoch
    accumulators which carry these objects across scheduler runs.
    """

    rank: int
    time: dict = field(default_factory=_phase_time)
    flops: dict = field(default_factory=_kind_seconds)
    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    final_clock: float = 0.0

    def add_time(self, phase: str, kind: str, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative time increment {dt} in phase {phase!r}")
        self.time[phase][kind] += dt

    def add_flops(self, phase: str, flops: float) -> None:
        self.flops[phase] += flops

    def phase_time(self, phase: str) -> float:
        """Total virtual seconds attributed to ``phase`` on this rank."""
        return sum(self.time[phase].values())

    def total_time(self) -> float:
        return sum(self.phase_time(p) for p in self.time)

    def total_flops(self) -> float:
        return sum(self.flops.values())


class MachineMetrics:
    """Aggregate view over all ranks of one simulation."""

    def __init__(self, ranks: list[RankMetrics]):
        if not ranks:
            raise ValueError("no rank metrics")
        self.ranks = ranks

    @property
    def nranks(self) -> int:
        return len(self.ranks)

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock of the run: the latest final rank clock."""
        return max(r.final_clock for r in self.ranks)

    def phases(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.ranks:
            for p in r.time:
                seen.setdefault(p)
        return list(seen)

    def phase_time_max(self, phase: str) -> float:
        """Critical-path estimate: slowest rank's time in ``phase``.

        With barriers between phases (as in OVERFLOW-D1) the elapsed time
        of a phase is governed by its slowest rank.
        """
        return max(r.phase_time(phase) for r in self.ranks)

    def phase_time_avg(self, phase: str) -> float:
        return sum(r.phase_time(phase) for r in self.ranks) / self.nranks

    def phase_fraction(self, phase: str) -> float:
        """Fraction of total (summed over ranks) time spent in ``phase``."""
        total = sum(r.total_time() for r in self.ranks)
        if total == 0:
            return 0.0
        return sum(r.phase_time(phase) for r in self.ranks) / total

    def imbalance(self, phase: str) -> float:
        """max/avg load-imbalance factor for a phase (1.0 = perfect)."""
        avg = self.phase_time_avg(phase)
        if avg == 0:
            return 1.0
        return self.phase_time_max(phase) / avg

    def total_flops(self) -> float:
        return sum(r.total_flops() for r in self.ranks)

    def mflops_per_node(self) -> float:
        """Average Mflop/s/node over the run (the paper's Table-1 metric)."""
        if self.elapsed == 0:
            return 0.0
        return self.total_flops() / self.elapsed / self.nranks / 1.0e6

    def summary(self) -> dict:
        """Plain-dict summary convenient for printing/serialising."""
        return {
            "nranks": self.nranks,
            "elapsed": self.elapsed,
            "mflops_per_node": self.mflops_per_node(),
            "phases": {
                p: {
                    "max": self.phase_time_max(p),
                    "avg": self.phase_time_avg(p),
                    "imbalance": self.imbalance(p),
                    "fraction": self.phase_fraction(p),
                }
                for p in self.phases()
            },
        }
