"""Messages and per-rank mailboxes for the event-driven network model.

A :class:`Message` records who sent it, when it arrives (virtual seconds),
its payload and size.  Each rank owns a :class:`Mailbox` holding messages
that have been *injected* but possibly not yet *arrived*; matching honours
MPI semantics — per (source, tag) channel, messages are matched in arrival
order, and wildcards (:data:`ANY_SOURCE`, :data:`ANY_TAG`) match the
earliest-arriving candidate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

ANY_SOURCE = -1
ANY_TAG = -1

_seq = itertools.count()


def reset_sequence() -> None:
    """Restart the global message sequence counter.

    The scheduler calls this at the start of every run so ``seq``
    values — tiebreakers in mailbox ordering and provenance in
    sanitizer race witnesses — are a deterministic function of the run,
    not of how many messages earlier runs in the same interpreter
    created.  Within a run the counter is still strictly increasing in
    injection order, so resetting cannot change any matching decision.
    """
    global _seq
    _seq = itertools.count()


@dataclass
class Message:
    """One in-flight or delivered point-to-point message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    send_time: float     # sender clock when injection completed
    arrival_time: float  # virtual time the message becomes receivable
    seq: int = field(default_factory=lambda: next(_seq))

    def matches(self, src: int, tag: int) -> bool:
        """Does this message satisfy a receive posted for (src, tag)?"""
        return (src == ANY_SOURCE or src == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )


class Mailbox:
    """Unmatched messages destined for one rank.

    Messages live here from injection until a matching receive consumes
    them.  ``pop_matching`` only returns messages whose ``arrival_time`` is
    at or before the probing rank's clock *unless* ``allow_future`` is set
    (used by blocking receives, which are willing to wait for arrival).
    """

    def __init__(self) -> None:
        self._messages: list[Message] = []

    def __len__(self) -> int:
        return len(self._messages)

    def deposit(self, msg: Message) -> None:
        self._messages.append(msg)
        # Keep arrival order so wildcard receives are deterministic.
        self._messages.sort(key=lambda m: (m.arrival_time, m.seq))

    def peek_matching(
        self, src: int, tag: int, now: float, allow_future: bool = False
    ) -> Message | None:
        """Earliest matching message, or None.

        With ``allow_future`` False (probe semantics) only messages that
        have already arrived by ``now`` are visible.
        """
        for msg in self._messages:
            if msg.matches(src, tag) and (allow_future or msg.arrival_time <= now):
                return msg
        return None

    def pop_matching(
        self, src: int, tag: int, now: float, allow_future: bool = False
    ) -> Message | None:
        msg = self.peek_matching(src, tag, now, allow_future)
        if msg is not None:
            self._messages.remove(msg)
        return msg

    def pop_all_matching(
        self, src: int, tag: int, now: float
    ) -> list[Message]:
        """Remove and return *every* matching message arrived by ``now``,
        sorted by ``(src, seq)``.

        This is the canonical-order drain primitive: whatever order the
        messages arrived in (the timing-dependent part on a real
        machine), the caller consumes them in a stable order, so a
        wildcard drain cannot act as a message-race amplifier.
        """
        got = [
            m
            for m in self._messages
            if m.matches(src, tag) and m.arrival_time <= now
        ]
        for m in got:
            self._messages.remove(m)
        got.sort(key=lambda m: (m.src, m.seq))
        return got

    def earliest_arrival(self) -> float | None:
        """Arrival time of the earliest message, or None if empty."""
        if not self._messages:
            return None
        return self._messages[0].arrival_time

    def pending(self) -> list[Message]:
        """Snapshot of unmatched messages (for deadlock diagnostics)."""
        return list(self._messages)

    def drain(self) -> list[Message]:
        """Remove and return every unmatched message.

        Used when a rank fail-stops: its mailbox contents are lost with
        it (the returned list feeds fault diagnostics only).
        """
        out, self._messages = self._messages, []
        return out
