"""Machine specifications: node compute rates and interconnect parameters.

The presets are calibrated to the machines in the paper's evaluation
(section 4.0):

* **IBM SP2** (NASA Ames): RS/6000 POWER2 nodes, 66.7 MHz clock, peak
  interconnect 40 MB/s.  The paper measures 10--31 Mflops/node sustained
  for this workload, so the effective node rate is set to 30 Mflops.
* **IBM SP** (CEWES): POWER2 Super Chip nodes, 135 MHz, interconnect
  110 MB/s.  Paper measures 16--52 Mflops/node; effective rate 55 Mflops.
* **Cray YMP/864** (single head): 333 Mflops peak; Table 6 implies one SP
  node sustains ~1.0--1.2 YMP units and one SP2 node ~0.5--0.7, giving an
  effective vector rate near 48 Mflops for this (well-vectorized) code.

Rates are *effective sustained* rates for the overset CFD workload, not
peak: the simulator converts charged flops to time with a single divide,
so all workload-dependent inefficiency is folded into the rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class NodeSpec:
    """A single compute node.

    Parameters
    ----------
    flops:
        Effective sustained floating-point rate in flop/s for this
        workload class.
    cache_boost:
        Multiplier applied when the working set per node drops below
        ``cache_points`` gridpoints.  Models the super-scalar speedups the
        paper attributes to improved cache behaviour at short loop lengths
        (section 4.1).  1.0 disables the effect.
    cache_points:
        Working-set threshold (gridpoints per node) below which
        ``cache_boost`` applies.
    """

    flops: float
    cache_boost: float = 1.0
    cache_points: int = 0

    def effective_flops(self, points_per_node: float | None = None) -> float:
        """Effective flop rate, optionally cache-adjusted for a working set."""
        rate = self.flops
        if (
            points_per_node is not None
            and self.cache_points > 0
            and points_per_node < self.cache_points
        ):
            rate *= self.cache_boost
        return rate


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point interconnect model (LogGP-lite).

    A message of ``n`` bytes sent at sender-clock ``t`` occupies the sender
    for ``overhead + n / bandwidth`` seconds (injection) and arrives at the
    destination ``latency`` seconds after injection completes.  Messages a
    rank sends to itself cost ``self_copy`` seconds per byte plus overhead.

    ``poll_overhead`` is charged for every non-blocking probe so that
    polling loops advance virtual time (and terminate).
    """

    latency: float
    bandwidth: float
    overhead: float = 5.0e-6
    poll_overhead: float = 1.0e-6
    self_copy: float = 1.0e-9  # s/byte for rank-local "messages"

    def injection_time(self, nbytes: int) -> float:
        """Time the sender is busy injecting ``nbytes`` into the network."""
        return self.overhead + nbytes / self.bandwidth

    def transfer_time(self, nbytes: int) -> float:
        """Total sender-clock to arrival delay for ``nbytes``."""
        return self.injection_time(nbytes) + self.latency


@dataclass(frozen=True)
class MachineSpec:
    """A homogeneous distributed-memory machine: N identical nodes + network."""

    name: str
    nodes: int
    node: NodeSpec
    network: NetworkSpec

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"machine needs >= 1 node, got {self.nodes}")

    def with_nodes(self, nodes: int) -> "MachineSpec":
        """Same machine with a different node count (for speedup sweeps)."""
        return replace(self, nodes=nodes)

    def compute_time(self, flops: float, points_per_node: float | None = None) -> float:
        """Seconds to execute ``flops`` on one node."""
        return flops / self.node.effective_flops(points_per_node)


def sp2(nodes: int = 1) -> MachineSpec:
    """IBM SP2 at NASA Ames (66.7 MHz POWER2, 40 MB/s switch)."""
    return MachineSpec(
        name="IBM SP2",
        nodes=nodes,
        node=NodeSpec(flops=30.0e6, cache_boost=1.15, cache_points=6000),
        network=NetworkSpec(latency=60.0e-6, bandwidth=40.0e6),
    )


def sp(nodes: int = 1) -> MachineSpec:
    """IBM SP at CEWES (135 MHz P2SC, 110 MB/s switch)."""
    return MachineSpec(
        name="IBM SP",
        nodes=nodes,
        node=NodeSpec(flops=55.0e6, cache_boost=1.25, cache_points=6000),
        network=NetworkSpec(latency=40.0e-6, bandwidth=110.0e6),
    )


def cray_ymp() -> MachineSpec:
    """Single-processor Cray YMP/864 head (Table 6 reference machine)."""
    return MachineSpec(
        name="Cray YMP/864 (1 cpu)",
        nodes=1,
        node=NodeSpec(flops=48.0e6),
        # Single node: network parameters are irrelevant but must exist.
        network=NetworkSpec(latency=1.0e-6, bandwidth=1.0e9),
    )


MACHINE_PRESETS = {"sp2": sp2, "sp": sp, "ymp": cray_ymp}
