"""Fail-stop fault injection for the simulated machine.

The paper's regime — long moving-body runs on tens of nodes, thousands
of timesteps — is exactly where fail-stop node loss dominates
operational cost on real machines.  This module models it for the
event-driven simulator: a :class:`FaultPlan` describes *when* ranks
fail, the scheduler (:mod:`repro.machine.scheduler`) enacts the plan —
marking the rank dead, draining its mailbox, black-holing messages
addressed to it — and surfaces the outcome to the driver as a typed
:class:`RankFailure` instead of an opaque deadlock.

Faults are **virtual-time deterministic**: a fault fires at a fixed
virtual time, at a fixed phase barrier (the k-th ``set_phase`` call on
the victim rank), or — at the driver level — at a fixed timestep.
Randomised plans (:meth:`FaultPlan.poisson`) draw fail times from a
seeded generator once, up front, so repeated runs of the same plan are
byte-for-byte identical.

Fault-spec string grammar (CLI ``--fault``)::

    rank=3@step=40     fail rank 3 at the start of measured timestep 40
    rank=2@t=0.5       fail rank 2 at virtual time 0.5 s
    rank=1@phase=12    fail rank 1 at its 12th set_phase call

What is *not* modeled: message corruption, duplication or loss on live
links (MPI guarantees delivery), byzantine behaviour, and transient
(recoverable) faults.  A failed rank never comes back; recovery means
redistributing its work over the survivors (see
:mod:`repro.resilience`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultSpec", "FaultPlan", "RankFailure"]


@dataclass(frozen=True)
class FaultSpec:
    """One fail-stop event.

    Exactly one trigger must be given:

    * ``time`` — virtual seconds (scheduler-level; the rank dies the
      moment its next event would start at or after this time);
    * ``phase_index`` — the rank dies *instead of* executing its
      ``phase_index``-th ``set_phase`` call (0-based, scheduler-level);
    * ``step`` — measured driver timestep (driver-level; the driver
      translates it into a phase trigger for the chunk covering it).
    """

    rank: int
    time: float | None = None
    phase_index: int | None = None
    step: int | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"fault rank must be >= 0, got {self.rank}")
        triggers = [
            t for t in (self.time, self.phase_index, self.step)
            if t is not None
        ]
        if len(triggers) != 1:
            raise ValueError(
                "exactly one of time / phase_index / step must be set, "
                f"got {self!r}"
            )
        if self.time is not None and self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.phase_index is not None and self.phase_index < 0:
            raise ValueError("phase_index must be >= 0")
        if self.step is not None and self.step < 0:
            raise ValueError("step must be >= 0")

    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        """Parse ``rank=3@step=40`` / ``rank=2@t=0.5`` / ``rank=1@phase=9``."""
        text = spec.strip()
        try:
            rank_part, trigger_part = text.split("@", 1)
            rkey, rval = rank_part.split("=", 1)
            tkey, tval = trigger_part.split("=", 1)
        except ValueError:
            raise ValueError(
                f"malformed fault spec {spec!r}; expected "
                "'rank=<r>@step=<s>', 'rank=<r>@t=<seconds>' or "
                "'rank=<r>@phase=<k>'"
            ) from None
        if rkey.strip() != "rank":
            raise ValueError(f"fault spec must start with 'rank=': {spec!r}")
        rank = int(rval)
        tkey = tkey.strip()
        if tkey == "step":
            return cls(rank=rank, step=int(tval))
        if tkey in ("t", "time"):
            return cls(rank=rank, time=float(tval))
        if tkey in ("phase", "barrier"):
            return cls(rank=rank, phase_index=int(tval))
        raise ValueError(
            f"unknown fault trigger {tkey!r} in {spec!r}; "
            "use step=, t= or phase="
        )

    def describe(self) -> str:
        if self.step is not None:
            return f"rank={self.rank}@step={self.step}"
        if self.time is not None:
            return f"rank={self.rank}@t={self.time:g}"
        return f"rank={self.rank}@phase={self.phase_index}"


class FaultPlan:
    """An immutable set of :class:`FaultSpec` events plus fast lookups.

    The scheduler consumes only ``time`` and ``phase_index`` triggers;
    ``step`` triggers belong to the driver, which converts them (one
    measured timestep = three phase barriers in OVERFLOW-D1) before
    handing the plan to a :class:`repro.machine.scheduler.Simulator`.
    """

    def __init__(self, faults=(), seed: int = 0):
        specs = []
        for f in faults:
            if isinstance(f, str):
                f = FaultSpec.parse(f)
            if not isinstance(f, FaultSpec):
                raise TypeError(f"not a FaultSpec: {f!r}")
            specs.append(f)
        self.faults: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        # Scheduler-facing lookups: earliest trigger per rank.
        self._time_by_rank: dict[int, float] = {}
        self._phase_by_rank: dict[int, int] = {}
        for f in self.faults:
            if f.time is not None:
                prev = self._time_by_rank.get(f.rank)
                if prev is None or f.time < prev:
                    self._time_by_rank[f.rank] = f.time
            elif f.phase_index is not None:
                prev = self._phase_by_rank.get(f.rank)
                if prev is None or f.phase_index < prev:
                    self._phase_by_rank[f.rank] = f.phase_index

    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, *specs: str) -> "FaultPlan":
        """Build a plan from fault-spec strings."""
        return cls([FaultSpec.parse(s) for s in specs])

    @classmethod
    def poisson(
        cls,
        nranks: int,
        mtbf: float,
        horizon: float,
        seed: int = 0,
        max_faults: int | None = None,
    ) -> "FaultPlan":
        """Seeded random plan: per-rank exponential fail times.

        Each rank draws one fail time from Exp(``mtbf``); draws beyond
        ``horizon`` virtual seconds mean the rank survives the run.
        Deterministic given ``seed`` (single up-front draw, no
        execution-order dependence).
        """
        import numpy as np

        if mtbf <= 0 or horizon <= 0:
            raise ValueError("mtbf and horizon must be positive")
        rng = np.random.default_rng(seed)
        draws = rng.exponential(scale=mtbf, size=nranks)
        faults = [
            FaultSpec(rank=r, time=float(t))
            for r, t in enumerate(draws)
            if t < horizon
        ]
        if max_faults is not None:
            faults = sorted(faults, key=lambda f: f.time)[:max_faults]
        return cls(faults, seed=seed)

    # -- scheduler-facing lookups ---------------------------------------

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def time_fault(self, rank: int) -> float | None:
        """Earliest virtual-time trigger for ``rank``, if any."""
        return self._time_by_rank.get(rank)

    def phase_fault(self, rank: int) -> int | None:
        """Earliest phase-barrier trigger for ``rank``, if any."""
        return self._phase_by_rank.get(rank)

    def step_faults(self) -> list[FaultSpec]:
        """Driver-level (timestep-triggered) specs, in declaration order."""
        return [f for f in self.faults if f.step is not None]

    def scheduler_faults(self) -> list[FaultSpec]:
        """Specs the scheduler can enact directly (time / phase)."""
        return [f for f in self.faults if f.step is None]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f.describe() for f in self.faults)
        return f"FaultPlan([{inner}])"


class RankFailure(RuntimeError):
    """One or more ranks fail-stopped; the simulation cannot complete.

    Raised by :meth:`repro.machine.scheduler.Simulator.run` (unless
    ``raise_on_failure=False``) once no further progress is possible
    and at least one rank was killed by the fault plan.  Carries enough
    structure for a driver to run failure detection and elastic
    recovery:

    * ``failed`` — ``{rank: virtual kill time}``;
    * ``time`` — virtual time of the wavefront when progress stopped
      (max over all rank clocks);
    * ``blocked`` — ``(rank, src, tag)`` for survivors stuck on
      receives that can never complete;
    * ``completed`` — ranks whose programs ran to normal completion.
    """

    def __init__(
        self,
        failed: dict[int, float],
        time: float,
        blocked: list[tuple[int, int, int]] = (),
        completed: list[int] = (),
        nranks: int = 0,
    ):
        self.failed = dict(failed)
        self.time = time
        self.blocked = list(blocked)
        self.completed = list(completed)
        self.nranks = nranks
        ranks = ", ".join(
            f"{r}@t={t:.6g}" for r, t in sorted(self.failed.items())
        )
        if nranks and len(self.failed) == nranks:
            head = f"all {nranks} ranks failed ({ranks})"
        else:
            head = (
                f"{len(self.failed)} of {nranks} ranks failed ({ranks}); "
                f"{len(self.blocked)} blocked, "
                f"{len(self.completed)} completed"
            )
        super().__init__(head)

    @property
    def failed_ranks(self) -> tuple[int, ...]:
        return tuple(sorted(self.failed))
