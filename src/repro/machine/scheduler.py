"""Conservative discrete-event scheduler for SimMPI rank programs.

The engine always advances the rank with the globally minimum virtual
time among (a) runnable ranks (key = their clock) and (b) blocked ranks
with a matching message already in their mailbox (key = the wake time,
``max(clock, arrival)``).  Because every future send must be issued by a
rank whose clock is at least that minimum, no message that could alter a
receive matching can arrive at or before the chosen key — the classic
conservative-PDES safety argument — so execution is deterministic and
independent of host scheduling.

Ties are broken by rank id, making runs byte-for-byte reproducible.

Two extensions support resilience experiments (:mod:`repro.resilience`):

* **Fault injection** — a :class:`repro.machine.faults.FaultPlan`
  fail-stops ranks at a virtual time or phase barrier.  A killed rank's
  mailbox is drained, messages addressed to it are black-holed, and,
  once no survivor can make progress, the scheduler raises a typed
  :class:`repro.machine.faults.RankFailure` (never a misleading
  :class:`DeadlockError`).
* **Warm-started clocks** — ``initial_clocks`` lets a driver split one
  logical epoch into several scheduler runs without perturbing virtual
  time: because matching, waking and tie-breaking depend only on
  virtual clocks (not host order), a run resumed from carried clocks is
  bit-identical to the unsplit run.  This is what makes checkpointing
  timing-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator

if TYPE_CHECKING:  # import would be circular at runtime (analysis -> machine)
    from repro.analysis.sanitizer import Sanitizer
    from repro.obs.tracer import Tracer

from repro.machine import event
from repro.machine.event import ANY_SOURCE, ANY_TAG, Mailbox, Message
from repro.machine.faults import FaultPlan, RankFailure
from repro.machine.metrics import MachineMetrics, RankMetrics
from repro.machine.simmpi import Comm, describe_tag
from repro.machine.spec import MachineSpec


class DeadlockError(RuntimeError):
    """Live ranks are blocked on receives that can never complete.

    Distinct from :class:`repro.machine.faults.RankFailure`: a deadlock
    is a protocol bug among healthy ranks, a rank failure is injected
    fail-stop loss.  The message reports every blocked rank, what it is
    waiting on (source, tag — with reserved tags named) and what its
    mailbox still holds, so protocol bugs are diagnosable from the
    exception alone.
    """


@dataclass
class SimulationResult:
    """Outcome of one simulated run."""

    elapsed: float
    returns: list[Any]
    metrics: MachineMetrics
    failed_ranks: tuple[int, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult(elapsed={self.elapsed:.6g}s, "
            f"ranks={self.metrics.nranks}, failed={list(self.failed_ranks)})"
        )


class _RankState:
    """Book-keeping for one rank's coroutine."""

    __slots__ = (
        "rank",
        "gen",
        "clock",
        "mailbox",
        "blocked_on",
        "phase",
        "metrics",
        "alive",
        "failed",
        "retval",
        "send_value",
        "fault_time",
        "fault_phase",
        "phases_set",
        "tacc",
    )

    def __init__(self, rank: int, gen: Generator):
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.mailbox = Mailbox()
        self.blocked_on: tuple[int, int] | None = None  # (src, tag) of a recv
        self.phase = "default"
        self.metrics = RankMetrics(rank)
        # Cached kind->seconds accumulator for the *current* phase,
        # bound lazily on first charge (so a phase with no charged time
        # never appears in the metrics — matching add_time semantics
        # bit-for-bit) and invalidated on every set_phase.
        self.tacc: dict | None = None
        self.alive = True
        self.failed = False  # fail-stopped by the fault plan
        self.retval: Any = None
        self.send_value: Any = None  # value to feed into the next gen.send
        self.fault_time: float | None = None
        self.fault_phase: int | None = None
        self.phases_set = 0  # set_phase calls executed so far


class Simulator:
    """Run a set of rank programs over a :class:`MachineSpec`.

    Programs are generator functions ``program(comm, *args) -> Generator``;
    their return value (via ``return``) is collected into
    :attr:`SimulationResult.returns` indexed by rank.

    Parameters
    ----------
    fault_plan:
        Optional :class:`repro.machine.faults.FaultPlan`; only its
        scheduler-level triggers (virtual time / phase index) are
        enacted — driver-level ``step`` triggers are ignored here.
    initial_clocks:
        Optional per-rank starting clocks (one per spawned rank).  Used
        to resume a split epoch: virtual time continues exactly where
        the previous run's clocks ended.
    initial_metrics:
        Optional per-rank :class:`repro.machine.metrics.RankMetrics` to
        continue accumulating into (one per spawned rank).  A split
        epoch that carries both clocks and metrics produces counters
        bit-identical to the unsplit run — the same additions happen in
        the same order on the same accumulators.
    """

    def __init__(
        self,
        machine: MachineSpec,
        trace: Callable[[str], None] | None = None,
        tracer: Tracer | None = None,
        fault_plan: FaultPlan | None = None,
        initial_clocks: list[float] | None = None,
        initial_metrics: list[RankMetrics] | None = None,
        sanitizer: Sanitizer | None = None,
        eager_hooks: bool = False,
    ):
        self.machine = machine
        self.trace = trace
        # Span tracing (repro.obs).  Disabled tracers are dropped here so
        # the per-event hot path is a single `is not None` test and the
        # simulated timings are bit-identical with tracing on or off.
        self._tracer = (
            tracer if tracer is not None and tracer.enabled else None
        )
        # Runtime correctness checking (repro.analysis.sanitizer).  Like
        # the tracer it is purely observational: hooks never charge
        # virtual time or change matching, so sanitized runs are
        # bit-identical to plain runs.
        self._sanitizer = sanitizer
        # Hook batching (default): the full Python ``on_send`` hook runs
        # only for the first message of each (tag, phase) key — every
        # later send with a seen key is a plain counter increment, and
        # plain receives are counted locally; both are folded back into
        # the sanitizer via ``add_batched_counts`` when the run ends.
        # This is lossless for findings (every sanitizer check keys on
        # the (tag, phase) pair, deduplicated) and drops the per-send
        # overhead on message-heavy runs (see repro.obs.perf.bench's
        # hook micro-benchmark).  ``eager_hooks=True`` restores one
        # hook call per message — same findings, same counts, more
        # Python overhead.
        self._eager_hooks = bool(eager_hooks)
        self._san_send_seen: set[tuple[int, str]] = set()
        self._san_sends = 0  # elided on_send calls (batched mode)
        self._san_recvs = 0  # elided on_recv calls (batched mode)
        self.fault_plan = fault_plan if fault_plan else None
        self.initial_clocks = (
            list(initial_clocks) if initial_clocks is not None else None
        )
        self.initial_metrics = (
            list(initial_metrics) if initial_metrics is not None else None
        )
        self._programs: list[tuple[Callable, tuple, dict]] = []
        self._failed: dict[int, float] = {}  # rank -> virtual kill time
        self.dropped_messages = 0  # sends black-holed at dead ranks

    # ------------------------------------------------------------------

    def spawn(self, program: Callable, *args, **kwargs) -> int:
        """Register one rank program; returns the rank it will run as."""
        if len(self._programs) >= self.machine.nodes:
            raise ValueError(
                f"machine has {self.machine.nodes} nodes; cannot spawn more ranks"
            )
        self._programs.append((program, args, kwargs))
        return len(self._programs) - 1

    def spawn_all(self, program: Callable, *args, **kwargs) -> None:
        """Register the same program on every node (SPMD style)."""
        for _ in range(self.machine.nodes):
            self.spawn(program, *args, **kwargs)

    # ------------------------------------------------------------------

    def run(
        self,
        max_events: int = 500_000_000,
        raise_on_failure: bool = True,
    ) -> SimulationResult:
        """Execute all rank programs to completion; returns the result.

        With ``raise_on_failure=False`` a run in which ranks were
        fail-stopped still returns (failed ranks contribute ``None``
        returns and appear in :attr:`SimulationResult.failed_ranks`);
        survivors blocked forever still raise :class:`RankFailure`,
        because their returns would be silently missing otherwise.
        """
        n = len(self._programs)
        if n == 0:
            raise ValueError("no rank programs spawned")
        if self.initial_clocks is not None and len(self.initial_clocks) != n:
            raise ValueError(
                f"initial_clocks has {len(self.initial_clocks)} entries "
                f"for {n} ranks"
            )
        if self.initial_metrics is not None and len(self.initial_metrics) != n:
            raise ValueError(
                f"initial_metrics has {len(self.initial_metrics)} entries "
                f"for {n} ranks"
            )
        # Message seq numbers restart at 0 every run: they are pure
        # tiebreakers (relative order within a run is unchanged), and
        # resetting makes mailbox provenance — including sanitizer race
        # witnesses — deterministic regardless of interpreter history.
        event.reset_sequence()
        if self._sanitizer is not None:
            self._sanitizer.begin_run(n)
        states = []
        for rank, (program, args, kwargs) in enumerate(self._programs):
            comm = Comm(rank, n, self.machine)
            if self._sanitizer is not None:
                comm._san = self._sanitizer
            state = _RankState(rank, program(comm, *args, **kwargs))
            if self.initial_clocks is not None:
                state.clock = float(self.initial_clocks[rank])
            if self.initial_metrics is not None:
                state.metrics = self.initial_metrics[rank]
            if self.fault_plan is not None:
                state.fault_time = self.fault_plan.time_fault(rank)
                state.fault_phase = self.fault_plan.phase_fault(rank)
            states.append(state)
        self._states = states

        events = 0
        while True:
            picked = self._pick_next(states)
            if picked is None:
                # No runnable or wakeable rank.  Blocked ranks whose
                # fault time is due die now (virtual time would pass
                # their fail point while the machine idles).
                if self._kill_overdue(states):
                    continue
                break
            state, key_time = picked
            if state.fault_time is not None and key_time >= state.fault_time:
                self._kill(state, max(state.clock, state.fault_time))
                continue
            events += 1
            if events > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            self._step(state)

        if self._sanitizer is not None and not self._eager_hooks:
            # Fold the batched (elided-hook) counters back in before any
            # exit path, so sanitizer totals match eager mode even when
            # the run ends in RankFailure/DeadlockError below.
            self._sanitizer.add_batched_counts(
                sends=self._san_sends, recvs=self._san_recvs
            )
            self._san_sends = self._san_recvs = 0

        blocked = [s for s in states if s.alive]
        if self._failed and (blocked or raise_on_failure):
            raise RankFailure(
                failed=dict(self._failed),
                time=max(s.clock for s in states),
                blocked=[
                    (s.rank, s.blocked_on[0], s.blocked_on[1])
                    for s in blocked
                ],
                completed=[
                    s.rank
                    for s in states
                    if not s.alive and not s.failed
                ],
                nranks=n,
            )
        if blocked:
            raise DeadlockError(self._deadlock_message(states, blocked))

        if self._sanitizer is not None:
            # Finalize checks (collective cross-check, mailbox leaks)
            # only make sense for runs that completed cleanly; a
            # fail-stopped run legitimately leaves both inconsistent.
            self._sanitizer.end_run(states, failed=bool(self._failed))

        for s in states:
            s.metrics.final_clock = s.clock
        metrics = MachineMetrics([s.metrics for s in states])
        return SimulationResult(
            elapsed=metrics.elapsed,
            returns=[s.retval for s in states],
            metrics=metrics,
            failed_ranks=tuple(sorted(self._failed)),
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _deadlock_message(states: list[_RankState], blocked) -> str:
        """Diagnostic text: who is blocked, on what, with what pending."""
        n = len(states)
        completed = sum(1 for s in states if not s.alive and not s.failed)
        lines = [
            f"deadlock: {len(blocked)} of {n} ranks blocked forever "
            f"({completed} completed normally)"
        ]
        for s in blocked:
            src, tag = s.blocked_on
            src_txt = "ANY_SOURCE" if src == ANY_SOURCE else str(src)
            pending = [
                f"(src={m.src}, tag={describe_tag(m.tag)})"
                for m in s.mailbox.pending()
            ]
            lines.append(
                f"  rank {s.rank} blocked on recv(src={src_txt}, "
                f"tag={describe_tag(tag)}) at t={s.clock:.6g}; "
                f"mailbox holds {len(pending)} unmatched: "
                f"[{', '.join(pending)}]"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------

    def _kill(self, state: _RankState, time: float) -> None:
        """Fail-stop one rank: close its program, drain its mailbox."""
        state.clock = time
        state.alive = False
        state.failed = True
        state.blocked_on = None
        state.gen.close()
        lost = state.mailbox.drain()
        self.dropped_messages += len(lost)
        self._failed[state.rank] = time
        if self._tracer is not None:
            self._tracer.mark(
                time, "rank_failure", rank=state.rank, lost_messages=len(lost)
            )
        if self.trace is not None:  # pragma: no cover - debugging aid
            self.trace(
                f"t={time:.6g} rank{state.rank} FAIL-STOP "
                f"({len(lost)} mailbox messages lost)"
            )

    def _kill_overdue(self, states: list[_RankState]) -> bool:
        """Kill blocked ranks whose virtual-time fault is due; True if any."""
        killed = False
        horizon = max((s.clock for s in states), default=0.0)
        for s in states:
            if s.alive and s.fault_time is not None:
                self._kill(s, max(horizon, s.fault_time))
                killed = True
        return killed

    # ------------------------------------------------------------------

    @staticmethod
    def _pick_next(
        states: list[_RankState],
    ) -> tuple[_RankState, float] | None:
        """Rank with minimal next-event time (see module docstring)."""
        best: _RankState | None = None
        best_key: tuple[float, int] | None = None
        for s in states:
            if not s.alive:
                continue
            if s.blocked_on is None:
                key = (s.clock, s.rank)
            else:
                src, tag = s.blocked_on
                msg = s.mailbox.peek_matching(src, tag, s.clock, allow_future=True)
                if msg is None:
                    continue  # blocked, not wakeable yet
                key = (max(s.clock, msg.arrival_time), s.rank)
            if best_key is None or key < best_key:
                best, best_key = s, key
        if best is None:
            return None
        return best, best_key[0]

    def _step(self, state: _RankState) -> None:
        """Advance one rank by one primitive operation."""
        if state.blocked_on is not None:
            # Wakeable blocked receive: complete it now.
            src, tag = state.blocked_on
            if self._sanitizer is not None and src == ANY_SOURCE:
                # Messages may have accumulated while the rank slept;
                # re-check the wildcard race at wake time (findings are
                # deduplicated by message sequence set).
                self._sanitizer.on_wildcard_recv(
                    state.clock, state.rank, tag, state.mailbox, blocking=True
                )
            msg = state.mailbox.pop_matching(src, tag, state.clock, allow_future=True)
            assert msg is not None, "scheduler picked a non-wakeable blocked rank"
            self._complete_recv(state, msg)
            state.blocked_on = None
            return
        try:
            op = state.gen.send(state.send_value)
        except StopIteration as stop:
            state.alive = False
            state.retval = stop.value
            return
        state.send_value = None
        self._dispatch(state, op)

    # ------------------------------------------------------------------

    def _dispatch(self, state: _RankState, op: tuple) -> None:
        kind = op[0]
        if kind == "compute":
            _, dt, flops = op
            if dt < 0:
                raise ValueError(
                    f"negative time increment {dt} in phase {state.phase!r}"
                )
            t0 = state.clock
            state.clock += dt
            acc = state.tacc
            if acc is None:
                acc = state.tacc = state.metrics.time[state.phase]
            acc["compute"] += dt
            if flops:
                state.metrics.add_flops(state.phase, flops)
            if self._tracer is not None:
                self._tracer.op(
                    state.rank, state.phase, "compute", t0, state.clock, flops
                )
        elif kind == "inject":
            _, dst, tag, payload, nbytes = op
            self._inject(state, dst, tag, payload, nbytes)
        elif kind == "recv":
            _, src, tag = op
            if self._sanitizer is not None and src == ANY_SOURCE:
                self._sanitizer.on_wildcard_recv(
                    state.clock, state.rank, tag, state.mailbox, blocking=True
                )
            msg = state.mailbox.pop_matching(src, tag, state.clock, allow_future=True)
            if msg is not None:
                self._complete_recv(state, msg)
            else:
                state.blocked_on = (src, tag)
        elif kind == "tryrecv":
            _, src, tag = op
            self._charge_poll(state)
            if self._sanitizer is not None and src == ANY_SOURCE:
                self._sanitizer.on_wildcard_recv(
                    state.clock, state.rank, tag, state.mailbox,
                    blocking=False,
                )
            msg = state.mailbox.pop_matching(src, tag, state.clock, allow_future=False)
            if msg is not None:
                state.metrics.messages_received += 1
                if self._sanitizer is not None:
                    if self._eager_hooks:
                        self._sanitizer.on_recv(state.clock, state.rank, msg)
                    else:
                        self._san_recvs += 1
                if self._tracer is not None:
                    self._tracer.recv(
                        state.clock, state.rank, msg.src, msg.tag,
                        msg.nbytes, state.phase,
                    )
            state.send_value = msg
        elif kind == "drain":
            _, src, tag = op
            self._charge_poll(state)
            msgs = state.mailbox.pop_all_matching(src, tag, state.clock)
            if msgs:
                state.metrics.messages_received += len(msgs)
                if self._tracer is not None:
                    for m in msgs:
                        self._tracer.recv(
                            state.clock, state.rank, m.src, m.tag,
                            m.nbytes, state.phase,
                        )
            if self._sanitizer is not None:
                self._sanitizer.on_drain(
                    state.clock, state.rank, src, tag, msgs
                )
            state.send_value = msgs
        elif kind == "iprobe":
            _, src, tag = op
            self._charge_poll(state)
            msg = state.mailbox.peek_matching(src, tag, state.clock, allow_future=False)
            state.send_value = msg is not None
        elif kind == "now":
            state.send_value = state.clock
        elif kind == "set_phase":
            if (
                state.fault_phase is not None
                and state.phases_set >= state.fault_phase
            ):
                self._kill(state, state.clock)
                return
            state.phases_set += 1
            old, state.phase = state.phase, op[1]
            state.tacc = None  # re-bind the time accumulator lazily
            state.send_value = old
            if self._tracer is not None:
                self._tracer.phase(state.rank, state.clock, state.phase)
        else:  # pragma: no cover - API misuse guard
            raise ValueError(f"unknown primitive op {kind!r} from rank {state.rank}")

    def _inject(self, state: _RankState, dst: int, tag: int, payload, nbytes: int) -> None:
        net = self.machine.network
        if dst == state.rank:
            dt = net.overhead + nbytes * net.self_copy
            arrival = state.clock + dt
        else:
            dt = net.injection_time(nbytes)
            arrival = state.clock + dt + net.latency
        t0 = state.clock
        state.clock += dt
        acc = state.tacc
        if acc is None:
            acc = state.tacc = state.metrics.time[state.phase]
        acc["comm"] += dt
        state.metrics.messages_sent += 1
        state.metrics.bytes_sent += nbytes
        if self._tracer is not None:
            self._tracer.op(
                state.rank, state.phase, "comm", t0, state.clock,
                nbytes=nbytes,
            )
            self._tracer.send(
                t0, state.rank, dst, tag, nbytes, state.phase
            )
        target = self._states[dst]
        if self._sanitizer is not None:
            if self._eager_hooks:
                self._sanitizer.on_send(
                    t0, state.rank, dst, tag, nbytes, state.phase,
                    dropped=target.failed,
                )
            else:
                key = (tag, state.phase)
                if key in self._san_send_seen:
                    # Every sanitizer send check keys on (tag, phase)
                    # and is deduplicated, so a repeat is pure counting.
                    self._san_sends += 1
                else:
                    self._san_send_seen.add(key)
                    self._sanitizer.on_send(
                        t0, state.rank, dst, tag, nbytes, state.phase,
                        dropped=target.failed,
                    )
        if target.failed:
            # Fail-stop semantics: the network can tell nobody is
            # listening; the message is black-holed (sender still paid
            # the injection cost, as on a real machine).
            self.dropped_messages += 1
            if self.trace is not None:  # pragma: no cover - debugging aid
                self.trace(
                    f"t={state.clock:.6g} rank{state.rank} -> DEAD rank{dst} "
                    f"tag={tag} bytes={nbytes} dropped"
                )
            return
        msg = Message(
            src=state.rank,
            dst=dst,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            send_time=state.clock,
            arrival_time=arrival,
        )
        target.mailbox.deposit(msg)
        if self.trace is not None:  # pragma: no cover - debugging aid
            self.trace(
                f"t={state.clock:.6g} rank{state.rank} -> rank{dst} "
                f"tag={tag} bytes={nbytes} arrives={arrival:.6g}"
            )

    def _complete_recv(self, state: _RankState, msg: Message) -> None:
        t0 = state.clock
        wait = max(0.0, msg.arrival_time - state.clock)
        state.clock = max(state.clock, msg.arrival_time)
        acc = state.tacc
        if acc is None:
            acc = state.tacc = state.metrics.time[state.phase]
        acc["wait"] += wait
        state.metrics.messages_received += 1
        if self._sanitizer is not None:
            if self._eager_hooks:
                self._sanitizer.on_recv(state.clock, state.rank, msg)
            else:
                self._san_recvs += 1
        state.send_value = msg
        if self._tracer is not None:
            self._tracer.op(
                state.rank, state.phase, "wait", t0, state.clock,
                nbytes=msg.nbytes,
            )
            self._tracer.recv(
                state.clock, state.rank, msg.src, msg.tag,
                msg.nbytes, state.phase,
            )

    def _charge_poll(self, state: _RankState) -> None:
        dt = self.machine.network.poll_overhead
        t0 = state.clock
        state.clock += dt
        acc = state.tacc
        if acc is None:
            acc = state.tacc = state.metrics.time[state.phase]
        acc["comm"] += dt
        if self._tracer is not None:
            self._tracer.op(state.rank, state.phase, "comm", t0, state.clock)
