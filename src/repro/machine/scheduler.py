"""Conservative discrete-event scheduler for SimMPI rank programs.

The engine always advances the rank with the globally minimum virtual
time among (a) runnable ranks (key = their clock) and (b) blocked ranks
with a matching message already in their mailbox (key = the wake time,
``max(clock, arrival)``).  Because every future send must be issued by a
rank whose clock is at least that minimum, no message that could alter a
receive matching can arrive at or before the chosen key — the classic
conservative-PDES safety argument — so execution is deterministic and
independent of host scheduling.

Ties are broken by rank id, making runs byte-for-byte reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.machine.event import ANY_SOURCE, ANY_TAG, Mailbox, Message
from repro.machine.metrics import MachineMetrics, RankMetrics
from repro.machine.simmpi import Comm
from repro.machine.spec import MachineSpec


class DeadlockError(RuntimeError):
    """All live ranks are blocked on receives that can never complete."""


@dataclass
class SimulationResult:
    """Outcome of one simulated run."""

    elapsed: float
    returns: list[Any]
    metrics: MachineMetrics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult(elapsed={self.elapsed:.6g}s, "
            f"ranks={self.metrics.nranks})"
        )


class _RankState:
    """Book-keeping for one rank's coroutine."""

    __slots__ = (
        "rank",
        "gen",
        "clock",
        "mailbox",
        "blocked_on",
        "phase",
        "metrics",
        "alive",
        "retval",
        "send_value",
    )

    def __init__(self, rank: int, gen: Generator):
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.mailbox = Mailbox()
        self.blocked_on: tuple[int, int] | None = None  # (src, tag) of a recv
        self.phase = "default"
        self.metrics = RankMetrics(rank)
        self.alive = True
        self.retval: Any = None
        self.send_value: Any = None  # value to feed into the next gen.send


class Simulator:
    """Run a set of rank programs over a :class:`MachineSpec`.

    Programs are generator functions ``program(comm, *args) -> Generator``;
    their return value (via ``return``) is collected into
    :attr:`SimulationResult.returns` indexed by rank.
    """

    def __init__(
        self,
        machine: MachineSpec,
        trace: Callable[[str], None] | None = None,
        tracer=None,
    ):
        self.machine = machine
        self.trace = trace
        # Span tracing (repro.obs).  Disabled tracers are dropped here so
        # the per-event hot path is a single `is not None` test and the
        # simulated timings are bit-identical with tracing on or off.
        self._tracer = (
            tracer if tracer is not None and tracer.enabled else None
        )
        self._programs: list[tuple[Callable, tuple, dict]] = []

    # ------------------------------------------------------------------

    def spawn(self, program: Callable, *args, **kwargs) -> int:
        """Register one rank program; returns the rank it will run as."""
        if len(self._programs) >= self.machine.nodes:
            raise ValueError(
                f"machine has {self.machine.nodes} nodes; cannot spawn more ranks"
            )
        self._programs.append((program, args, kwargs))
        return len(self._programs) - 1

    def spawn_all(self, program: Callable, *args, **kwargs) -> None:
        """Register the same program on every node (SPMD style)."""
        for _ in range(self.machine.nodes):
            self.spawn(program, *args, **kwargs)

    # ------------------------------------------------------------------

    def run(self, max_events: int = 500_000_000) -> SimulationResult:
        """Execute all rank programs to completion; returns the result."""
        n = len(self._programs)
        if n == 0:
            raise ValueError("no rank programs spawned")
        states = []
        for rank, (program, args, kwargs) in enumerate(self._programs):
            comm = Comm(rank, n, self.machine)
            states.append(_RankState(rank, program(comm, *args, **kwargs)))
        self._states = states

        events = 0
        while True:
            state = self._pick_next(states)
            if state is None:
                break
            events += 1
            if events > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            self._step(state)

        dead = [s for s in states if s.alive]
        if dead:
            detail = "; ".join(
                f"rank {s.rank} blocked on recv(src={s.blocked_on[0]}, "
                f"tag={s.blocked_on[1]}) at t={s.clock:.6g} "
                f"(mailbox: {[(m.src, m.tag) for m in s.mailbox.pending()]})"
                for s in dead
            )
            raise DeadlockError(f"deadlock among {len(dead)} ranks: {detail}")

        for s in states:
            s.metrics.final_clock = s.clock
        metrics = MachineMetrics([s.metrics for s in states])
        return SimulationResult(
            elapsed=metrics.elapsed,
            returns=[s.retval for s in states],
            metrics=metrics,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _pick_next(states: list[_RankState]) -> _RankState | None:
        """Rank with minimal next-event time (see module docstring)."""
        best: _RankState | None = None
        best_key: tuple[float, int] | None = None
        for s in states:
            if not s.alive:
                continue
            if s.blocked_on is None:
                key = (s.clock, s.rank)
            else:
                src, tag = s.blocked_on
                msg = s.mailbox.peek_matching(src, tag, s.clock, allow_future=True)
                if msg is None:
                    continue  # blocked, not wakeable yet
                key = (max(s.clock, msg.arrival_time), s.rank)
            if best_key is None or key < best_key:
                best, best_key = s, key
        return best

    def _step(self, state: _RankState) -> None:
        """Advance one rank by one primitive operation."""
        if state.blocked_on is not None:
            # Wakeable blocked receive: complete it now.
            src, tag = state.blocked_on
            msg = state.mailbox.pop_matching(src, tag, state.clock, allow_future=True)
            assert msg is not None, "scheduler picked a non-wakeable blocked rank"
            self._complete_recv(state, msg)
            state.blocked_on = None
            return
        try:
            op = state.gen.send(state.send_value)
        except StopIteration as stop:
            state.alive = False
            state.retval = stop.value
            return
        state.send_value = None
        self._dispatch(state, op)

    # ------------------------------------------------------------------

    def _dispatch(self, state: _RankState, op: tuple) -> None:
        kind = op[0]
        if kind == "compute":
            _, dt, flops = op
            t0 = state.clock
            state.clock += dt
            state.metrics.add_time(state.phase, "compute", dt)
            if flops:
                state.metrics.add_flops(state.phase, flops)
            if self._tracer is not None:
                self._tracer.op(
                    state.rank, state.phase, "compute", t0, state.clock, flops
                )
        elif kind == "inject":
            _, dst, tag, payload, nbytes = op
            self._inject(state, dst, tag, payload, nbytes)
        elif kind == "recv":
            _, src, tag = op
            msg = state.mailbox.pop_matching(src, tag, state.clock, allow_future=True)
            if msg is not None:
                self._complete_recv(state, msg)
            else:
                state.blocked_on = (src, tag)
        elif kind == "tryrecv":
            _, src, tag = op
            self._charge_poll(state)
            msg = state.mailbox.pop_matching(src, tag, state.clock, allow_future=False)
            if msg is not None:
                state.metrics.messages_received += 1
            state.send_value = msg
        elif kind == "iprobe":
            _, src, tag = op
            self._charge_poll(state)
            msg = state.mailbox.peek_matching(src, tag, state.clock, allow_future=False)
            state.send_value = msg is not None
        elif kind == "now":
            state.send_value = state.clock
        elif kind == "set_phase":
            old, state.phase = state.phase, op[1]
            state.send_value = old
            if self._tracer is not None:
                self._tracer.phase(state.rank, state.clock, state.phase)
        else:  # pragma: no cover - API misuse guard
            raise ValueError(f"unknown primitive op {kind!r} from rank {state.rank}")

    def _inject(self, state: _RankState, dst: int, tag: int, payload, nbytes: int) -> None:
        net = self.machine.network
        if dst == state.rank:
            dt = net.overhead + nbytes * net.self_copy
            arrival = state.clock + dt
        else:
            dt = net.injection_time(nbytes)
            arrival = state.clock + dt + net.latency
        t0 = state.clock
        state.clock += dt
        state.metrics.add_time(state.phase, "comm", dt)
        state.metrics.messages_sent += 1
        state.metrics.bytes_sent += nbytes
        if self._tracer is not None:
            self._tracer.op(
                state.rank, state.phase, "comm", t0, state.clock,
                nbytes=nbytes,
            )
        msg = Message(
            src=state.rank,
            dst=dst,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            send_time=state.clock,
            arrival_time=arrival,
        )
        self._states[dst].mailbox.deposit(msg)
        if self.trace is not None:  # pragma: no cover - debugging aid
            self.trace(
                f"t={state.clock:.6g} rank{state.rank} -> rank{dst} "
                f"tag={tag} bytes={nbytes} arrives={arrival:.6g}"
            )

    def _complete_recv(self, state: _RankState, msg: Message) -> None:
        t0 = state.clock
        wait = max(0.0, msg.arrival_time - state.clock)
        state.clock = max(state.clock, msg.arrival_time)
        state.metrics.add_time(state.phase, "wait", wait)
        state.metrics.messages_received += 1
        state.send_value = msg
        if self._tracer is not None:
            self._tracer.op(
                state.rank, state.phase, "wait", t0, state.clock,
                nbytes=msg.nbytes,
            )

    def _charge_poll(self, state: _RankState) -> None:
        dt = self.machine.network.poll_overhead
        t0 = state.clock
        state.clock += dt
        state.metrics.add_time(state.phase, "comm", dt)
        if self._tracer is not None:
            self._tracer.op(state.rank, state.phase, "comm", t0, state.clock)
