"""Structured grid infrastructure for the overset (Chimera) scheme.

Component grids are body-fitted curvilinear grids or uniform Cartesian
background grids that overlap one another by one or more cells (paper
section 2.0).  This subpackage provides:

* :class:`CurvilinearGrid` — structured grids with explicit coordinates
  (2-D or 3-D), coarsen/refine for the paper's scale-up study;
* :class:`CartesianGrid` — uniform grids fully described by the paper's
  "seven parameters" (bounding box + spacing, section 5.0);
* index-space boxes and prime-factor subdomain decomposition helpers
  used by the static load balancer;
* axis-aligned bounding boxes used for donor-search routing;
* rigid-motion transforms applied to moving component grids.
"""

from repro.grids.bbox import AABB
from repro.grids.structured import BoundaryFace, CurvilinearGrid
from repro.grids.cartesian import CartesianGrid
from repro.grids.subdomain import Box, Subdomain, interior_face_points
from repro.grids.motion import RigidMotion
from repro.grids.gridmetrics import Metrics2D, metrics2d
from repro.grids import generators

__all__ = [
    "AABB",
    "BoundaryFace",
    "CurvilinearGrid",
    "CartesianGrid",
    "Box",
    "Subdomain",
    "interior_face_points",
    "RigidMotion",
    "Metrics2D",
    "metrics2d",
    "generators",
]
