"""Rigid-body transforms applied to moving component grids.

Chimera moving-grid calculations move whole component grids rigidly
(paper section 2.0: "unsteady moving-grid calculations can be performed
without stretching or distorting the respective grid systems").  A
:class:`RigidMotion` is ``x' = R @ (x - c) + c + t`` with rotation R
about center c plus translation t, in 2-D or 3-D.
"""

from __future__ import annotations

import numpy as np


class RigidMotion:
    """An affine rigid transform (rotation about a center + translation)."""

    def __init__(self, rotation: np.ndarray, translation, center=None):
        self.rotation = np.asarray(rotation, dtype=float)
        self.translation = np.asarray(translation, dtype=float)
        ndim = self.translation.shape[0]
        if self.rotation.shape != (ndim, ndim):
            raise ValueError(
                f"rotation {self.rotation.shape} inconsistent with "
                f"translation dim {ndim}"
            )
        self.center = (
            np.zeros(ndim) if center is None else np.asarray(center, dtype=float)
        )
        # Orthonormality check: R @ R.T == I within tolerance.
        err = np.abs(self.rotation @ self.rotation.T - np.eye(ndim)).max()
        if err > 1e-9:
            raise ValueError(f"rotation is not orthonormal (error {err:.2e})")

    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, ndim: int) -> "RigidMotion":
        return cls(np.eye(ndim), np.zeros(ndim))

    @classmethod
    def translation_of(cls, vec) -> "RigidMotion":
        vec = np.asarray(vec, dtype=float)
        return cls(np.eye(vec.shape[0]), vec)

    @classmethod
    def rotation2d(cls, angle: float, center=None) -> "RigidMotion":
        """2-D rotation by ``angle`` radians about ``center``."""
        c, s = np.cos(angle), np.sin(angle)
        return cls(np.array([[c, -s], [s, c]]), np.zeros(2), center)

    @classmethod
    def rotation3d(cls, axis, angle: float, center=None) -> "RigidMotion":
        """3-D rotation by ``angle`` radians about unit vector ``axis``
        through ``center`` (Rodrigues formula)."""
        a = np.asarray(axis, dtype=float)
        norm = np.linalg.norm(a)
        if norm == 0:
            raise ValueError("axis must be nonzero")
        a = a / norm
        K = np.array(
            [[0, -a[2], a[1]], [a[2], 0, -a[0]], [-a[1], a[0], 0]]
        )
        R = np.eye(3) + np.sin(angle) * K + (1 - np.cos(angle)) * (K @ K)
        return cls(R, np.zeros(3), center)

    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.translation.shape[0]

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform points of shape (..., ndim); returns a new array."""
        pts = np.asarray(points, dtype=float)
        rel = pts - self.center
        moved = rel @ self.rotation.T
        return moved + self.center + self.translation

    def then(self, other: "RigidMotion") -> "RigidMotion":
        """Composition: apply ``self`` first, then ``other``.

        The composite is expressed with center at the origin.
        """
        # x2 = R2 (R1 (x - c1) + c1 + t1 - c2) + c2 + t2 = R x + d
        R = other.rotation @ self.rotation
        d = self.apply(np.zeros(self.ndim))
        d = other.apply(d)
        return RigidMotion(R, d, center=np.zeros(self.ndim))

    def inverse(self) -> "RigidMotion":
        Rinv = self.rotation.T
        # x = Rinv (x' - c - t) + c  ->  express with origin center.
        d = -(Rinv @ (self.translation + self.center)) + self.center
        return RigidMotion(Rinv, d, center=np.zeros(self.ndim))

    def is_identity(self, tol: float = 1e-12) -> bool:
        return bool(
            np.abs(self.rotation - np.eye(self.ndim)).max() <= tol
            and np.abs(self.apply(np.zeros(self.ndim))).max() <= tol
        )

    def __repr__(self) -> str:
        return (
            f"RigidMotion(ndim={self.ndim}, t={self.translation.tolist()}, "
            f"c={self.center.tolist()})"
        )
