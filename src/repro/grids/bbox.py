"""Axis-aligned bounding boxes.

Bounding boxes drive the DCF3D search-request routing (paper section
2.2): each processor broadcasts the box of its grid portion at start-up,
and search requests are sent to the processor whose box contains the
inter-grid boundary point.  Boxes are inflated by a small margin so that
points near a subdomain face are still routed somewhere useful.
"""

from __future__ import annotations

import numpy as np


class AABB:
    """Axis-aligned box in 2-D or 3-D physical space."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ValueError("lo/hi must be 1-D arrays of equal length")
        if np.any(self.hi < self.lo):
            raise ValueError(f"empty box: lo={self.lo}, hi={self.hi}")

    @classmethod
    def of_points(cls, points: np.ndarray) -> "AABB":
        """Smallest box containing ``points`` of shape (n, ndim)."""
        pts = np.asarray(points, dtype=float)
        if pts.size == 0:
            raise ValueError("cannot bound zero points")
        flat = pts.reshape(-1, pts.shape[-1])
        return cls(flat.min(axis=0), flat.max(axis=0))

    @property
    def ndim(self) -> int:
        return self.lo.shape[0]

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    def volume(self) -> float:
        return float(np.prod(self.extent))

    def inflated(self, margin: float) -> "AABB":
        """Box grown by ``margin`` on every side (may be relative: a
        negative margin shrinks, which can raise on over-shrink)."""
        return AABB(self.lo - margin, self.hi + margin)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test; returns a bool array of len(points)."""
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        inside = np.all((pts >= self.lo) & (pts <= self.hi), axis=-1)
        return bool(inside[0]) if single else inside

    def intersects(self, other: "AABB") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def union(self, other: "AABB") -> "AABB":
        return AABB(
            np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi)
        )

    def intersection(self, other: "AABB") -> "AABB | None":
        """Overlap box, or None when disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(hi < lo):
            return None
        return AABB(lo, hi)

    def __repr__(self) -> str:
        return f"AABB(lo={self.lo.tolist()}, hi={self.hi.tolist()})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, AABB):
            return NotImplemented
        return bool(
            np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi)
        )

    def __hash__(self):  # boxes are mutable-array holders; forbid hashing
        raise TypeError("AABB is unhashable")
