"""Curvilinear structured component grids.

A :class:`CurvilinearGrid` stores node coordinates as an array of shape
``(ni, nj, ndim)`` in 2-D or ``(ni, nj, nk, ndim)`` in 3-D.  Grids may be
flagged viscous (Navier–Stokes terms active) and carry a turbulence
model, which affects the per-point work estimate of the flow solver
(paper section 3.0 notes this variation is modest for the cases run).

``coarsen``/``refine`` implement the paper's scale-up construction
(section 4.1): coarsening removes every other gridpoint; refinement
inserts a midpoint between neighbours — each changes the point count by
roughly 2**ndim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grids.bbox import AABB

_FACES_2D = ("imin", "imax", "jmin", "jmax")
_FACES_3D = _FACES_2D + ("kmin", "kmax")


@dataclass(frozen=True)
class BoundaryFace:
    """One logical face of a grid flagged with a boundary kind.

    ``kind`` is one of ``wall`` (solid surface: cuts holes in overlapping
    grids and receives no-slip/slip conditions), ``farfield``, ``overset``
    (outer fringe: boundary values interpolated from donor grids), or
    ``periodic`` (O-grid wrap in i).
    """

    face: str  # imin/imax/jmin/jmax/kmin/kmax
    kind: str  # wall/farfield/overset/periodic

    def __post_init__(self):
        if self.face not in _FACES_3D:
            raise ValueError(f"unknown face {self.face!r}")
        if self.kind not in ("wall", "farfield", "overset", "periodic"):
            raise ValueError(f"unknown boundary kind {self.kind!r}")


class CurvilinearGrid:
    """A structured, body-fitted component grid."""

    def __init__(
        self,
        name: str,
        xyz: np.ndarray,
        boundaries: tuple[BoundaryFace, ...] = (),
        viscous: bool = False,
        turbulence: bool = False,
    ):
        xyz = np.ascontiguousarray(xyz, dtype=float)
        if xyz.ndim not in (3, 4) or xyz.shape[-1] != xyz.ndim - 1:
            raise ValueError(
                f"xyz must be (ni, nj, 2) or (ni, nj, nk, 3); got {xyz.shape}"
            )
        if any(d < 2 for d in xyz.shape[:-1]):
            raise ValueError(f"need >= 2 points per direction; got {xyz.shape}")
        self.name = name
        self.xyz = xyz
        self.boundaries = tuple(boundaries)
        self.viscous = viscous
        self.turbulence = turbulence
        for b in self.boundaries:
            if self.ndim == 2 and b.face in ("kmin", "kmax"):
                raise ValueError(f"face {b.face} invalid on a 2-D grid")

    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.xyz.shape[-1]

    @property
    def dims(self) -> tuple[int, ...]:
        """Point counts per index direction."""
        return self.xyz.shape[:-1]

    @property
    def npoints(self) -> int:
        return int(np.prod(self.dims))

    @property
    def ncells(self) -> int:
        return int(np.prod([d - 1 for d in self.dims]))

    def points_flat(self) -> np.ndarray:
        """View of the coordinates as (npoints, ndim), C order."""
        return self.xyz.reshape(-1, self.ndim)

    def bounding_box(self) -> AABB:
        return AABB.of_points(self.points_flat())

    def with_coordinates(self, xyz: np.ndarray) -> "CurvilinearGrid":
        """Same grid (flags, boundaries) with new node coordinates —
        how moving grids are updated each timestep."""
        return CurvilinearGrid(
            self.name, xyz, self.boundaries, self.viscous, self.turbulence
        )

    # ------------------------------------------------------------------

    def wall_faces(self) -> tuple[BoundaryFace, ...]:
        return tuple(b for b in self.boundaries if b.kind == "wall")

    def face_points(self, face: str) -> np.ndarray:
        """Coordinates of one logical face, shape (..., ndim)."""
        sl = self._face_slicer(face)
        return self.xyz[sl]

    def face_index(self, face: str) -> np.ndarray:
        """Flat point indices making up one logical face."""
        idx = np.arange(self.npoints).reshape(self.dims)
        return idx[self._face_slicer(face)].ravel()

    def _face_slicer(self, face: str):
        faces = _FACES_2D if self.ndim == 2 else _FACES_3D
        if face not in faces:
            raise ValueError(f"face {face!r} invalid for {self.ndim}-D grid")
        axis = {"i": 0, "j": 1, "k": 2}[face[0]]
        pos = 0 if face.endswith("min") else -1
        sl: list = [slice(None)] * self.ndim
        sl[axis] = pos
        return tuple(sl)

    # ------------------------------------------------------------------
    # scale-up study support (paper section 4.1)
    # ------------------------------------------------------------------

    def coarsened(self) -> "CurvilinearGrid":
        """Remove every other gridpoint (always keeping the last point so
        the physical extent is preserved)."""
        sl = []
        for d in self.dims:
            keep = list(range(0, d, 2))
            if keep[-1] != d - 1:
                keep.append(d - 1)
            sl.append(np.array(keep))
        out = self.xyz
        for axis, keep in enumerate(sl):
            out = np.take(out, keep, axis=axis)
        return self.with_coordinates(out)

    def refined(self) -> "CurvilinearGrid":
        """Insert a midpoint between neighbouring points in every
        direction: point count grows by about 2**ndim."""
        out = self.xyz
        for axis in range(self.ndim):
            lo = np.take(out, range(out.shape[axis] - 1), axis=axis)
            hi = np.take(out, range(1, out.shape[axis]), axis=axis)
            mid = 0.5 * (lo + hi)
            n = out.shape[axis]
            shape = list(out.shape)
            shape[axis] = 2 * n - 1
            merged = np.empty(shape, dtype=float)
            sl_even: list = [slice(None)] * merged.ndim
            sl_even[axis] = slice(0, None, 2)
            sl_odd: list = [slice(None)] * merged.ndim
            sl_odd[axis] = slice(1, None, 2)
            merged[tuple(sl_even)] = out
            merged[tuple(sl_odd)] = mid
            out = merged
        return self.with_coordinates(out)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.dims)
        tags = []
        if self.viscous:
            tags.append("viscous")
        if self.turbulence:
            tags.append("turb")
        tag = f" [{','.join(tags)}]" if tags else ""
        return f"CurvilinearGrid({self.name!r}, {dims}, {self.npoints} pts{tag})"
