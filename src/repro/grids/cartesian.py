"""Uniform Cartesian grids — the "seven parameter" grids of section 5.

A uniform Cartesian grid is fully described by its bounding box (six
numbers in 3-D) and its spacing (one number): the paper contrasts this
with curvilinear grids, which need coordinates and metrics stored per
point.  Donor lookup in a Cartesian grid is a closed-form floor/divide
— no stencil-walk search — which is why the adaptive off-body scheme's
connectivity is nearly free.
"""

from __future__ import annotations

import numpy as np

from repro.grids.bbox import AABB
from repro.grids.structured import BoundaryFace, CurvilinearGrid


class CartesianGrid:
    """Uniform Cartesian grid: origin + spacing + point counts."""

    def __init__(self, name: str, origin, spacing: float, dims, level: int = 0):
        self.name = name
        self.origin = np.asarray(origin, dtype=float)
        self.spacing = float(spacing)
        self.dims = tuple(int(d) for d in dims)
        self.level = int(level)  # refinement level (adaptive scheme)
        if self.spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        if len(self.dims) != self.origin.shape[0]:
            raise ValueError("origin and dims dimensionality mismatch")
        if any(d < 2 for d in self.dims):
            raise ValueError(f"need >= 2 points per direction, got {self.dims}")

    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def npoints(self) -> int:
        return int(np.prod(self.dims))

    @property
    def nparams(self) -> int:
        """Scalars needed to describe this grid (the paper's "seven
        parameters" in 3-D: bounding box + spacing)."""
        return 2 * self.ndim + 1

    def bounding_box(self) -> AABB:
        hi = self.origin + self.spacing * (np.array(self.dims) - 1)
        return AABB(self.origin, hi)

    def coordinates(self) -> np.ndarray:
        """Materialise node coordinates, shape (*dims, ndim)."""
        axes = [
            self.origin[a] + self.spacing * np.arange(self.dims[a])
            for a in range(self.ndim)
        ]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.ascontiguousarray(np.stack(mesh, axis=-1))

    def as_curvilinear(
        self, boundaries: tuple[BoundaryFace, ...] = (), viscous: bool = False
    ) -> CurvilinearGrid:
        """Materialise as a curvilinear grid (for the general solver and
        connectivity paths)."""
        return CurvilinearGrid(
            self.name, self.coordinates(), boundaries, viscous=viscous
        )

    # ------------------------------------------------------------------
    # closed-form donor lookup
    # ------------------------------------------------------------------

    def locate(self, points: np.ndarray):
        """Donor cells and interpolation offsets for ``points``.

        Returns ``(cell, frac, inside)``: integer cell indices of shape
        (n, ndim), fractional offsets in [0, 1] within the cell, and a
        bool mask of points that fall inside the grid.  Cost is O(1) per
        point — the "very low cost" connectivity of section 5.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        rel = (pts - self.origin) / self.spacing
        cell = np.floor(rel).astype(np.int64)
        maxcell = np.array(self.dims) - 2
        inside = np.all((rel >= 0) & (rel <= np.array(self.dims) - 1), axis=-1)
        # Points exactly on the upper face belong to the last cell.
        cell = np.clip(cell, 0, maxcell)
        frac = rel - cell
        return cell, frac, inside

    def refined(self) -> "CartesianGrid":
        """Next refinement level: half the spacing over the same box."""
        dims = tuple(2 * (d - 1) + 1 for d in self.dims)
        return CartesianGrid(
            f"{self.name}+", self.origin, self.spacing / 2, dims, self.level + 1
        )

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.dims)
        return (
            f"CartesianGrid({self.name!r}, {dims}, h={self.spacing:g}, "
            f"level={self.level})"
        )
