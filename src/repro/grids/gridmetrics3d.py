"""Metric terms for 3-D curvilinear grids (conservative form).

For the strong-conservation transformed equations the fluxes need the
J-scaled metric coefficients, e.g. ``J xi_x = y_eta z_zeta - y_zeta
z_eta``.  Evaluated naively (products of central differences) these
cofactors violate the discrete geometric conservation law: a uniform
freestream then produces spurious residuals on curvilinear grids.  The
Thomas-Lombard symmetric conservative form

    J xi_x = d_eta(y * d_zeta z) - d_zeta(y * d_eta z)

restores exact discrete commutation — sums like ``d_xi(J xi_x) +
d_eta(J eta_x) + d_zeta(J zeta_x)`` telescope to round-off in the
interior — and is what OVERFLOW-class solvers use.  We implement that
form with the same central/one-sided differences as the 2-D metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _dd(f: np.ndarray, axis: int) -> np.ndarray:
    """Central difference, one-sided at the ends, unit spacing."""
    out = np.empty_like(f, dtype=float)
    sl = [slice(None)] * f.ndim

    def at(s):
        w = list(sl)
        w[axis] = s
        return tuple(w)

    out[at(slice(1, -1))] = 0.5 * (f[at(slice(2, None))] - f[at(slice(0, -2))])
    out[at(0)] = f[at(1)] - f[at(0)]
    out[at(-1)] = f[at(-1)] - f[at(-2)]
    return out


@dataclass
class Metrics3D:
    """J-scaled metric coefficients and the signed Jacobian.

    ``m[d]`` (d = 0 xi, 1 eta, 2 zeta) is an (ni, nj, nk, 3) array with
    the coefficients (J d_x, J d_y, J d_z) of direction d.
    """

    coeffs: np.ndarray  # (3, ni, nj, nk, 3)
    jac: np.ndarray     # signed J

    def direction(self, d: int) -> np.ndarray:
        return self.coeffs[d]

    @property
    def jac_abs(self) -> np.ndarray:
        return np.abs(self.jac)


def metrics3d(xyz: np.ndarray) -> Metrics3D:
    """Symmetric conservative metrics for coordinates (ni, nj, nk, 3)."""
    if xyz.ndim != 4 or xyz.shape[-1] != 3:
        raise ValueError(f"expected (ni, nj, nk, 3), got {xyz.shape}")
    x, y, z = xyz[..., 0], xyz[..., 1], xyz[..., 2]
    coords = (x, y, z)

    # Thomas-Lombard: for direction d (derivatives along the two other
    # computational axes a, b, cyclic) and physical component c:
    #   (J grad_d)_c = d_a(p * d_b q) - d_b(p * d_a q)
    # where (c, p, q) cycles through (x, y, z).
    coeffs = np.empty((3,) + x.shape + (3,), dtype=float)
    axes_of = {0: (1, 2), 1: (2, 0), 2: (0, 1)}
    for d in range(3):
        a, b = axes_of[d]
        for c in range(3):
            p = coords[(c + 1) % 3]
            q = coords[(c + 2) % 3]
            coeffs[d, ..., c] = _dd(p * _dd(q, b), a) - _dd(p * _dd(q, a), b)

    # Signed Jacobian from the forward derivative matrix.
    d_xi = np.stack([_dd(c, 0) for c in coords], axis=-1)
    d_eta = np.stack([_dd(c, 1) for c in coords], axis=-1)
    d_zeta = np.stack([_dd(c, 2) for c in coords], axis=-1)
    jac = np.einsum("...i,...i->...", d_xi, np.cross(d_eta, d_zeta))
    if not np.all(np.isfinite(jac)):
        raise ValueError("non-finite Jacobian")
    if jac.min() <= 0 <= jac.max():
        bad = int(min(np.sum(jac <= 0), np.sum(jac >= 0)))
        raise ValueError(
            f"grid is tangled: Jacobian changes sign or vanishes "
            f"({bad} offending nodes)"
        )
    return Metrics3D(coeffs=coeffs, jac=jac)


def gcl_residual(m: Metrics3D) -> np.ndarray:
    """Discrete geometric-conservation-law residual per component:
    d_xi(J xi_c) + d_eta(J eta_c) + d_zeta(J zeta_c); ~0 in the interior
    for the symmetric form (the freestream-preservation identity)."""
    out = np.zeros(m.jac.shape + (3,), dtype=float)
    for c in range(3):
        for d in range(3):
            out[..., c] += _dd(m.coeffs[d, ..., c], d)
    return out
