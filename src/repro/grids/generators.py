"""Synthetic grid generators for the paper's test problems.

The paper's grid systems (NACA 0012 airfoil system, delta wing + pipe
jet, wing/pylon/finned-store, X-38) came from NASA grid files we do not
have; these generators produce analytically-defined grids with the same
*structure*: body-fitted O-grids with viscous wall clustering, annular
intermediate grids, uniform Cartesian backgrounds, extruded 3-D wing
grids, and bodies of revolution for stores.  Case modules
(:mod:`repro.cases`) assemble them to match the paper's gridpoint
counts and IGBP/gridpoint ratios.
"""

from __future__ import annotations

import numpy as np

from repro.grids.structured import BoundaryFace, CurvilinearGrid
from repro.grids.cartesian import CartesianGrid


# ----------------------------------------------------------------------
# profiles
# ----------------------------------------------------------------------

def naca0012_thickness(x: np.ndarray, chord: float = 1.0) -> np.ndarray:
    """Half-thickness of a NACA 0012 section (closed trailing edge)."""
    xc = np.clip(np.asarray(x, dtype=float) / chord, 0.0, 1.0)
    t = 0.12
    # Standard 4-digit polynomial with the -0.1036 closed-TE coefficient.
    y = (t / 0.2) * (
        0.2969 * np.sqrt(xc)
        - 0.1260 * xc
        - 0.3516 * xc**2
        + 0.2843 * xc**3
        - 0.1036 * xc**4
    )
    return y * chord


def ogive_cylinder_radius(
    s: np.ndarray,
    length: float = 1.0,
    radius: float = 0.08,
    min_fraction: float = 1e-3,
) -> np.ndarray:
    """Radius profile of a generic finned-store body: ogive nose,
    cylindrical middle, boat-tail; ``s`` in [0, length].

    ``min_fraction`` floors the radius (relative to ``radius``): the
    default keeps a near-pointed nose; larger values blunt it, which
    also relaxes the CFL-limited timestep of solvers running on the
    resulting grid (the nose cells set the smallest cell size).
    """
    s = np.asarray(s, dtype=float)
    nose = 0.3 * length
    tail = 0.8 * length
    r = np.full_like(s, radius)
    in_nose = s < nose
    r[in_nose] = radius * np.sqrt(np.clip(s[in_nose] / nose, 0.0, 1.0) * (2 - s[in_nose] / nose))
    in_tail = s > tail
    frac = (s[in_tail] - tail) / (length - tail)
    r[in_tail] = radius * (1 - 0.5 * frac)
    return np.maximum(r, min_fraction * radius)


def _cluster(s: np.ndarray, beta: float) -> np.ndarray:
    """One-sided exponential clustering of s in [0,1] toward s=0."""
    if beta == 0:
        return s
    return (np.exp(beta * s) - 1.0) / (np.exp(beta) - 1.0)


# ----------------------------------------------------------------------
# 2-D generators
# ----------------------------------------------------------------------

def airfoil_ogrid(
    name: str,
    ni: int = 121,
    nj: int = 41,
    radius: float = 1.0,
    chord: float = 1.0,
    center=(0.5, 0.0),
    cluster_beta: float = 3.0,
    viscous: bool = True,
    turbulence: bool = False,
) -> CurvilinearGrid:
    """O-grid around a NACA 0012 airfoil.

    i wraps around the body (seam point duplicated at i=0 and i=ni-1),
    j runs from the wall (j=0) to the outer overset fringe, with
    exponential clustering toward the wall for viscous resolution.
    """
    center = np.asarray(center, dtype=float)
    theta = np.linspace(0.0, 2.0 * np.pi, ni)
    # Cosine chordwise spacing: theta in [0, pi] upper TE->LE,
    # [pi, 2 pi] lower LE->TE.
    xs = chord * 0.5 * (1.0 + np.cos(theta))
    ys = naca0012_thickness(xs, chord) * np.where(theta <= np.pi, 1.0, -1.0)
    surface = np.stack([xs, ys], axis=-1)
    outer = center + radius * np.stack([np.cos(theta), np.sin(theta)], axis=-1)
    s = _cluster(np.linspace(0.0, 1.0, nj), cluster_beta)
    # Radial algebraic blend, shape (ni, nj, 2).
    xyz = surface[:, None, :] * (1.0 - s[None, :, None]) + outer[:, None, :] * s[None, :, None]
    return CurvilinearGrid(
        name,
        xyz,
        boundaries=(
            BoundaryFace("jmin", "wall"),
            BoundaryFace("jmax", "overset"),
            BoundaryFace("imin", "periodic"),
            BoundaryFace("imax", "periodic"),
        ),
        viscous=viscous,
        turbulence=turbulence,
    )


def annulus_grid(
    name: str,
    ni: int = 121,
    nj: int = 41,
    r_inner: float = 0.9,
    r_outer: float = 3.0,
    center=(0.5, 0.0),
    viscous: bool = False,
) -> CurvilinearGrid:
    """Annular (intermediate-field) grid: i around, j radial outward."""
    if r_inner >= r_outer:
        raise ValueError("r_inner must be < r_outer")
    center = np.asarray(center, dtype=float)
    theta = np.linspace(0.0, 2.0 * np.pi, ni)
    r = np.linspace(r_inner, r_outer, nj)
    xyz = center + r[None, :, None] * np.stack(
        [np.cos(theta), np.sin(theta)], axis=-1
    )[:, None, :]
    return CurvilinearGrid(
        name,
        xyz,
        boundaries=(
            BoundaryFace("jmin", "overset"),
            BoundaryFace("jmax", "overset"),
            BoundaryFace("imin", "periodic"),
            BoundaryFace("imax", "periodic"),
        ),
        viscous=viscous,
    )


def cartesian_background(
    name: str,
    lo,
    hi,
    dims,
    viscous: bool = False,
) -> CurvilinearGrid:
    """Uniformly spaced background grid materialised as curvilinear.

    Spacing may differ per direction (unlike :class:`CartesianGrid`,
    which is the strict seven-parameter uniform grid of section 5).
    """
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    dims = tuple(int(d) for d in dims)
    axes = [np.linspace(lo[a], hi[a], dims[a]) for a in range(len(dims))]
    mesh = np.meshgrid(*axes, indexing="ij")
    xyz = np.stack(mesh, axis=-1)
    ndim = len(dims)
    faces = ["imin", "imax", "jmin", "jmax"] + (["kmin", "kmax"] if ndim == 3 else [])
    return CurvilinearGrid(
        name,
        xyz,
        boundaries=tuple(BoundaryFace(f, "farfield") for f in faces),
        viscous=viscous,
    )


# ----------------------------------------------------------------------
# 3-D generators
# ----------------------------------------------------------------------

def extruded_wing_grid(
    name: str,
    ni: int = 81,
    nj: int = 25,
    nk: int = 25,
    span: float = 1.0,
    root_chord: float = 1.0,
    taper: float = 1.0,
    sweep: float = 0.0,
    radius: float = 0.8,
    cluster_beta: float = 3.0,
    viscous: bool = True,
    turbulence: bool = False,
    symmetry_root: bool = False,
) -> CurvilinearGrid:
    """Wing grid: an airfoil O-grid cross-section extruded across span.

    i wraps the section, j is radial off the surface, k is spanwise.
    ``taper`` scales the tip chord relative to the root; ``sweep`` is a
    linear x-offset per unit span — together they approximate tapered /
    delta planforms.  With ``symmetry_root`` the kmin (root) plane is a
    symmetry/farfield boundary instead of an overset fringe — the
    standard half-span model.
    """
    zs = np.linspace(0.0, span, nk)
    sections = []
    for z in zs:
        frac = z / span if span > 0 else 0.0
        chord = root_chord * (1.0 - (1.0 - taper) * frac)
        chord = max(chord, 0.05 * root_chord)
        sec = airfoil_ogrid(
            "sec",
            ni=ni,
            nj=nj,
            radius=radius * max(chord / root_chord, 0.3),
            chord=chord,
            center=(0.5 * chord, 0.0),
            cluster_beta=cluster_beta,
        ).xyz
        sec = sec + np.array([sweep * frac, 0.0])  # sweep the section aft
        sections.append(sec)
    plane = np.stack(sections, axis=2)  # (ni, nj, nk, 2)
    zcoord = np.broadcast_to(zs[None, None, :, None], plane.shape[:-1] + (1,))
    xyz = np.concatenate([plane, zcoord], axis=-1)
    return CurvilinearGrid(
        name,
        xyz,
        boundaries=(
            BoundaryFace("jmin", "wall"),
            BoundaryFace("jmax", "overset"),
            BoundaryFace("imin", "periodic"),
            BoundaryFace("imax", "periodic"),
            BoundaryFace("kmin", "farfield" if symmetry_root else "overset"),
            BoundaryFace("kmax", "overset"),
        ),
        viscous=viscous,
        turbulence=turbulence,
    )


def body_of_revolution_grid(
    name: str,
    ni: int = 61,
    nj: int = 33,
    nk: int = 25,
    length: float = 1.0,
    body_radius: float = 0.08,
    outer_radius: float = 0.5,
    axis_origin=(0.0, 0.0, 0.0),
    cluster_beta: float = 3.0,
    viscous: bool = True,
    turbulence: bool = False,
    nose_bluntness: float = 1e-3,
) -> CurvilinearGrid:
    """O-grid around an ogive-cylinder store body.

    i is axial, j is circumferential (wraps), k is radial from the wall
    (k=0) to the outer overset fringe.  The body axis is +x from
    ``axis_origin``.
    """
    origin = np.asarray(axis_origin, dtype=float)
    s = np.linspace(0.0, length, ni)
    rb = ogive_cylinder_radius(s, length, body_radius, nose_bluntness)
    phi = np.linspace(0.0, 2.0 * np.pi, nj)
    rad = _cluster(np.linspace(0.0, 1.0, nk), cluster_beta)
    shape = (ni, nj, nk)
    r = np.broadcast_to(
        rb[:, None, None] + (outer_radius - rb[:, None, None]) * rad[None, None, :],
        shape,
    )
    x = np.broadcast_to(s[:, None, None], shape)
    y = r * np.cos(phi)[None, :, None]
    z = r * np.sin(phi)[None, :, None]
    xyz = origin + np.stack([np.array(x), y, z], axis=-1)
    return CurvilinearGrid(
        name,
        xyz,
        boundaries=(
            BoundaryFace("kmin", "wall"),
            BoundaryFace("kmax", "overset"),
            BoundaryFace("jmin", "periodic"),
            BoundaryFace("jmax", "periodic"),
            BoundaryFace("imin", "overset"),
            BoundaryFace("imax", "overset"),
        ),
        viscous=viscous,
        turbulence=turbulence,
    )


def fin_grid(
    name: str,
    ni: int = 25,
    nj: int = 17,
    nk: int = 13,
    root=(0.8, 0.08, 0.0),
    span: float = 0.15,
    chord: float = 0.15,
    thickness: float = 0.02,
    direction=(0.0, 1.0, 0.0),
    viscous: bool = True,
) -> CurvilinearGrid:
    """Small body-fitted grid around one store fin.

    Modelled as a sheared box hugging a thin flat-plate fin extending
    from ``root`` along ``direction``: i chordwise, j normal to the fin
    surface, k spanwise.
    """
    root = np.asarray(root, dtype=float)
    d = np.asarray(direction, dtype=float)
    d = d / np.linalg.norm(d)
    # Build an orthonormal frame (chordwise = +x assumed, span = d).
    cdir = np.array([1.0, 0.0, 0.0])
    ndir = np.cross(d, cdir)
    ndir /= np.linalg.norm(ndir)
    xi = np.linspace(-0.25 * chord, 1.25 * chord, ni)
    eta = np.linspace(-3.0 * thickness, 3.0 * thickness, nj)
    zeta = np.linspace(0.0, span, nk)
    xyz = (
        root
        + xi[:, None, None, None] * cdir
        + eta[None, :, None, None] * ndir
        + zeta[None, None, :, None] * d
    )
    return CurvilinearGrid(
        name,
        np.ascontiguousarray(xyz),
        boundaries=(
            BoundaryFace("imin", "overset"),
            BoundaryFace("imax", "overset"),
            BoundaryFace("jmin", "overset"),
            BoundaryFace("jmax", "overset"),
            BoundaryFace("kmin", "overset"),
            BoundaryFace("kmax", "overset"),
        ),
        viscous=viscous,
    )


def pipe_grid(
    name: str,
    ni: int = 33,
    nj: int = 33,
    nk: int = 49,
    radius: float = 0.1,
    length: float = 1.0,
    origin=(0.0, 0.0, 0.0),
    viscous: bool = True,
) -> CurvilinearGrid:
    """Cylindrical jet-pipe grid (delta-wing case): i circumferential,
    j radial, k axial along -y (a downward jet)."""
    origin = np.asarray(origin, dtype=float)
    theta = np.linspace(0.0, 2.0 * np.pi, ni)
    r = np.linspace(0.15 * radius, radius, nj)
    zeta = np.linspace(0.0, length, nk)
    shape = (ni, nj, nk)
    x = np.broadcast_to(
        r[None, :, None] * np.cos(theta)[:, None, None], shape
    )
    z = np.broadcast_to(
        r[None, :, None] * np.sin(theta)[:, None, None], shape
    )
    y = -np.broadcast_to(zeta[None, None, :], shape)
    xyz = origin + np.stack([np.array(x), np.array(y), np.array(z)], axis=-1)
    return CurvilinearGrid(
        name,
        np.ascontiguousarray(xyz),
        boundaries=(
            BoundaryFace("imin", "periodic"),
            BoundaryFace("imax", "periodic"),
            BoundaryFace("jmax", "wall"),
            BoundaryFace("jmin", "overset"),
            BoundaryFace("kmin", "overset"),
            BoundaryFace("kmax", "overset"),
        ),
        viscous=viscous,
    )


def cartesian_grid_3d(name: str, lo, hi, spacing: float, level: int = 0) -> CartesianGrid:
    """Uniform Cartesian grid covering [lo, hi] at the given spacing —
    the seven-parameter grids of the adaptive off-body scheme."""
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    dims = tuple(int(np.ceil((hi[a] - lo[a]) / spacing)) + 1 for a in range(lo.shape[0]))
    dims = tuple(max(2, d) for d in dims)
    return CartesianGrid(name, lo, spacing, dims, level)
