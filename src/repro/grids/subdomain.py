"""Index-space boxes and subdomain descriptors.

The static load balancer (Algorithm 1) splits each component grid's
index space into near-cubic boxes; each box becomes the working set of
one processor.  :func:`interior_face_points` measures the halo traffic a
box generates — the quantity the prime-factor decomposition minimises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Box:
    """Half-open index-space box: lo inclusive, hi exclusive."""

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self):
        if len(self.lo) != len(self.hi):
            raise ValueError("lo/hi rank mismatch")
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"empty box {self.lo}..{self.hi}")

    @classmethod
    def whole(cls, dims: tuple[int, ...]) -> "Box":
        return cls(tuple(0 for _ in dims), tuple(dims))

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def npoints(self) -> int:
        return int(np.prod(self.shape))

    def slices(self) -> tuple[slice, ...]:
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))

    def contains_index(self, idx) -> bool:
        return all(l <= i < h for l, i, h in zip(self.lo, idx, self.hi))

    def split(self, axis: int, nparts: int) -> list["Box"]:
        """Split along one axis into ``nparts`` near-equal boxes."""
        n = self.shape[axis]
        if nparts > n:
            raise ValueError(f"cannot split extent {n} into {nparts} parts")
        # Near-equal integer partition: first (n % nparts) parts get one extra.
        base, extra = divmod(n, nparts)
        out = []
        start = self.lo[axis]
        for p in range(nparts):
            size = base + (1 if p < extra else 0)
            lo = list(self.lo)
            hi = list(self.hi)
            lo[axis] = start
            hi[axis] = start + size
            out.append(Box(tuple(lo), tuple(hi)))
            start += size
        return out

    def surface_points(self) -> int:
        """Points on the box surface (upper bound on halo size)."""
        total = self.npoints
        inner = 1
        for s in self.shape:
            inner *= max(0, s - 2)
        return total - inner


def interior_face_points(box: Box, grid_dims: tuple[int, ...]) -> int:
    """Points on box faces interior to the grid — i.e. faces that abut a
    neighbouring subdomain and must be exchanged each sweep.

    Faces lying on the physical grid boundary generate no halo traffic.
    """
    total = 0
    shape = box.shape
    for axis in range(box.ndim):
        face_area = int(np.prod([s for a, s in enumerate(shape) if a != axis]))
        if box.lo[axis] > 0:
            total += face_area
        if box.hi[axis] < grid_dims[axis]:
            total += face_area
    return total


@dataclass(frozen=True)
class Subdomain:
    """One processor's portion of one component grid."""

    grid_index: int
    rank: int
    box: Box

    @property
    def npoints(self) -> int:
        return self.box.npoints
