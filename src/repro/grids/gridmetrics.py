"""Metric terms for 2-D curvilinear grids.

The transformation from physical (x, y) to computational (xi, eta)
coordinates supplies the solver's flux projections.  With central
differences for x_xi etc., the inverse metrics are

    xi_x  =  y_eta / J      xi_y  = -x_eta / J
    eta_x = -y_xi  / J      eta_y =  x_xi  / J

with J = x_xi * y_eta - x_eta * y_xi the (signed) Jacobian.  J keeps its
sign: a right-handed grid has J > 0 everywhere, a left-handed one (e.g.
an O-grid traversed counter-clockwise with j outward) J < 0 everywhere.
The transformed conservation law holds for either sign as long as the
metric set is consistent; only a *sign change* inside one grid means the
grid is tangled and is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Metrics2D:
    """Node-centered metric terms on a 2-D curvilinear grid."""

    jac: np.ndarray     # x_xi*y_eta - x_eta*y_xi (signed)
    xi_x: np.ndarray
    xi_y: np.ndarray
    eta_x: np.ndarray
    eta_y: np.ndarray

    @property
    def shape(self):
        return self.jac.shape

    @property
    def jac_abs(self) -> np.ndarray:
        """|J|: the positive cell-area measure."""
        return np.abs(self.jac)


def _ddxi(f: np.ndarray, periodic: bool) -> np.ndarray:
    """Central difference along axis 0; one-sided (or wrapped) at ends."""
    out = np.empty_like(f)
    out[1:-1] = 0.5 * (f[2:] - f[:-2])
    if periodic:
        # Seam point duplicated: neighbour of 0 across the seam is -2.
        out[0] = 0.5 * (f[1] - f[-2])
        out[-1] = out[0]
    else:
        out[0] = f[1] - f[0]
        out[-1] = f[-1] - f[-2]
    return out


def _ddeta(f: np.ndarray) -> np.ndarray:
    out = np.empty_like(f)
    out[:, 1:-1] = 0.5 * (f[:, 2:] - f[:, :-2])
    out[:, 0] = f[:, 1] - f[:, 0]
    out[:, -1] = f[:, -1] - f[:, -2]
    return out


def cell_volumes3d(xyz: np.ndarray) -> np.ndarray:
    """Signed hexahedral cell volumes of a 3-D curvilinear grid
    (parallelepiped approximation from the three edge vectors at each
    cell's low corner).  A single consistent sign over the whole grid
    means untangled; mixed signs mean folded cells — the 3-D analogue of
    the 2-D Jacobian check.
    """
    if xyz.ndim != 4 or xyz.shape[-1] != 3:
        raise ValueError(f"expected (ni, nj, nk, 3) coordinates, got {xyz.shape}")
    e1 = xyz[1:, :-1, :-1] - xyz[:-1, :-1, :-1]
    e2 = xyz[:-1, 1:, :-1] - xyz[:-1, :-1, :-1]
    e3 = xyz[:-1, :-1, 1:] - xyz[:-1, :-1, :-1]
    return np.einsum("...i,...i->...", e1, np.cross(e2, e3))


def metrics2d(xyz: np.ndarray, i_periodic: bool = False) -> Metrics2D:
    """Compute node metrics for coordinates of shape (ni, nj, 2).

    Raises ``ValueError`` when the Jacobian changes sign or vanishes
    (tangled or degenerate grid) — a generator bug should fail loudly.
    """
    if xyz.ndim != 3 or xyz.shape[-1] != 2:
        raise ValueError(f"expected (ni, nj, 2) coordinates, got {xyz.shape}")
    x = xyz[..., 0]
    y = xyz[..., 1]
    x_xi = _ddxi(x, i_periodic)
    y_xi = _ddxi(y, i_periodic)
    x_eta = _ddeta(x)
    y_eta = _ddeta(y)
    jac = x_xi * y_eta - x_eta * y_xi
    if not np.all(np.isfinite(jac)):
        raise ValueError("non-finite Jacobian")
    if jac.min() <= 0 <= jac.max():
        bad = int(min(np.sum(jac <= 0), np.sum(jac >= 0)))
        raise ValueError(
            f"grid is tangled: Jacobian changes sign or vanishes "
            f"({bad} offending nodes)"
        )
    inv = 1.0 / jac
    return Metrics2D(
        jac=jac,
        xi_x=y_eta * inv,
        xi_y=-x_eta * inv,
        eta_x=-y_xi * inv,
        eta_y=x_xi * inv,
    )
