"""Adaptive Cartesian patch generation (paper section 5 workload).

The off-body field is tiled by a graded 2^d-tree of small uniform
Cartesian patches: a coarse level-0 lattice seeds the background, and
cells intersecting the (inflated) bounding boxes of near-body grids are
recursively refined to ``max_level``.  A 2:1 grading pass then splits
any leaf adjacent to a leaf two or more levels finer, so neighbouring
patches always differ by at most one level — the standard nesting rule
of forest-of-octrees AMR (cf. PAPERS.md, Brandt & Burstedde).

Everything here is exact integer arithmetic on ``(level, ijk)`` cell
indices; physical boxes are derived.  Generation is a pure function of
(domain, knobs, body boxes) — re-running it yields the identical patch
list, which the byte-identity tests across backends rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.grids.bbox import AABB
from repro.grids.cartesian import CartesianGrid


@dataclass(frozen=True, order=True)
class Patch:
    """One brick of the patch tree: level + lattice index + cell shape.

    ``ijk`` is the lattice index of the brick's low corner at ``level``;
    ``shape`` is its extent in level-``level`` cells per axis (all ones
    for a plain tree cell — the default).  Bricks come from coalescing
    same-level cells, so a brick always covers whole cells.
    """

    level: int
    ijk: tuple[int, ...]
    shape: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.shape:
            object.__setattr__(self, "shape", (1,) * len(self.ijk))

    @property
    def ncells(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def name(self) -> str:
        base = f"ob{self.level}-" + ".".join(str(c) for c in self.ijk)
        if any(s > 1 for s in self.shape):
            base += "x" + ".".join(str(s) for s in self.shape)
        return base


class PatchSystem:
    """The off-body patch lattice over a fixed ``domain``.

    Parameters
    ----------
    domain:
        Physical box tiled by the level-0 lattice (the lattice may
        overhang ``domain.hi`` by a partial cell so the whole domain is
        always covered).
    base_extent:
        Edge length of a level-0 cell; level ``l`` cells have edge
        ``base_extent / 2**l``.
    points_per_patch:
        Grid points per direction in each *cell* of a patch grid (>= 2);
        a brick spanning ``s`` cells along an axis has
        ``(points_per_patch - 1) * s + 1`` points there.
    max_level:
        Finest refinement level generated around bodies.
    max_brick_cells:
        Per-axis cap on coalescing same-level cells into bricks; 1
        disables coalescing (every patch is a single tree cell).
    """

    def __init__(
        self,
        domain: AABB,
        base_extent: float,
        points_per_patch: int = 5,
        max_level: int = 2,
        max_brick_cells: int = 3,
    ) -> None:
        if base_extent <= 0:
            raise ValueError(f"base_extent must be positive, got {base_extent}")
        if points_per_patch < 2:
            raise ValueError("points_per_patch must be >= 2")
        if max_level < 0:
            raise ValueError("max_level must be >= 0")
        if max_brick_cells < 1:
            raise ValueError("max_brick_cells must be >= 1")
        self.domain = domain
        self.base_extent = float(base_extent)
        self.points_per_patch = int(points_per_patch)
        self.max_level = int(max_level)
        self.max_brick_cells = int(max_brick_cells)
        self.ncells0 = tuple(
            max(1, int(np.ceil(e / self.base_extent - 1e-12)))
            for e in domain.extent
        )

    @property
    def ndim(self) -> int:
        return self.domain.ndim

    # ------------------------------------------------------------------
    # geometry

    def cell_extent(self, level: int) -> float:
        return self.base_extent / (1 << level)

    def spacing(self, level: int) -> float:
        return self.cell_extent(level) / (self.points_per_patch - 1)

    def patch_box(self, p: Patch) -> AABB:
        h = self.cell_extent(p.level)
        lo = self.domain.lo + h * np.asarray(p.ijk, dtype=float)
        return AABB(lo, lo + h * np.asarray(p.shape, dtype=float))

    def patch_grid(self, p: Patch) -> CartesianGrid:
        box = self.patch_box(p)
        dims = tuple(
            (self.points_per_patch - 1) * s + 1 for s in p.shape
        )
        return CartesianGrid(
            p.name,
            box.lo,
            self.spacing(p.level),
            dims,
            level=p.level,
        )

    def patch_points(self, p: Patch) -> int:
        """Grid points in patch ``p`` (varies with its brick shape)."""
        n = 1
        for s in p.shape:
            n *= (self.points_per_patch - 1) * s + 1
        return n

    # ------------------------------------------------------------------
    # integer-lattice helpers

    def _children(self, p: Patch) -> list[Patch]:
        base = tuple(2 * c for c in p.ijk)
        return [
            Patch(p.level + 1, tuple(b + o for b, o in zip(base, off)))
            for off in itertools.product((0, 1), repeat=self.ndim)
        ]

    def _span(self, p: Patch) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Closed index range of ``p`` in finest-level units."""
        f = 1 << (self.max_level - p.level)
        lo = tuple(c * f for c in p.ijk)
        hi = tuple((c + s) * f for c, s in zip(p.ijk, p.shape))
        return lo, hi

    def touches(self, p: Patch, q: Patch) -> bool:
        """Whether two patches share a face, edge, or corner (exact)."""
        (plo, phi), (qlo, qhi) = self._span(p), self._span(q)
        return all(
            plo[a] <= qhi[a] and qlo[a] <= phi[a] for a in range(self.ndim)
        )

    # ------------------------------------------------------------------
    # generation

    def generate(
        self, body_boxes: list[AABB], margin: float = 0.0
    ) -> tuple[Patch, ...]:
        """The graded, coalesced patch set for the current body positions.

        Returns patches sorted by ``(level, ijk, shape)``.  Invariants
        (pinned by the property battery):

        * patches tile the lattice disjointly;
        * any patch intersecting an inflated body box is at
          ``max_level`` (bodies are always tracked at the finest level);
        * adjacent patches differ by at most one level (2:1 nesting);
        * the output is a pure function of the inputs.

        After refinement and 2:1 grading, runs of same-level cells are
        greedily meshed into larger Cartesian bricks (up to
        ``max_brick_cells`` per axis) — the paper's off-body population
        is many *varied-size* small Cartesian grids, and Algorithm 3's
        largest-first seeding needs that size spread to bite.
        """
        targets = [b.inflated(margin) for b in body_boxes]
        leaves: list[Patch] = []
        stack = [
            Patch(0, ijk)
            for ijk in itertools.product(*(range(n) for n in self.ncells0))
        ]
        while stack:
            p = stack.pop()
            if p.level < self.max_level and self._hits(p, targets):
                stack.extend(self._children(p))
            else:
                leaves.append(p)

        # 2:1 grading: split any leaf with a neighbour >= 2 levels finer;
        # splitting can create new violations one level up, so iterate to
        # a fixed point (bounded by max_level passes).
        while True:
            split = self._grading_violations(leaves)
            if not split:
                break
            next_leaves: list[Patch] = []
            for i, p in enumerate(leaves):
                if i in split:
                    next_leaves.extend(self._children(p))
                else:
                    next_leaves.append(p)
            leaves = next_leaves
        return tuple(sorted(self._coalesce(leaves)))

    def _hits(self, p: Patch, targets: list[AABB]) -> bool:
        box = self.patch_box(p)
        return any(box.intersects(t) for t in targets)

    def _coalesce(self, leaves: list[Patch]) -> list[Patch]:
        """Greedy-mesh same-level unit cells into larger bricks.

        Deterministic: cells are visited in sorted order and grown one
        slab at a time along ascending axes, so the brick set is a pure
        function of the leaf set.
        """
        cap = self.max_brick_cells
        if cap <= 1:
            return leaves
        by_level: dict[int, list[tuple[int, ...]]] = {}
        for p in leaves:
            by_level.setdefault(p.level, []).append(p.ijk)
        out: list[Patch] = []
        for level in sorted(by_level):
            cells = sorted(by_level[level])
            free = set(cells)
            for ijk in cells:
                if ijk not in free:
                    continue
                shape = [1] * self.ndim
                for axis in range(self.ndim):
                    while shape[axis] < cap:
                        slab = self._next_slab(ijk, shape, axis)
                        if all(c in free for c in slab):
                            shape[axis] += 1
                        else:
                            break
                for c in itertools.product(
                    *(range(ijk[a], ijk[a] + shape[a]) for a in range(self.ndim))
                ):
                    free.discard(c)
                out.append(Patch(level, ijk, tuple(shape)))
        return out

    def _next_slab(
        self, ijk: tuple[int, ...], shape: list[int], axis: int
    ) -> list[tuple[int, ...]]:
        """Cells in the next one-cell layer growing ``shape`` along ``axis``."""
        ranges: list[Any] = [
            range(ijk[a], ijk[a] + shape[a]) for a in range(self.ndim)
        ]
        ranges[axis] = (ijk[axis] + shape[axis],)
        return list(itertools.product(*ranges))

    def _span_arrays(
        self, leaves: list[Patch] | tuple[Patch, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        spans = [self._span(p) for p in leaves]
        lo = np.array([s[0] for s in spans], dtype=np.int64)
        hi = np.array([s[1] for s in spans], dtype=np.int64)
        return lo, hi

    def _touch_matrix(self, leaves: list[Patch] | tuple[Patch, ...]) -> np.ndarray:
        """(n, n) bool: leaves share at least a corner (exact integers)."""
        lo, hi = self._span_arrays(leaves)
        return np.all(
            (lo[:, None, :] <= hi[None, :, :])
            & (lo[None, :, :] <= hi[:, None, :]),
            axis=-1,
        )

    def _grading_violations(self, leaves: list[Patch]) -> set[int]:
        levels = np.array([p.level for p in leaves], dtype=np.int64)
        touch = self._touch_matrix(leaves)
        viol = np.any(touch & (levels[None, :] >= levels[:, None] + 2), axis=1)
        return {int(i) for i in np.nonzero(viol)[0]}

    # ------------------------------------------------------------------
    # adjacency / donors

    def adjacency(
        self, leaves: tuple[Patch, ...]
    ) -> set[tuple[int, int]]:
        """Undirected overlap edges between leaves as index pairs (i < j)."""
        if not leaves:
            return set()
        touch = self._touch_matrix(leaves)
        a, b = np.nonzero(np.triu(touch, k=1))
        return {(int(i), int(j)) for i, j in zip(a, b)}

    def fringe_weights(
        self,
        leaves: tuple[Patch, ...],
        edges: set[tuple[int, int]] | None = None,
    ) -> dict[tuple[int, int], int]:
        """Inter-patch donor volumes: ``(receiver, donor) -> points``.

        Each patch's grid boundary points are its fringe; the donor for
        a fringe point is the *finest* other patch containing it (ties
        broken toward the lower patch index).  Patches tile the lattice,
        so candidate donors are exactly the adjacent leaves.  Fringe
        points on the outer lattice boundary have no donor and are
        free-stream, not orphans.
        """
        if edges is None:
            edges = self.adjacency(leaves)
        neighbors: dict[int, list[int]] = {i: [] for i in range(len(leaves))}
        for a, b in sorted(edges):
            neighbors[a].append(b)
            neighbors[b].append(a)
        eps = 1e-9 * self.base_extent
        weights: dict[tuple[int, int], int] = {}
        for i, p in enumerate(leaves):
            pts = self.fringe_points(p)
            best = np.full(len(pts), -1, dtype=np.int64)
            best_level = np.full(len(pts), -1, dtype=np.int64)
            # Ascending (level, -index): later writes win, so each point
            # ends at the finest containing patch, smallest index on ties.
            order = sorted(
                neighbors[i], key=lambda j: (leaves[j].level, -j)
            )
            for j in order:
                inside = self.patch_box(leaves[j]).inflated(eps).contains(pts)
                take = inside & (leaves[j].level >= best_level)
                best[take] = j
                best_level[take] = leaves[j].level
            for j in np.unique(best[best >= 0]):
                weights[(i, int(j))] = int(np.sum(best == j))
        return weights

    def fringe_points(self, p: Patch) -> np.ndarray:
        """Boundary node coordinates of ``p``'s grid, shape (n, ndim)."""
        grid = self.patch_grid(p)
        coords = grid.coordinates().reshape(-1, self.ndim)
        axes = [np.arange(d) for d in grid.dims]
        idx = np.stack(
            np.meshgrid(*axes, indexing="ij"), axis=-1
        ).reshape(-1, self.ndim)
        last = np.asarray(grid.dims) - 1
        on_face = np.any((idx == 0) | (idx == last), axis=-1)
        return coords[on_face]
