"""Off-body grid manager: regenerate the patch layout each adapt epoch.

The manager owns a :class:`repro.offbody.patches.PatchSystem` and, at
every adapt epoch, rebuilds the leaf set around the current near-body
bounding boxes.  The result — an :class:`OffBodyLayout` — carries
everything the driver and Algorithm 3 need: patch grids, sizes,
connectivity edges, inter-patch donor weights, and churn statistics
(created/destroyed) versus the previous layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grids.bbox import AABB
from repro.grids.cartesian import CartesianGrid
from repro.offbody.patches import Patch, PatchSystem


@dataclass(frozen=True)
class OffBodyLayout:
    """One adapt epoch's patch population (immutable snapshot)."""

    epoch: int
    patches: tuple[Patch, ...]
    grids: tuple[CartesianGrid, ...]
    sizes: tuple[int, ...]
    #: Undirected adjacency edges between patches, (i, j) with i < j.
    edges: frozenset[tuple[int, int]]
    #: Inter-patch donor volumes, (receiver, donor) -> fringe points.
    weights: dict[tuple[int, int], int] = field(compare=False)
    created: int = 0
    destroyed: int = 0

    @property
    def npatches(self) -> int:
        return len(self.patches)

    @property
    def total_points(self) -> int:
        return sum(self.sizes)

    def level_counts(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for p in self.patches:
            out[p.level] = out.get(p.level, 0) + 1
        return out


class OffBodyManager:
    """Regenerates the patch layout as bodies move.

    Deterministic: the layout is a pure function of the body boxes, so
    every backend (and every rank under private-state backends) derives
    the identical population from the same world time.
    """

    def __init__(
        self,
        domain: AABB,
        base_extent: float,
        points_per_patch: int = 5,
        max_level: int = 2,
        margin: float = 0.0,
        max_brick_cells: int = 3,
    ) -> None:
        self.system = PatchSystem(
            domain, base_extent,
            points_per_patch=points_per_patch,
            max_level=max_level,
            max_brick_cells=max_brick_cells,
        )
        self.margin = float(margin)
        self._previous: tuple[Patch, ...] = ()
        self._epoch = 0

    def regenerate(self, body_boxes: list[AABB]) -> OffBodyLayout:
        """Build the layout for the current body positions."""
        system = self.system
        patches = system.generate(body_boxes, self.margin)
        grids = tuple(system.patch_grid(p) for p in patches)
        edges = system.adjacency(patches)
        weights = system.fringe_weights(patches, edges)
        old = set(self._previous)
        new = set(patches)
        layout = OffBodyLayout(
            epoch=self._epoch,
            patches=patches,
            grids=grids,
            sizes=tuple(g.npoints for g in grids),
            edges=frozenset(edges),
            weights=weights,
            created=len(new - old),
            destroyed=len(old - new),
        )
        self._previous = patches
        self._epoch += 1
        return layout
