"""Seeded scenario generation: randomized multi-body off-body cases.

``repro scenario --kind store-salvo --seed 7`` emits a canonical JSON
scenario file — a fully data-described :class:`OffBodyCase` — that
``repro run/trace/bench --scenario <file>`` executes on any backend.
Three kinds are generated:

* ``store-salvo`` — a row of stores ejected in sequence, each on a
  :class:`repro.motion.prescribed.StoreSeparation` trajectory with
  randomized ejection/gravity/pitch parameters;
* ``debris`` — tumbling fragments drifting apart on randomized
  :class:`TumbleDrift` trajectories;
* ``formation`` — a wedge of bodies translating together with small
  per-body perturbations.

Determinism contract: the payload is a pure function of
``(kind, seed, nbodies)`` (``random.Random(seed)``, no global RNG) and
serialises through :func:`repro.obs.perf.bench.canonical_json`, so the
same invocation always produces byte-identical files — the property
battery pins this.

Scenario files carry ``schema = "repro-scenario/1"``; loading validates
structure and raises the typed :class:`ScenarioError`.  Loaded
scenarios register themselves in the shared case registry
(:mod:`repro.cases.registry`) so the CLI resolves them through the same
lookup path as the built-in benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.grids.bbox import AABB
from repro.grids.generators import body_of_revolution_grid
from repro.grids.motion import RigidMotion
from repro.motion.prescribed import (
    PrescribedMotion,
    SteadyDescent,
    StoreSeparation,
)
from repro.obs.perf.bench import canonical_json
from repro.offbody.driver import GROUPING_STRATEGIES, OffBodyCase

SCENARIO_SCHEMA = "repro-scenario/1"

SCENARIO_KINDS = ("store-salvo", "debris", "formation")


class ScenarioError(ValueError):
    """A scenario payload or file is malformed."""


@dataclass
class TumbleDrift(PrescribedMotion):
    """Tumbling drift: constant spin about ``axis`` through ``center``
    plus a linear drift and a sinusoidal bob — the generic "loose
    debris" trajectory of the scenario generator."""

    velocity: tuple = (0.1, 0.0, 0.0)
    axis: tuple = (0.0, 0.0, 1.0)
    rate: float = 0.3            # rad per unit time
    center: tuple = (0.0, 0.0, 0.0)
    bob_amplitude: float = 0.0
    bob_omega: float = 1.0
    bob_phase: float = 0.0

    def at(self, t: float) -> RigidMotion:
        v = np.asarray(self.velocity, dtype=float)
        trans = v * t
        trans[1] += self.bob_amplitude * np.sin(self.bob_omega * t + self.bob_phase)
        rot = RigidMotion.rotation3d(self.axis, self.rate * t, center=self.center)
        return rot.then(RigidMotion.translation_of(trans))


#: Serialisable motion types: scenario "type" string -> class.
MOTION_TYPES: dict[str, type[PrescribedMotion]] = {
    "store-separation": StoreSeparation,
    "steady-descent": SteadyDescent,
    "tumble-drift": TumbleDrift,
}


def _motion_from_spec(spec: dict[str, Any]) -> PrescribedMotion:
    try:
        mtype = spec["type"]
        params = dict(spec.get("params", {}))
    except (TypeError, KeyError) as exc:
        raise ScenarioError(f"bad motion spec {spec!r}") from exc
    cls = MOTION_TYPES.get(mtype)
    if cls is None:
        raise ScenarioError(
            f"unknown motion type {mtype!r}; "
            f"choose from {sorted(MOTION_TYPES)}"
        )
    params = {
        k: tuple(v) if isinstance(v, list) else v for k, v in params.items()
    }
    try:
        return cls(**params)
    except TypeError as exc:
        raise ScenarioError(f"bad params for motion {mtype!r}: {exc}") from exc


# ----------------------------------------------------------------------
# generation


def _r(rng: random.Random, lo: float, hi: float) -> float:
    """Uniform draw rounded to 6 decimals (keeps files readable and the
    canonical bytes stable against float-repr drift)."""
    return round(rng.uniform(lo, hi), 6)


def _body(name: str, origin: tuple[float, float, float]) -> dict[str, Any]:
    return {
        "name": name,
        "grid": {
            "ni": 9, "nj": 9, "nk": 7,
            "length": 0.45,
            "body_radius": 0.04,
            "outer_radius": 0.16,
            "axis_origin": list(origin),
        },
    }


def generate_scenario(
    kind: str, seed: int, nbodies: int | None = None
) -> dict[str, Any]:
    """Build a scenario payload for ``(kind, seed)`` — pure function."""
    if kind not in SCENARIO_KINDS:
        raise ScenarioError(
            f"unknown scenario kind {kind!r}; choose from {SCENARIO_KINDS}"
        )
    rng = random.Random(seed)
    if nbodies is None:
        nbodies = rng.randint(2, 3)
    if nbodies < 1:
        raise ScenarioError("nbodies must be >= 1")

    bodies: list[dict[str, Any]] = []
    if kind == "store-salvo":
        for b in range(nbodies):
            origin = (round(0.7 * b, 6), 0.0, 0.0)
            body = _body(f"store-{b}", origin)
            body["motion"] = {
                "type": "store-separation",
                "params": {
                    "eject_velocity": _r(rng, 0.15, 0.35),
                    "gravity": _r(rng, 0.05, 0.15),
                    "pitch_rate": _r(rng, 0.02, 0.08),
                    "max_pitch": round(float(np.deg2rad(20.0)), 6),
                    "center": [origin[0] + 0.2, 0.0, 0.0],
                    "drop_axis": 1,
                },
            }
            bodies.append(body)
    elif kind == "debris":
        for b in range(nbodies):
            origin = (round(0.7 * b, 6), 0.0, 0.0)
            body = _body(f"debris-{b}", origin)
            axis = [_r(rng, -1.0, 1.0), _r(rng, -1.0, 1.0), 1.0]
            body["motion"] = {
                "type": "tumble-drift",
                "params": {
                    "velocity": [
                        _r(rng, -0.3, 0.3),
                        _r(rng, -0.4, -0.1),
                        _r(rng, -0.15, 0.15),
                    ],
                    "axis": axis,
                    "rate": _r(rng, 0.2, 0.8),
                    "center": [origin[0] + 0.2, 0.0, 0.0],
                    "bob_amplitude": _r(rng, 0.0, 0.05),
                    "bob_omega": _r(rng, 0.5, 2.0),
                    "bob_phase": _r(rng, 0.0, 3.0),
                },
            }
            bodies.append(body)
    else:  # formation
        lead_v = [_r(rng, 0.1, 0.3), _r(rng, -0.1, 0.1), 0.0]
        for b in range(nbodies):
            # Wedge: lead at x=0, wingmates staggered back and out.
            row = (b + 1) // 2
            side = 1 if b % 2 else -1
            origin = (round(-0.55 * row, 6), 0.0, round(0.45 * row * side, 6))
            body = _body(f"wing-{b}", origin)
            body["motion"] = {
                "type": "tumble-drift",
                "params": {
                    "velocity": [
                        round(lead_v[0] + _r(rng, -0.02, 0.02), 6),
                        round(lead_v[1] + _r(rng, -0.02, 0.02), 6),
                        0.0,
                    ],
                    "axis": [0.0, 0.0, 1.0],
                    "rate": 0.0,
                    "center": [origin[0] + 0.2, 0.0, origin[2]],
                    "bob_amplitude": _r(rng, 0.0, 0.04),
                    "bob_omega": _r(rng, 0.5, 1.5),
                    "bob_phase": _r(rng, 0.0, 3.0),
                },
            }
            bodies.append(body)

    # Domain: cover every body's reach over the run with padding.
    origins = np.array([b["grid"]["axis_origin"] for b in bodies])
    pad = 0.55
    lo = origins.min(axis=0) - np.array([pad, pad + 0.4, pad])
    hi = origins.max(axis=0) + np.array([0.45 + pad, pad, pad])
    payload: dict[str, Any] = {
        "schema": SCENARIO_SCHEMA,
        "name": f"{kind}-{seed}",
        "kind": kind,
        "seed": seed,
        "domain": {
            "lo": [round(float(x), 6) for x in lo],
            "hi": [round(float(x), 6) for x in hi],
        },
        "offbody": {
            "base_extent": 0.8,
            "points_per_patch": 4,
            "max_level": 2,
            "margin": 0.05,
            "max_brick_cells": 3,
        },
        "run": {
            "nsteps": 4,
            "dt": 0.05,
            "adapt_interval": 2,
            "machine": "sp2",
            "nodes": len(bodies) + 4,
            "grouping": "algorithm3",
        },
        "bodies": bodies,
    }
    return payload


# ----------------------------------------------------------------------
# serialisation


def scenario_json(payload: dict[str, Any]) -> str:
    return canonical_json(payload)


def write_scenario(payload: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(scenario_json(payload))
    return path


_REQUIRED_KEYS = ("schema", "name", "kind", "domain", "offbody", "run", "bodies")


def validate_scenario(payload: Any) -> dict[str, Any]:
    """Structural validation; returns the payload or raises ScenarioError."""
    if not isinstance(payload, dict):
        raise ScenarioError(f"scenario must be a JSON object, got {type(payload).__name__}")
    missing = [k for k in _REQUIRED_KEYS if k not in payload]
    if missing:
        raise ScenarioError(f"scenario missing keys: {missing}")
    if payload["schema"] != SCENARIO_SCHEMA:
        raise ScenarioError(
            f"unsupported scenario schema {payload['schema']!r} "
            f"(expected {SCENARIO_SCHEMA!r})"
        )
    if not payload["bodies"]:
        raise ScenarioError("scenario has no bodies")
    for body in payload["bodies"]:
        if "grid" not in body or "motion" not in body or "name" not in body:
            raise ScenarioError(f"bad body entry {body!r}")
        _motion_from_spec(body["motion"])
    run = payload["run"]
    if run.get("grouping", "algorithm3") not in GROUPING_STRATEGIES:
        raise ScenarioError(
            f"unknown grouping {run.get('grouping')!r}; "
            f"choose from {GROUPING_STRATEGIES}"
        )
    return payload


def load_scenario(path: str | Path) -> dict[str, Any]:
    import json

    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ScenarioError(f"scenario {path} is not valid JSON: {exc}") from exc
    return validate_scenario(payload)


# ----------------------------------------------------------------------
# case construction


def build_offbody_case(
    payload: dict[str, Any],
    machine=None,
    nodes: int | None = None,
    nsteps: int | None = None,
    grouping: str | None = None,
    **_ignored: Any,
) -> OffBodyCase:
    """Materialise an :class:`OffBodyCase` from a scenario payload.

    ``machine``/``nodes``/``nsteps``/``grouping`` override the
    scenario's run block (the CLI passes its usual knobs through;
    unrelated overflow-case knobs like ``scale`` are ignored).
    """
    validate_scenario(payload)
    run = payload["run"]
    grids = []
    motions: dict[int, PrescribedMotion] = {}
    for gi, body in enumerate(payload["bodies"]):
        g = dict(body["grid"])
        g["axis_origin"] = tuple(g.get("axis_origin", (0.0, 0.0, 0.0)))
        grids.append(body_of_revolution_grid(body["name"], **g))
        motions[gi] = _motion_from_spec(body["motion"])
    if machine is None:
        from repro.machine import MACHINE_PRESETS

        preset = MACHINE_PRESETS[run.get("machine", "sp2")]
        machine = preset(nodes=nodes or run["nodes"])
    elif nodes is not None:
        machine = machine.with_nodes(nodes)
    off = payload["offbody"]
    return OffBodyCase(
        name=payload["name"],
        machine=machine,
        near_body=tuple(grids),
        motions=motions,
        domain=AABB(payload["domain"]["lo"], payload["domain"]["hi"]),
        base_extent=off["base_extent"],
        points_per_patch=off.get("points_per_patch", 5),
        max_level=off.get("max_level", 2),
        margin=off.get("margin", 0.0),
        max_brick_cells=off.get("max_brick_cells", 3),
        nsteps=nsteps or run["nsteps"],
        dt=run["dt"],
        adapt_interval=run["adapt_interval"],
        grouping=grouping or run.get("grouping", "algorithm3"),
    )


def register_scenario_case(payload: dict[str, Any], source: str | Path | None = None):
    """Register a loaded scenario in the shared case registry.

    Returns the :class:`repro.cases.registry.CaseEntry`.  Re-loading the
    same name replaces the entry (the file is the source of truth).
    """
    from repro.cases import register_case

    validate_scenario(payload)

    def builder(**kwargs: Any) -> OffBodyCase:
        return build_offbody_case(payload, **kwargs)

    return register_case(
        payload["name"],
        builder,
        kind="offbody",
        help=f"generated {payload['kind']} scenario (seed {payload.get('seed')})",
        replace=True,
        source=str(source) if source is not None else None,
    )
