"""Adaptive Cartesian off-body grids — the paper's section-5 workload.

The subsystem the paper's Algorithm 3 was designed for: many small
auto-generated Cartesian patch grids tracking moving near-body grids,
bin-packed into connectivity-local groups, regenerated every adapt
epoch.

* :mod:`patches` — graded 2^d-tree patch generation (2:1 nesting);
* :mod:`manager` — per-epoch layout regeneration + donor weights;
* :mod:`driver` — the :class:`OffBodyDriver` timestep loop on the
  pluggable execution backends, with ``offbody:regen`` /
  ``offbody:group`` trace phases and elastic off-body-rank recovery;
* :mod:`scenario` — the seeded ``repro scenario`` generator and the
  canonical ``repro-scenario/1`` JSON format.

See docs/offbody.md.
"""

from repro.offbody.driver import (
    GROUPING_STRATEGIES,
    OffBodyCase,
    OffBodyDriver,
    OffBodyEpoch,
    OffBodyRunResult,
)
from repro.offbody.manager import OffBodyLayout, OffBodyManager
from repro.offbody.patches import Patch, PatchSystem
from repro.offbody.scenario import (
    SCENARIO_KINDS,
    SCENARIO_SCHEMA,
    ScenarioError,
    TumbleDrift,
    build_offbody_case,
    generate_scenario,
    load_scenario,
    register_scenario_case,
    scenario_json,
    write_scenario,
)

__all__ = [
    "GROUPING_STRATEGIES",
    "OffBodyCase",
    "OffBodyDriver",
    "OffBodyEpoch",
    "OffBodyRunResult",
    "OffBodyLayout",
    "OffBodyManager",
    "Patch",
    "PatchSystem",
    "SCENARIO_KINDS",
    "SCENARIO_SCHEMA",
    "ScenarioError",
    "TumbleDrift",
    "build_offbody_case",
    "generate_scenario",
    "load_scenario",
    "register_scenario_case",
    "scenario_json",
    "write_scenario",
]
