"""The off-body adaptive Cartesian driver (paper section 5, Algorithm 3).

Runs a multi-body :class:`OffBodyCase` on a simulated (or real-process)
machine.  The timestep loop mirrors :class:`repro.core.OverflowD1` —
flow / motion / connectivity phases separated by barriers — but the
grid population is *dynamic*: every ``adapt_interval`` steps the driver
regenerates the off-body Cartesian patch layout around the moved
near-body grids (``offbody:regen`` trace phase) and re-runs the
Algorithm 3 grouping that packs patches into connectivity-local,
load-balanced groups, one group per off-body rank (``offbody:group``).

Rank layout
-----------
With ``m`` near-body grids on an ``N``-node machine, near-body grid
``g`` runs on rank ``g`` and off-body group ``k`` on rank ``m + k``
(so ``ngroups = N - m``; ``N >= m + 1`` is required).  Because groups
are sized to the rank count, Algorithm 1 over the grouped unit sizes
degenerates to one processor per unit — the driver still runs
:func:`repro.partition.static_balance` each epoch and records its
achieved tolerance ``tau`` as the balance report.  The per-epoch
*regrouping* is this layer's dynamic load balancing: churned patches
are re-packed instead of migrated.

Communication
-------------
Donor exchange follows the DCF request/reply shape: the receiver rank
sends one request per donor relation (``igbp_request_bytes`` per
point), the donor rank answers (``donor_reply_bytes`` per point).
Patch-to-patch donors are closed-form Cartesian lookups; patch-fringe
points inside a near-body grid run the real stencil-walk
:func:`repro.connectivity.donor_search` (charged in walk steps), and
near-body outer-boundary points locate into patches for free.  All
message schedules are derived from one globally sorted relation list,
so every (src, dst, tag) channel sees the same order on both ends.

Determinism: the whole step is a pure function of (case, step index),
so private-state backends (mp) reproduce the sim backend's physics
byte-for-byte — pinned by the backend-equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.backend import BackendResult, ExecutionBackend, get_backend
from repro.connectivity.donorsearch import donor_search
from repro.grids.bbox import AABB
from repro.grids.structured import CurvilinearGrid
from repro.machine.faults import FaultPlan, FaultSpec, RankFailure
from repro.machine.metrics import MachineMetrics
from repro.machine.spec import MachineSpec
from repro.obs.rollup import IgbpRollup, PhaseRollup
from repro.offbody.manager import OffBodyLayout, OffBodyManager
from repro.partition.grouping import (
    GroupingResult,
    group_grids,
    round_robin_grids,
)
from repro.partition.static_lb import static_balance
from repro.resilience.recovery import RecoveryPolicy, run_failure_detection
from repro.solver.workmodel import WorkModel

TAG_OB_HALO = 401
TAG_OB_REQ = 402
TAG_OB_DONOR = 403

PHASE_FLOW = "overflow"
PHASE_MOTION = "motion"
PHASE_DCF = "dcf3d"
PHASE_REGEN = "offbody:regen"
PHASE_GROUP = "offbody:group"

PHASES_PER_STEP = 3

#: Modeled cost of rebuilding the patch layout (per patch point) and of
#: the grouping pass (per connectivity edge + patch) — charged as
#: driver-level spans between epochs, like restore/repartition.
REGEN_FLOPS_PER_POINT = 12.0
GROUP_FLOPS_PER_EDGE = 40.0

GROUPING_STRATEGIES = ("algorithm3", "roundrobin")


@dataclass
class OffBodyCase:
    """A multi-body adaptive off-body case, fully described by data."""

    name: str
    machine: MachineSpec
    near_body: tuple[CurvilinearGrid, ...]
    #: near-body grid index -> prescribed motion (missing = static).
    motions: dict[int, Any]
    domain: AABB
    base_extent: float
    points_per_patch: int = 5
    max_level: int = 2
    margin: float = 0.0
    max_brick_cells: int = 3
    nsteps: int = 4
    dt: float = 0.05
    adapt_interval: int = 2
    grouping: str = "algorithm3"
    work: WorkModel = field(default_factory=WorkModel)

    def __post_init__(self) -> None:
        if not self.near_body:
            raise ValueError("need at least one near-body grid")
        if self.grouping not in GROUPING_STRATEGIES:
            raise ValueError(
                f"unknown grouping {self.grouping!r}; "
                f"choose from {GROUPING_STRATEGIES}"
            )
        if self.machine.nodes < len(self.near_body) + 1:
            raise ValueError(
                f"need >= {len(self.near_body) + 1} nodes "
                f"({len(self.near_body)} near-body grids + 1 off-body "
                f"group), machine has {self.machine.nodes}"
            )
        if self.adapt_interval < 1:
            raise ValueError("adapt_interval must be >= 1")

    @property
    def n_near(self) -> int:
        return len(self.near_body)

    def make_manager(self) -> OffBodyManager:
        return OffBodyManager(
            self.domain,
            self.base_extent,
            points_per_patch=self.points_per_patch,
            max_level=self.max_level,
            margin=self.margin,
            max_brick_cells=self.max_brick_cells,
        )


# ----------------------------------------------------------------------
# results


@dataclass
class OffBodyEpoch:
    """One adapt epoch: fixed patch layout + grouping, N timesteps."""

    first_step: int
    nsteps: int
    elapsed: float
    rollup: PhaseRollup
    igbp: IgbpRollup
    strategy: str
    grouping: GroupingResult
    npatches: int
    created: int
    destroyed: int
    level_counts: dict[int, int]
    #: Donor points crossing a group boundary under this grouping.
    cut_points: int
    intra_edges: int
    cut_edges: int
    #: Algorithm-1 achieved tolerance over the grouped unit sizes.
    balance_tau: float
    search_steps_total: int
    orphans_total: int
    donors_total: int
    #: Per-step I(p) rows (tuples of ints, one per rank) — the raw
    #: series behind :attr:`igbp`, kept for the physics signature.
    per_step_igbp: list[tuple[int, ...]] = field(default_factory=list)


@dataclass
class OffBodyRecovery:
    """One elastic-shrink episode (off-body ranks only are expendable)."""

    failed_ranks: tuple[int, ...]
    nprocs_before: int
    nprocs_after: int
    step_failed: int
    step_restored: int
    t_failure: float
    t_detect: float
    t_restore: float
    t_repartition: float

    @property
    def downtime(self) -> float:
        return self.t_detect + self.t_restore + self.t_repartition

    def describe(self) -> str:
        return (
            f"recovery: ranks {list(self.failed_ranks)} failed at step "
            f"{self.step_failed} (t={self.t_failure:.4f}s); "
            f"{self.nprocs_before}->{self.nprocs_after} ranks, epoch "
            f"re-run from step {self.step_restored} "
            f"(detect {self.t_detect:.4f}s + regroup "
            f"{self.t_repartition:.4f}s)"
        )


@dataclass
class OffBodyRunResult:
    """Merged outcome of a full off-body run.

    Surface-compatible with :class:`repro.core.RunResult` where the CLI
    and analytics need it (``time_per_step``, ``mflops_per_node``,
    ``pct_dcf3d``, ``rollup()``, ``igbp_rollup()``, ``recoveries``,
    ``partition_history``).
    """

    case: str
    machine: str
    nprocs: int
    nsteps: int
    epochs: list[OffBodyEpoch] = field(default_factory=list)
    recoveries: list[OffBodyRecovery] = field(default_factory=list)
    wall_elapsed: float = 0.0

    @property
    def elapsed(self) -> float:
        return sum(e.elapsed for e in self.epochs)

    @property
    def time_per_step(self) -> float:
        return self.elapsed / self.nsteps

    @property
    def downtime(self) -> float:
        return sum(r.downtime for r in self.recoveries)

    def phase_total(self, phase: str) -> float:
        return sum(e.rollup.phase_total(phase) for e in self.epochs)

    @property
    def pct_dcf3d(self) -> float:
        total = sum(e.rollup.total_seconds() for e in self.epochs)
        if total == 0:
            return 0.0
        return 100.0 * self.phase_total(PHASE_DCF) / total

    @property
    def total_flops(self) -> float:
        return sum(e.rollup.total_flops() for e in self.epochs)

    @property
    def mflops_per_node(self) -> float:
        if self.elapsed == 0:
            return 0.0
        return self.total_flops / self.elapsed / self.nprocs / 1e6

    @property
    def partition_history(self) -> list[tuple[int, tuple[int, ...]]]:
        """(first step, points per group) per epoch — the off-body
        analogue of the near-body driver's procs-per-grid history."""
        return [(e.first_step, e.grouping.group_points) for e in self.epochs]

    def rollup(self) -> PhaseRollup:
        if not self.epochs:
            raise ValueError("run has no epochs")
        merged = PhaseRollup(self.nprocs)
        for e in self.epochs:
            merged.merge(e.rollup)
        return merged

    def igbp_rollup(self) -> IgbpRollup:
        merged = IgbpRollup()
        for e in self.epochs:
            merged.merge(e.igbp)
        return merged

    def physics_signature(self) -> dict[str, Any]:
        """Canonical backend-independent physics digest.

        Everything here is derived from integer connectivity counts and
        the deterministic layout/grouping — identical across sim and mp
        backends byte-for-byte (asserted by the backend tests via
        canonical JSON).
        """
        return {
            "case": self.case,
            "nsteps": self.nsteps,
            "epochs": [
                {
                    "first_step": e.first_step,
                    "npatches": e.npatches,
                    "created": e.created,
                    "destroyed": e.destroyed,
                    "levels": {str(k): v for k, v in sorted(e.level_counts.items())},
                    "group_of": list(e.grouping.group_of),
                    "cut_points": e.cut_points,
                    "igbp_per_step": [list(row) for row in e.per_step_igbp],
                    "search_steps": e.search_steps_total,
                    "donors": e.donors_total,
                    "orphans": e.orphans_total,
                }
                for e in self.epochs
            ],
        }


# ----------------------------------------------------------------------
# world state


@dataclass
class _StepConn:
    """Near-body coupling for one step (pure function of time+layout)."""

    #: (patch, nb grid) -> patch fringe points donated by the nb grid.
    w_pn: dict[tuple[int, int], int]
    #: (nb grid, patch) -> nb outer-boundary points donated by the patch.
    w_np: dict[tuple[int, int], int]
    #: nb grid -> stencil-walk steps spent serving patch fringes.
    search_steps: dict[int, int]
    #: patch -> points blanked by near-body wall boxes.
    holes: dict[int, int]
    #: patch -> fringe points in the hole region with no donor.
    orphans_p: dict[int, int]
    #: nb grid -> outer points with no patch donor inside the domain.
    orphans_n: dict[int, int]


class _OffBodyWorld:
    """Near-body poses + per-step connectivity versus the patch layout.

    Shared by all ranks under the sim backend; copied per rank under
    private-state backends — every method is a deterministic function
    of absolute time, so all copies agree bit-for-bit.
    """

    def __init__(self, case: OffBodyCase) -> None:
        self.case = case
        self.reference = list(case.near_body)
        self.grids = list(case.near_body)
        self.time = 0.0
        self._conn: tuple[tuple[float, int], _StepConn] | None = None
        self.advance(0.0)

    def advance(self, t: float) -> None:
        grids = []
        for gi, ref in enumerate(self.reference):
            motion = self.case.motions.get(gi)
            if motion is None:
                grids.append(ref)
            else:
                grids.append(ref.with_coordinates(motion.at(t).apply(ref.xyz)))
        self.grids = grids
        self.time = t
        self._conn = None

    def body_boxes(self) -> list[AABB]:
        return [g.bounding_box() for g in self.grids]

    def connectivity(self, layout: OffBodyLayout) -> _StepConn:
        key = (self.time, layout.epoch)
        if self._conn is not None and self._conn[0] == key:
            return self._conn[1]
        conn = _step_connectivity(self.grids, layout, self.case.domain)
        self._conn = (key, conn)
        return conn


def _grid_boundary_points(grid) -> np.ndarray:
    """Boundary node coordinates of a Cartesian patch grid, (n, ndim)."""
    ndim = grid.ndim
    coords = grid.coordinates().reshape(-1, ndim)
    axes = [np.arange(d) for d in grid.dims]
    idx = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, ndim)
    last = np.asarray(grid.dims) - 1
    on_face = np.any((idx == 0) | (idx == last), axis=-1)
    return coords[on_face]


def _step_connectivity(
    nb_grids: list[CurvilinearGrid],
    layout: OffBodyLayout,
    domain: AABB,
) -> _StepConn:
    """Hole cutting + donor search between patches and near-body grids."""
    w_pn: dict[tuple[int, int], int] = {}
    w_np: dict[tuple[int, int], int] = {}
    search_steps: dict[int, int] = {}
    holes: dict[int, int] = {}
    orphans_p: dict[int, int] = {}
    orphans_n: dict[int, int] = {}

    patch_boxes = [g.bounding_box() for g in layout.grids]

    for gi, g in enumerate(nb_grids):
        nb_box = g.bounding_box()
        wall_pts = [g.face_points(b.face).reshape(-1, g.ndim) for b in g.wall_faces()]
        wall_box = None
        if wall_pts:
            raw = AABB.of_points(np.concatenate(wall_pts))
            # Same shrink rule as connectivity.holecut: the wall-point
            # box overestimates the solid, pull it in a little.
            shrink = -0.02 * float(raw.extent.max())
            if np.all(raw.extent + 2 * shrink > 0):
                wall_box = raw.inflated(shrink)
            else:
                wall_box = raw

        # Gather the fringe points of every intersecting patch and run
        # ONE stencil-walk donor search per near-body grid — the search
        # seeds and walks all points together, then the results are
        # split back per patch.
        fr_chunks: list[np.ndarray] = []
        fr_slices: list[tuple[int, int, int]] = []
        offset = 0
        for pi in range(len(layout.grids)):
            if not patch_boxes[pi].intersects(nb_box):
                continue
            pgrid = layout.grids[pi]
            if wall_box is not None:
                blanked = wall_box.contains(
                    pgrid.coordinates().reshape(-1, pgrid.ndim)
                )
                nblank = int(np.sum(blanked))
                if nblank:
                    holes[pi] = holes.get(pi, 0) + nblank
            fringe = _grid_boundary_points(pgrid)
            inside = nb_box.contains(fringe)
            if not np.any(inside):
                continue
            pts = fringe[inside]
            fr_chunks.append(pts)
            fr_slices.append((pi, offset, offset + len(pts)))
            offset += len(pts)
        if fr_chunks:
            allpts = np.concatenate(fr_chunks)
            res = donor_search(g.xyz, allpts)
            search_steps[gi] = search_steps.get(gi, 0) + int(res.total_steps)
            in_wall = (
                wall_box.contains(allpts)
                if wall_box is not None
                else np.zeros(len(allpts), dtype=bool)
            )
            for pi, a, b in fr_slices:
                found = int(np.sum(res.found[a:b]))
                if found:
                    w_pn[(pi, gi)] = w_pn.get((pi, gi), 0) + found
                nlost = int(np.sum((~res.found[a:b]) & in_wall[a:b]))
                if nlost:
                    orphans_p[pi] = orphans_p.get(pi, 0) + nlost

        # Near-body outer boundary points interpolate from the finest
        # containing patch — closed-form Cartesian lookup, zero walk.
        outer = [
            g.face_points(b.face).reshape(-1, g.ndim)
            for b in g.boundaries
            if b.kind == "overset"
        ]
        if not outer:
            continue
        opts = np.concatenate(outer)
        best = np.full(len(opts), -1, dtype=np.int64)
        best_level = np.full(len(opts), -1, dtype=np.int64)
        order = sorted(
            range(len(layout.patches)),
            key=lambda pi: (layout.patches[pi].level, -pi),
        )
        for pi in order:
            lvl = layout.patches[pi].level
            inside = patch_boxes[pi].contains(opts)
            take = inside & (lvl >= best_level)
            best[take] = pi
            best_level[take] = lvl
        for pi in np.unique(best[best >= 0]):
            w_np[(gi, int(pi))] = int(np.sum(best == pi))
        lost = (best < 0) & domain.contains(opts)
        nlost = int(np.sum(lost))
        if nlost:
            orphans_n[gi] = orphans_n.get(gi, 0) + nlost

    return _StepConn(
        w_pn=w_pn, w_np=w_np, search_steps=search_steps,
        holes=holes, orphans_p=orphans_p, orphans_n=orphans_n,
    )


# ----------------------------------------------------------------------
# driver internals


@dataclass
class _StepStats:
    step: int
    igbps_received: int
    search_steps: int
    donors_found: int
    orphans: int


@dataclass
class _EpochPlan:
    """Everything fixed for one adapt epoch's rank programs."""

    layout: OffBodyLayout
    grouping: GroupingResult
    strategy: str
    nranks: int
    n_near: int
    balance_tau: float

    def owner_of_patch(self, pi: int) -> int:
        return self.n_near + self.grouping.group_of[pi]

    def owned_patches(self, rank: int) -> list[int]:
        if rank < self.n_near:
            return []
        return self.grouping.members(rank - self.n_near)


def _donor_exchange(
    plan: _EpochPlan, conn: _StepConn
) -> list[tuple[int, int, int]]:
    """Donor traffic for one step, merged per rank pair.

    Returns sorted ``(recv_rank, donor_rank, points)`` triples — all
    donor relations between two ranks coalesce into one request and one
    reply message (the merged-sends protocol), including the intra-rank
    entries (no message, but counted in I(p) and service work).
    """
    agg: dict[tuple[int, int], int] = {}

    def add(recv_r: int, donor_r: int, w: int) -> None:
        agg[(recv_r, donor_r)] = agg.get((recv_r, donor_r), 0) + w

    for (i, j), w in plan.layout.weights.items():
        add(plan.owner_of_patch(i), plan.owner_of_patch(j), w)
    for (pi, gi), w in conn.w_pn.items():
        add(plan.owner_of_patch(pi), gi, w)
    for (gi, pi), w in conn.w_np.items():
        add(gi, plan.owner_of_patch(pi), w)
    return sorted((r, d, w) for (r, d), w in agg.items())


def _halo_pairs(plan: _EpochPlan) -> list[tuple[int, int, int]]:
    """Cross-rank off-body halo volumes: (rank a, rank b, points)."""
    vol: dict[tuple[int, int], int] = {}
    w = plan.layout.weights
    for i, j in sorted(plan.layout.edges):
        a, b = plan.owner_of_patch(i), plan.owner_of_patch(j)
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        pts = w.get((i, j), 0) + w.get((j, i), 0)
        vol[key] = vol.get(key, 0) + pts
    return [(a, b, pts) for (a, b), pts in sorted(vol.items()) if pts > 0]


@dataclass
class _DriverState:
    step: int
    nranks: int
    epochs: list = field(default_factory=list)
    recoveries: list = field(default_factory=list)
    vt: float = 0.0


class OffBodyDriver:
    """Run an :class:`OffBodyCase` on a pluggable execution backend.

    Parameters mirror :class:`repro.core.OverflowD1` where they apply:
    ``tracer`` records per-rank spans (plus the new ``offbody:regen`` /
    ``offbody:group`` driver phases), ``fault_plan`` injects rank
    failures (sim backend only), ``recovery_policy`` prices the
    detection/restore/regroup episode.  There is no checkpoint file:
    prescribed motions make the world a pure function of absolute time,
    so recovery re-derives state instead of restoring bytes — the
    restore cost is still charged per the policy.

    Only off-body ranks are expendable: near-body grids are pinned one
    per rank, so a failure of rank ``< n_near`` (or shrinking below
    ``n_near + 1`` ranks) re-raises the failure.
    """

    def __init__(
        self,
        case: OffBodyCase,
        tracer=None,
        fault_plan=None,
        recovery_policy: RecoveryPolicy | None = None,
        sanitizer=None,
        backend: str | ExecutionBackend = "sim",
    ) -> None:
        self.case = case
        self.backend = (
            backend
            if isinstance(backend, ExecutionBackend)
            else get_backend(backend)
        )
        if not self.backend.shared_state:
            if sanitizer is not None:
                raise ValueError(
                    "the sanitizer needs the deterministic simulator; "
                    "run with backend='sim'"
                )
            if fault_plan:
                raise ValueError(
                    "fault injection needs the deterministic simulator; "
                    "run with backend='sim'"
                )
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.sanitizer = sanitizer
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        elif isinstance(fault_plan, (list, tuple)):
            fault_plan = FaultPlan(fault_plan)
        self.fault_plan = fault_plan if fault_plan else None
        self.policy = recovery_policy or RecoveryPolicy()
        self._pending_faults: list[FaultSpec] = []

    # ------------------------------------------------------------------

    def run(self) -> OffBodyRunResult:
        case = self.case
        self._pending_faults = (
            list(self.fault_plan.faults) if self.fault_plan else []
        )
        world = _OffBodyWorld(case)
        manager = case.make_manager()
        state = _DriverState(step=0, nranks=case.machine.nodes)
        while state.step < case.nsteps:
            nsteps = min(case.adapt_interval, case.nsteps - state.step)
            try:
                self._run_epoch(state, world, manager, nsteps)
            except RankFailure as failure:
                state = self._recover(state, world, failure)
        return OffBodyRunResult(
            case=case.name,
            machine=case.machine.name,
            nprocs=case.machine.nodes,
            nsteps=case.nsteps,
            epochs=state.epochs,
            recoveries=state.recoveries,
            wall_elapsed=state.vt,
        )

    # ------------------------------------------------------------------

    def _plan_epoch(
        self, state: _DriverState, world: _OffBodyWorld,
        manager: OffBodyManager, traced: bool = True,
    ) -> _EpochPlan:
        """Regenerate patches + regroup; charges the driver-level spans."""
        case = self.case
        tracer = self.tracer if traced else None
        machine = case.machine
        n_near = case.n_near
        ngroups = state.nranks - n_near

        layout = manager.regenerate(world.body_boxes())
        t_regen = machine.compute_time(
            REGEN_FLOPS_PER_POINT * max(1, layout.total_points)
        )
        if tracer is not None:
            for r in range(state.nranks):
                tracer.phase(r, 0.0, PHASE_REGEN)
                tracer.op(r, PHASE_REGEN, "compute", 0.0, t_regen)
            tracer.advance(t_regen)
            tracer.mark(
                0.0, "offbody:regen",
                step=state.step,
                npatches=layout.npatches,
                created=layout.created,
                destroyed=layout.destroyed,
                levels={str(k): v for k, v in sorted(layout.level_counts().items())},
            )
        state.vt += t_regen

        edges = set(layout.edges)
        if case.grouping == "algorithm3":
            grouping = group_grids(list(layout.sizes), edges, ngroups)
        else:
            grouping = round_robin_grids(list(layout.sizes), ngroups)
        t_group = machine.compute_time(
            GROUP_FLOPS_PER_EDGE * max(1, len(edges) + layout.npatches)
        )
        # Algorithm 1 over the grouped unit sizes (near-body grids +
        # non-empty groups): with units == ranks this assigns one
        # processor each; its achieved tolerance is the balance report.
        unit_sizes = [g.npoints for g in case.near_body] + [
            p for p in grouping.group_points if p > 0
        ]
        sb = static_balance(unit_sizes, len(unit_sizes))
        cut_points = grouping.cut_weight(layout.weights)
        if tracer is not None:
            for r in range(state.nranks):
                tracer.phase(r, 0.0, PHASE_GROUP)
                tracer.op(r, PHASE_GROUP, "compute", 0.0, t_group)
            tracer.advance(t_group)
            tracer.mark(
                0.0, "offbody:group",
                step=state.step,
                strategy=case.grouping,
                ngroups=ngroups,
                group_points=list(grouping.group_points),
                cut_points=cut_points,
                imbalance=grouping.imbalance(),
            )
        state.vt += t_group

        return _EpochPlan(
            layout=layout,
            grouping=grouping,
            strategy=case.grouping,
            nranks=state.nranks,
            n_near=n_near,
            balance_tau=sb.tau,
        )

    def _run_epoch(
        self, state: _DriverState, world: _OffBodyWorld,
        manager: OffBodyManager, nsteps: int,
    ) -> None:
        case = self.case
        tracer = self.tracer
        plan = self._plan_epoch(state, world, manager)
        first_step = state.step

        out = self._run_chunk(
            world, plan, first_step, nsteps,
            fault_plan=self._chunk_fault_plan(state, nsteps),
        )

        nranks = state.nranks
        per_step = np.zeros((nsteps, nranks), dtype=np.int64)
        search_total = 0
        orphans_total = 0
        donors_total = 0
        for rank, stats in enumerate(out.returns):
            for s, st in enumerate(stats):
                per_step[s, rank] = st.igbps_received
                search_total += st.search_steps
                orphans_total += st.orphans
                donors_total += st.donors_found
        igbp = IgbpRollup()
        for s in range(nsteps):
            igbp.record(per_step[s])
        rollup = PhaseRollup.from_metrics(MachineMetrics(list(out.metrics.ranks)))
        elapsed = max(rm.final_clock for rm in out.metrics.ranks)

        epoch = OffBodyEpoch(
            first_step=first_step,
            nsteps=nsteps,
            elapsed=elapsed,
            rollup=rollup,
            igbp=igbp,
            strategy=plan.strategy,
            grouping=plan.grouping,
            npatches=plan.layout.npatches,
            created=plan.layout.created,
            destroyed=plan.layout.destroyed,
            level_counts=plan.layout.level_counts(),
            cut_points=plan.grouping.cut_weight(plan.layout.weights),
            intra_edges=plan.grouping.intra_group_edges(set(plan.layout.edges)),
            cut_edges=plan.grouping.cut_edges(set(plan.layout.edges)),
            balance_tau=plan.balance_tau,
            search_steps_total=search_total,
            orphans_total=orphans_total,
            donors_total=donors_total,
            per_step_igbp=[tuple(int(x) for x in row) for row in per_step],
        )
        state.epochs.append(epoch)
        state.step = first_step + nsteps
        if tracer is not None:
            tracer.advance(elapsed)
        state.vt += elapsed

    # ------------------------------------------------------------------
    # fault plumbing (mirrors OverflowD1, without checkpoint files)

    def _chunk_fault_plan(
        self, state: _DriverState, nsteps: int
    ) -> FaultPlan | None:
        if not self._pending_faults:
            return None
        specs = []
        for f in self._pending_faults:
            if f.rank >= state.nranks:
                continue
            if f.step is not None:
                if state.step <= f.step < state.step + nsteps:
                    specs.append(FaultSpec(
                        rank=f.rank,
                        phase_index=PHASES_PER_STEP * (f.step - state.step),
                    ))
            elif f.time is not None:
                specs.append(FaultSpec(
                    rank=f.rank, time=max(0.0, f.time - state.vt)
                ))
            else:
                specs.append(FaultSpec(rank=f.rank, phase_index=f.phase_index))
        return FaultPlan(specs) if specs else None

    def _recover(
        self, state: _DriverState, world: _OffBodyWorld, failure: RankFailure
    ) -> _DriverState:
        """Detection -> shrink -> regroup; the epoch re-runs from its start."""
        case = self.case
        tracer = self.tracer
        policy = self.policy
        old_n = state.nranks

        if len(state.recoveries) >= policy.max_recoveries:
            raise failure

        t_fail_local = failure.time
        vt_fail = state.vt + t_fail_local
        if tracer is not None:
            tracer.advance(t_fail_local)
            tracer.mark(
                0.0, "recovery",
                failed_ranks=list(failure.failed_ranks),
                step=state.step,
            )

        dead, t_detect = run_failure_detection(
            case.machine.with_nodes(old_n),
            failure.failed_ranks,
            tracer=tracer,
            timeout=policy.detection_timeout,
            sanitizer=self.sanitizer,
        )
        if tracer is not None:
            tracer.advance(t_detect)
        dead_set = set(dead)
        self._pending_faults = [
            f for f in self._pending_faults if f.rank not in dead_set
        ]
        if any(r < case.n_near for r in dead_set):
            # A near-body rank died: its grid has no other host.
            raise failure
        n_new = old_n - len(dead)
        if n_new < case.n_near + 1:
            raise failure

        # "Restore" = re-derive the world at the epoch start time; the
        # modeled cost covers re-reading body poses + layout rebuild.
        world.advance(state.step * case.dt)
        t_restore = policy.restore_latency
        if tracer is not None:
            for r in range(old_n):
                if r not in dead_set:
                    tracer.phase(r, 0.0, "restore")
                    tracer.op(r, "restore", "compute", 0.0, t_restore)
            tracer.advance(t_restore)

        t_rep = policy.repartition_seconds
        if tracer is not None:
            for r in range(n_new):
                tracer.phase(r, 0.0, "repartition")
                tracer.op(r, "repartition", "compute", 0.0, t_rep)
            tracer.advance(t_rep)

        new_state = _DriverState(
            step=state.step,
            nranks=n_new,
            epochs=state.epochs,
            recoveries=state.recoveries,
            vt=vt_fail + t_detect + t_restore + t_rep,
        )
        record = OffBodyRecovery(
            failed_ranks=tuple(dead),
            nprocs_before=old_n,
            nprocs_after=n_new,
            step_failed=state.step,
            step_restored=state.step,
            t_failure=vt_fail,
            t_detect=t_detect,
            t_restore=t_restore,
            t_repartition=t_rep,
        )
        new_state.recoveries.append(record)
        if tracer is not None:
            tracer.mark(
                0.0, "recovered",
                step=state.step,
                nprocs=n_new,
            )
        return new_state

    # ------------------------------------------------------------------

    def _run_chunk(
        self,
        world: _OffBodyWorld,
        plan: _EpochPlan,
        first_step: int,
        nsteps: int,
        fault_plan: FaultPlan | None = None,
    ) -> BackendResult:
        case = self.case
        work = case.work
        shared_state = self.backend.shared_state
        nranks = plan.nranks
        n_near = plan.n_near
        halo = _halo_pairs(plan)
        dt = case.dt
        patch_npts = plan.layout.sizes

        def program(comm):
            rank = comm.rank
            mine = plan.owned_patches(rank)
            if rank < n_near:
                grid0 = case.near_body[rank]
                own_pts = grid0.npoints
                flow_flops = work.flow_flops(
                    own_pts, grid0.viscous, grid0.turbulence, grid0.ndim
                )
                moves = rank in case.motions
            else:
                own_pts = sum(patch_npts[pi] for pi in mine)
                # Patch grids are inviscid background Cartesian blocks.
                flow_flops = work.flow_flops(own_pts, False, False, case.domain.ndim)
                moves = False
            my_halo = [
                (b if a == rank else a, pts)
                for a, b, pts in halo
                if rank in (a, b)
            ]
            stats_out: list[_StepStats] = []

            for s in range(nsteps):
                step = first_step + s
                # ---- (1) flow solve -----------------------------------
                yield from comm.set_phase(PHASE_FLOW)
                if own_pts:
                    yield from comm.compute(
                        flops=flow_flops, points_per_node=own_pts
                    )
                for _ in range(work.halo_exchanges_per_step):
                    for nbr, pts in my_halo:
                        yield from comm.send(
                            nbr, TAG_OB_HALO, None,
                            nbytes=work.halo_bytes(pts),
                        )
                    for nbr, _pts in my_halo:
                        yield from comm.recv(nbr, TAG_OB_HALO)
                yield from comm.barrier()

                # ---- (2) grid motion ----------------------------------
                yield from comm.set_phase(PHASE_MOTION)
                if moves:
                    yield from comm.compute(flops=work.motion_flops(own_pts))
                if rank == 0 or not shared_state:
                    world.advance((step + 1) * dt)
                yield from comm.barrier()

                # ---- (3) domain connectivity --------------------------
                yield from comm.set_phase(PHASE_DCF)
                if own_pts:
                    yield from comm.compute(
                        flops=work.holecut_flops_per_point * own_pts
                    )
                conn = world.connectivity(plan.layout)
                pairs = _donor_exchange(plan, conn)
                my_out = [
                    (d, w) for r, d, w in pairs if r == rank and d != rank
                ]
                my_in = [
                    (r, w) for r, d, w in pairs if d == rank and r != rank
                ]
                received = sum(w for r, _d, w in pairs if r == rank)
                served = sum(w for _r, d, w in pairs if d == rank)
                # Requests out (I am the receiver asking for donors)...
                for d, w in my_out:
                    yield from comm.send(
                        d, TAG_OB_REQ, None,
                        nbytes=w * work.igbp_request_bytes,
                    )
                if received:
                    yield from comm.compute(
                        flops=received * work.igbp_request_flops
                    )
                # ...requests in, serviced, replies out...
                for r, _w in my_in:
                    yield from comm.recv(r, TAG_OB_REQ)
                if served:
                    yield from comm.compute(
                        flops=served * work.igbp_service_flops
                    )
                for r, w in my_in:
                    yield from comm.send(
                        r, TAG_OB_DONOR, None,
                        nbytes=w * work.donor_reply_bytes,
                    )
                # ...replies in, then interpolation on received donors.
                for d, _w in my_out:
                    yield from comm.recv(d, TAG_OB_DONOR)
                if received:
                    yield from comm.compute(
                        flops=received * work.interp_flops_per_igbp
                    )
                # Walk-step work for donor searches served by my nb grid.
                my_search = (
                    conn.search_steps.get(rank, 0) if rank < n_near else 0
                )
                if my_search:
                    yield from comm.compute(
                        flops=work.search_flops(my_search)
                    )
                my_orphans = (
                    conn.orphans_n.get(rank, 0)
                    if rank < n_near
                    else sum(conn.orphans_p.get(pi, 0) for pi in mine)
                )
                stats_out.append(_StepStats(
                    step=step,
                    igbps_received=received,
                    search_steps=my_search,
                    donors_found=received,
                    orphans=my_orphans,
                ))
                yield from comm.barrier()
            return stats_out

        out = self.backend.run(
            case.machine.with_nodes(nranks),
            [program] * nranks,
            tracer=self.tracer,
            fault_plan=fault_plan,
            sanitizer=self.sanitizer,
        )
        if not shared_state:
            # Bring the driver's own world copy up to the chunk end.
            world.advance((first_step + nsteps) * dt)
        return out
