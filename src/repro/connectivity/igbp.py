"""Inter-grid boundary point (IGBP) identification.

IGBPs are the points whose values must be interpolated from another
grid each timestep (paper section 2.2): the points on faces flagged
``overset`` (the outer fringe of a component grid embedded in a larger
one) plus the fringe of active points ringing every hole cut by
:mod:`repro.connectivity.holecut`.

The ratio of IGBPs to gridpoints is the paper's predictor of how
expensive the connectivity solution is relative to the flow solution
(44e-3 airfoil, 33e-3 delta wing, 66e-3 store case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.connectivity.holecut import hole_fringe_mask
from repro.grids.structured import CurvilinearGrid


@dataclass
class IgbpSet:
    """The IGBPs of one receiver grid."""

    grid_index: int
    flat_indices: np.ndarray  # (n,) into the grid's flattened points
    points: np.ndarray        # (n, ndim) physical coordinates

    @property
    def count(self) -> int:
        return int(self.flat_indices.shape[0])

    def updated_coordinates(self, grid: CurvilinearGrid) -> "IgbpSet":
        """Same point set with coordinates re-read after grid motion."""
        return IgbpSet(
            self.grid_index,
            self.flat_indices,
            grid.points_flat()[self.flat_indices],
        )


def find_igbps(
    grid: CurvilinearGrid,
    grid_index: int,
    iblank: np.ndarray | None = None,
    fringe_layers: int = 1,
) -> IgbpSet:
    """All IGBPs of one grid: overset-face points + hole fringe.

    ``fringe_layers`` widens the overset fringe (the paper's grids
    overlap "by one or more grid cells").
    """
    need = np.zeros(grid.dims, dtype=bool)
    for b in grid.boundaries:
        if b.kind != "overset":
            continue
        axis = {"i": 0, "j": 1, "k": 2}[b.face[0]]
        sl: list = [slice(None)] * len(grid.dims)
        if b.face.endswith("min"):
            sl[axis] = slice(0, fringe_layers)
        else:
            sl[axis] = slice(-fringe_layers, None)
        need[tuple(sl)] = True
    if iblank is not None:
        fringe = hole_fringe_mask(iblank)
        for _ in range(fringe_layers - 1):
            grown = fringe.copy()
            hole_or_fringe = (iblank == 0) | fringe
            grown |= hole_fringe_mask(np.where(hole_or_fringe, 0, 1))
            fringe = grown & (iblank == 1)
        need |= fringe
        need &= iblank == 1  # hole points themselves receive nothing
    flat = np.nonzero(need.reshape(-1))[0].astype(np.int64)
    return IgbpSet(grid_index, flat, grid.points_flat()[flat])


def igbp_ratio(igbp_sets: list[IgbpSet], grids: list[CurvilinearGrid]) -> float:
    """Composite IGBPs / gridpoints — the paper's per-case statistic."""
    total_igbp = sum(s.count for s in igbp_sets)
    total_pts = sum(g.npoints for g in grids)
    return total_igbp / total_pts if total_pts else 0.0
