"""Stencil-walk donor search with Newton inversion.

For each receiver point x the search finds the donor cell (i, j[, k])
of a curvilinear grid and the fractional coordinates s in [0, 1]^ndim
such that the multilinear map of the cell corners reproduces x.  The
walk starts from a guess cell (previous donor warm — the "nth-level
restart" — or a coarse nearest-node seed when cold), Newton-inverts the
multilinear map inside the current cell, and if the solution lands
outside the unit cube steps the cell index toward it.  All points are
processed as one vectorised batch per iteration (active-mask pattern),
never per-point Python loops.

Cold starts are expensive by construction, as in the paper ("nothing is
known about the possible donor location and the solution must be
performed from scratch"): the coarse nearest-node scan is charged as
extra walk steps, so warm restarts show the paper's "considerable
reduction" in search cost.

The per-point *step counts* are returned: they are the connectivity
work measure the simulated machine charges
(:class:`repro.solver.workmodel.WorkModel.search_step_flops`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DonorSearchResult:
    """Batch search outcome."""

    cells: np.ndarray    # (n, ndim) donor cell indices (valid where found)
    fracs: np.ndarray    # (n, ndim) fractional offsets in [0, 1]
    found: np.ndarray    # (n,) bool
    steps: np.ndarray    # (n,) walk iterations spent per point
    escaped: np.ndarray  # (n,) walk left the allowed cell window; the
                         # last cell is a forwarding hint

    @property
    def total_steps(self) -> int:
        return int(self.steps.sum())


def _corners2d(xyz: np.ndarray, cells: np.ndarray):
    i, j = cells[:, 0], cells[:, 1]
    return (
        xyz[i, j],
        xyz[i + 1, j],
        xyz[i, j + 1],
        xyz[i + 1, j + 1],
    )


def _map2d(c00, c10, c01, c11, s):
    a, b = s[:, :1], s[:, 1:2]
    return (
        (1 - a) * (1 - b) * c00
        + a * (1 - b) * c10
        + (1 - a) * b * c01
        + a * b * c11
    )


def _jac2d(c00, c10, c01, c11, s):
    a, b = s[:, :1], s[:, 1:2]
    dxa = (1 - b) * (c10 - c00) + b * (c11 - c01)
    dxb = (1 - a) * (c01 - c00) + a * (c11 - c10)
    return np.stack([dxa, dxb], axis=-1)  # (n, 2, 2): d(xy)/d(ab)


def _corners3d(xyz: np.ndarray, cells: np.ndarray):
    i, j, k = cells[:, 0], cells[:, 1], cells[:, 2]
    return [
        xyz[i + di, j + dj, k + dk]
        for dk in (0, 1)
        for dj in (0, 1)
        for di in (0, 1)
    ]  # order: di fastest


def _map3d(corners, s):
    a, b, c = s[:, :1], s[:, 1:2], s[:, 2:3]
    wa = [(1 - a), a]
    wb = [(1 - b), b]
    wc = [(1 - c), c]
    out = 0.0
    idx = 0
    for dk in (0, 1):
        for dj in (0, 1):
            for di in (0, 1):
                out = out + wa[di] * wb[dj] * wc[dk] * corners[idx]
                idx += 1
    return out


def _jac3d(corners, s):
    eps = 1e-7
    base = _map3d(corners, s)
    cols = []
    for d in range(3):
        sp = s.copy()
        sp[:, d] += eps
        cols.append((_map3d(corners, sp) - base) / eps)
    return np.stack(cols, axis=-1)  # (n, 3, 3)


def _solve_clamped(J: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Solve J x = r per point with the determinant clamped away from
    zero — degenerate cells (e.g. collapsed trailing-edge cells) then
    produce a large-but-finite Newton step that the walk damps, instead
    of a LinAlgError."""
    ndim = J.shape[-1]
    if ndim == 2:
        a, b = J[:, 0, 0], J[:, 0, 1]
        c, d = J[:, 1, 0], J[:, 1, 1]
        det = a * d - b * c
        det = np.where(np.abs(det) < 1e-14, np.where(det < 0, -1e-14, 1e-14), det)
        x0 = (d * r[:, 0] - b * r[:, 1]) / det
        x1 = (-c * r[:, 0] + a * r[:, 1]) / det
        return np.stack([x0, x1], axis=-1)
    # 3-D: adjugate / determinant.
    det = np.linalg.det(J)
    det = np.where(np.abs(det) < 1e-14, np.where(det < 0, -1e-14, 1e-14), det)
    adj = np.empty_like(J)
    for i in range(3):
        for j in range(3):
            minor = np.delete(np.delete(J, i, axis=1), j, axis=2)
            cof = (
                minor[:, 0, 0] * minor[:, 1, 1]
                - minor[:, 0, 1] * minor[:, 1, 0]
            )
            adj[:, j, i] = ((-1) ** (i + j)) * cof
    return np.einsum("nij,nj->ni", adj, r) / det[:, None]


def _nearest_node_seed(
    xyz: np.ndarray,
    pts: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    target_samples: int = 256,
) -> tuple[np.ndarray, int]:
    """Cold-start seeding: nearest coarsely-sampled node per point.

    Samples the cell window with a uniform stride aimed at about
    ``target_samples`` nodes, returns the cell index of the nearest
    sample per point plus the charged cost in walk-step equivalents
    (one step ~ 8 distance evaluations).
    """
    ndim = xyz.shape[-1]
    window = [np.arange(lo[d], hi[d] + 1) for d in range(ndim)]
    total = int(np.prod([w.size for w in window]))
    stride = max(1, int(round((total / target_samples) ** (1.0 / ndim))))
    axes = [w[::stride] for w in window]
    mesh = np.meshgrid(*axes, indexing="ij")
    sample_idx = np.stack([m.ravel() for m in mesh], axis=-1)  # (m, ndim)
    sample_xyz = xyz[tuple(sample_idx.T)]  # (m, ndim)
    # Chunk over points to bound the (n, m) distance matrix.
    n = pts.shape[0]
    out = np.zeros((n, ndim), dtype=np.int64)
    chunk = max(1, 4_000_000 // max(1, sample_xyz.shape[0]))
    for start in range(0, n, chunk):
        p = pts[start : start + chunk]
        d2 = ((p[:, None, :] - sample_xyz[None, :, :]) ** 2).sum(axis=-1)
        # Prefer the *last* minimal sample: on O-grids the seam node is
        # stored twice (i = 0 and i = ni-1 coincide) and only the
        # high-index copy starts the walk inside a valid cell window.
        best = d2.shape[1] - 1 - np.argmin(d2[:, ::-1], axis=1)
        out[start : start + chunk] = sample_idx[best]
    out = np.clip(out, lo, hi)
    cost = max(1, sample_xyz.shape[0] // 8)
    return out, cost


def donor_search(
    xyz: np.ndarray,
    points: np.ndarray,
    guesses: np.ndarray | None = None,
    max_steps: int = 200,
    newton_iters: int = 8,
    tol: float = 1e-10,
    cell_lo: np.ndarray | None = None,
    cell_hi: np.ndarray | None = None,
) -> DonorSearchResult:
    """Search donor cells of one curvilinear grid for a batch of points.

    Parameters
    ----------
    xyz:
        Donor grid coordinates, shape (*dims, ndim).
    points:
        Receiver points, shape (n, ndim).
    guesses:
        Optional starting cells (n, ndim) — the nth-level restart path.
        Out-of-range guesses are clipped.
    cell_lo / cell_hi:
        Optional inclusive cell-index bounds restricting the walk (the
        distributed search walks only inside a processor's subdomain and
        *exits* instead of crossing it).  Points whose walk leaves the
        bounds are reported not-found with their last cell in ``cells``
        (the forwarding hint).

    Rows of ``guesses`` containing any negative entry are treated as
    cold (no hint) and seeded like a ``guesses=None`` search.
    """
    dims = xyz.shape[:-1]
    ndim = xyz.shape[-1]
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n = pts.shape[0]
    max_cell = np.array(dims) - 2
    lo = np.zeros(ndim, dtype=np.int64) if cell_lo is None else np.asarray(cell_lo, np.int64)
    hi = max_cell.copy() if cell_hi is None else np.asarray(cell_hi, np.int64)
    lo = np.maximum(lo, 0)
    hi = np.minimum(hi, max_cell)

    fracs = np.full((n, ndim), 0.5)
    found = np.zeros(n, dtype=bool)
    escaped = np.zeros(n, dtype=bool)
    steps = np.zeros(n, dtype=np.int64)

    if guesses is None:
        cold = np.ones(n, dtype=bool)
        cells = np.zeros((n, ndim), dtype=np.int64)
    else:
        cells = np.asarray(guesses, np.int64).copy()
        cold = np.any(cells < 0, axis=1)
        cells[~cold] = np.clip(cells[~cold], lo, hi)
    if cold.any():
        seeds, seed_cost = _nearest_node_seed(xyz, pts[cold], lo, hi)
        cells[cold] = seeds
        steps[cold] += seed_cost

    active = np.ones(n, dtype=bool)
    for _ in range(max_steps):
        if not active.any():
            break
        idx = np.nonzero(active)[0]
        c = cells[idx]
        target = pts[idx]
        # Newton inversion of the multilinear map within the cell.
        s = np.full((idx.size, ndim), 0.5)
        if ndim == 2:
            corners = _corners2d(xyz, c)
            for _ in range(newton_iters):
                r = _map2d(*corners, s) - target
                J = _jac2d(*corners, s)
                s = s - np.clip(_solve_clamped(J, r), -1e6, 1e6)
                if np.abs(r).max() < tol:
                    break
        else:
            corners = _corners3d(xyz, c)
            for _ in range(newton_iters):
                r = _map3d(corners, s) - target
                J = _jac3d(corners, s)
                s = s - np.clip(_solve_clamped(J, r), -1e6, 1e6)
                if np.abs(r).max() < tol:
                    break

        steps[idx] += 1
        inside = np.all((s >= -1e-9) & (s <= 1 + 1e-9), axis=1)

        # Converged points.
        done = idx[inside]
        found[done] = True
        fracs[done] = np.clip(s[inside], 0.0, 1.0)
        active[done] = False

        # Walk the rest: move the cell toward the Newton solution.
        movers = ~inside
        if movers.any():
            mi = idx[movers]
            sm = s[movers]
            # Step by the integer part of the overshoot, at least one
            # cell in the dominant escape direction.  Walks are local
            # (seeded or warm-started) so large Newton extrapolations
            # are distrusted and damped hard.
            delta = np.floor(sm).astype(np.int64)
            delta = np.clip(delta, -2, 2)
            zero_rows = np.all(delta == 0, axis=1)
            if zero_rows.any():
                # s in [-eps, 1+eps) but flagged outside: nudge dominant.
                dom = np.argmax(np.abs(sm[zero_rows] - 0.5), axis=1)
                sgn = np.sign(sm[zero_rows, dom] - 0.5).astype(np.int64)
                d2 = delta[zero_rows]
                d2[np.arange(d2.shape[0]), dom] = np.where(sgn == 0, 1, sgn)
                delta[zero_rows] = d2
            newcells = cells[mi] + delta
            out = np.any((newcells < lo) | (newcells > hi), axis=1)
            # Points leaving the allowed window: stop, report last cell
            # clipped to the window edge plus the attempted step (the
            # forwarding hint is the attempted cell).
            stop = mi[out]
            escaped[stop] = True
            active[stop] = False
            cells[stop] = np.clip(newcells[out], 0, max_cell)
            stay = mi[~out]
            cells[stay] = newcells[~out]

    # Full-grid searches retry walks that ran off an index boundary from
    # the opposite edge: on O-grids the physical neighbourhood wraps
    # (seam duplicated at i=0 / i=ni-1), so a point "below" cell 0 may
    # live in the last cells.  Windowed (distributed) searches must not
    # retry — their escapes are forwarding hints.
    full_grid = cell_lo is None and cell_hi is None
    retry = full_grid and escaped.any()
    if retry:
        rows = np.nonzero(escaped & ~found)[0]
        seeds = cells[rows].copy()
        at_lo = seeds <= lo
        at_hi = seeds >= hi
        seeds[at_lo] = np.broadcast_to(hi, seeds.shape)[at_lo]
        seeds[at_hi] = np.broadcast_to(lo, seeds.shape)[at_hi]
        again = donor_search(
            xyz,
            pts[rows],
            guesses=seeds,
            max_steps=max_steps,
            newton_iters=newton_iters,
            tol=tol,
            cell_lo=lo,   # pass explicit bounds: no second-level retry
            cell_hi=hi,
        )
        steps[rows] += again.steps
        hit = again.found
        found[rows[hit]] = True
        cells[rows[hit]] = again.cells[hit]
        fracs[rows[hit]] = again.fracs[hit]
        escaped[rows[hit]] = False

    # Last-resort neighbourhood probe (full-grid searches only): a
    # diagonal walk step can cross the index boundary in one component
    # while the *clipped* in-window cell is the true donor — boundary
    # cells of strongly wavy grids push the first Newton guess outside
    # the unit cube, so the walk aborts as "escaped" one cell short,
    # and the opposite-edge retry above only helps periodic (O-grid)
    # wraps.  Newton-test the clipped last cell and its immediate
    # in-window neighbours directly; acceptance requires the solution
    # inside the cube *and* a converged residual, so genuinely
    # uncovered points (true orphans) still fail every candidate.
    # Windowed (distributed) searches skip this: their escapes are
    # forwarding hints and must stay bit-identical.
    if full_grid and not found.all():
        rows = np.nonzero(~found)[0]
        base = np.clip(cells[rows], lo, hi)
        targets = pts[rows]
        offsets = np.stack(
            np.meshgrid(*([np.array([0, -1, 1])] * ndim), indexing="ij"),
            axis=-1,
        ).reshape(-1, ndim)  # (0,...,0) first: the clipped cell itself
        remaining = np.ones(rows.size, dtype=bool)
        for off in offsets:
            if not remaining.any():
                break
            sub = np.nonzero(remaining)[0]
            cand = np.clip(base[sub] + off, lo, hi)
            s = np.full((sub.size, ndim), 0.5)
            if ndim == 2:
                corners = _corners2d(xyz, cand)
                for _ in range(newton_iters):
                    r = _map2d(*corners, s) - targets[sub]
                    J = _jac2d(*corners, s)
                    s = s - np.clip(_solve_clamped(J, r), -1e6, 1e6)
                    if np.abs(r).max() < tol:
                        break
                resid = np.abs(_map2d(*corners, s) - targets[sub]).max(axis=1)
            else:
                corners = _corners3d(xyz, cand)
                for _ in range(newton_iters):
                    r = _map3d(corners, s) - targets[sub]
                    J = _jac3d(corners, s)
                    s = s - np.clip(_solve_clamped(J, r), -1e6, 1e6)
                    if np.abs(r).max() < tol:
                        break
                resid = np.abs(_map3d(corners, s) - targets[sub]).max(axis=1)
            steps[rows[sub]] += 1  # one Newton solve ~ one walk step
            inside = (
                np.all((s >= -1e-9) & (s <= 1 + 1e-9), axis=1)
                & (resid <= 1e-8)
            )
            hit = sub[inside]
            gi = rows[hit]
            found[gi] = True
            cells[gi] = cand[inside]
            fracs[gi] = np.clip(s[inside], 0.0, 1.0)
            escaped[gi] = False
            remaining[hit] = False

    # Anything still active after max_steps is not found.
    return DonorSearchResult(
        cells=cells, fracs=fracs, found=found, steps=steps, escaped=escaped
    )
