"""The "nth-level restart" warm start (paper section 2.2).

Proposed by Barszcz: donor locations from the previous timestep seed
the searches at the new timestep.  Because the stability-limited
timestep moves donors by less than about one receiving-grid cell per
step, warm-started walks converge in a handful of iterations instead of
a walk across the grid — the paper found "a considerable reduction in
the time spent in the connectivity solution" (ablated in
``benchmarks/test_ablation_restart.py``).
"""

from __future__ import annotations

import numpy as np


class RestartCache:
    """Per (receiver grid, donor grid) cache of last-known donor cells.

    Keys are (receiver_grid_index, donor_grid_index); values map the
    receiver's IGBP flat indices to donor cells.  The cache degrades
    gracefully: unknown points simply get no hint.
    """

    def __init__(self) -> None:
        self._cells: dict[tuple[int, int], dict[int, np.ndarray]] = {}
        self._donor_grid: dict[int, dict[int, int]] = {}
        self.hits = 0
        self.misses = 0

    def hints_with_mask(
        self,
        receiver: int,
        donor: int,
        flat_indices: np.ndarray,
        ndim: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-point cached donor cells and a known-mask (no filling).

        Unknown rows hold -1; callers that want a seedable array should
        use :meth:`hints`.
        """
        flat_indices = np.asarray(flat_indices)
        out = np.full((len(flat_indices), ndim), -1, dtype=np.int64)
        known = np.zeros(len(flat_indices), dtype=bool)
        table = self._cells.get((receiver, donor))
        if table:
            for row, fi in enumerate(flat_indices):
                cell = table.get(int(fi))
                if cell is not None:
                    out[row] = cell
                    known[row] = True
        self.hits += int(known.sum())
        self.misses += int((~known).sum())
        return out, known

    def hints(
        self,
        receiver: int,
        donor: int,
        flat_indices: np.ndarray,
        ndim: int,
    ) -> np.ndarray | None:
        """Guess cells for the given receiver points, or None when the
        cache has nothing for this (receiver, donor) pair."""
        out, known = self.hints_with_mask(receiver, donor, flat_indices, ndim)
        if not known.any():
            return None
        # Unknown points start from the median of the known donors —
        # a much better cold start than the grid center.
        if not known.all():
            out[~known] = np.median(out[known], axis=0).astype(np.int64)
        return out

    def store(
        self,
        receiver: int,
        donor: int,
        flat_indices: np.ndarray,
        cells: np.ndarray,
        found: np.ndarray,
    ) -> None:
        """Record this step's successful donors for the next step."""
        table = self._cells.setdefault((receiver, donor), {})
        grid_table = self._donor_grid.setdefault(receiver, {})
        flat_indices = np.asarray(flat_indices)
        cells = np.asarray(cells)
        for fi, cell, ok in zip(flat_indices, cells, np.asarray(found)):
            if ok:
                table[int(fi)] = cell.copy()
                grid_table[int(fi)] = donor

    def donor_grid_of(self, receiver: int, flat_index: int) -> int:
        """The grid that donated to this point last step, or -1.

        Trying the remembered donor grid *first* (instead of walking the
        hierarchical search list from the top every step) is the second
        half of the nth-level restart: for slowly-moving grids nearly
        every point keeps its donor grid between steps.
        """
        return self._donor_grid.get(receiver, {}).get(int(flat_index), -1)

    def merge(
        self, other: "RestartCache", base_hits: int = 0, base_misses: int = 0
    ) -> None:
        """Fold another cache's entries into this one.

        Used by execution backends without shared state (each rank
        process mutated a private copy of the cache during a chunk):
        the driver merges every rank's copy back so the next chunk —
        and any repartition that moves point ownership between ranks —
        sees exactly the union a shared cache would hold.  Ownership of
        IGBP flat indices is disjoint across ranks within a chunk, so
        entry merging is conflict-free; ``other``'s entries win where
        keys collide (they are newer).

        ``base_hits``/``base_misses`` are the counter values ``other``
        started from (its fork point), so counters accumulate lookup
        *deltas* and match what a shared cache would have counted.
        """
        for key, table in other._cells.items():
            self._cells.setdefault(key, {}).update(table)
        for receiver, table in other._donor_grid.items():
            self._donor_grid.setdefault(receiver, {}).update(table)
        self.hits += other.hits - base_hits
        self.misses += other.misses - base_misses

    def invalidate(self, receiver: int | None = None) -> None:
        """Drop cached donors (all, or one receiver grid's)."""
        if receiver is None:
            self._cells.clear()
            self._donor_grid.clear()
        else:
            for key in [k for k in self._cells if k[0] == receiver]:
                del self._cells[key]
            self._donor_grid.pop(receiver, None)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
