"""Hole cutting: blank points of one grid that fall inside the solid
bodies of other grids (paper section 2.0: "Holes are cut in grids which
intersect solid surfaces").

In 2-D the body is the closed wall curve of a component grid and the
inside test is an exact vectorised ray-casting point-in-polygon test.
In 3-D an exact test against an arbitrary curvilinear wall surface is
replaced by the classic box-cut approximation: points inside the
(slightly shrunk) bounding box of the wall surface are blanked.  The
substitution is documented in DESIGN.md; it preserves what the paper's
experiments need — a realistic population of hole-fringe IGBPs.
"""

from __future__ import annotations

import numpy as np

from repro.grids.bbox import AABB
from repro.grids.structured import CurvilinearGrid


def points_in_polygon(points: np.ndarray, polygon: np.ndarray) -> np.ndarray:
    """Vectorised ray casting: which ``points`` (n, 2) lie inside the
    closed ``polygon`` (m, 2)?  The polygon need not repeat its first
    vertex."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    poly = np.asarray(polygon, dtype=float)
    if np.allclose(poly[0], poly[-1]):
        poly = poly[:-1]
    x, y = pts[:, 0], pts[:, 1]
    x0, y0 = poly[:, 0], poly[:, 1]
    x1 = np.roll(x0, -1)
    y1 = np.roll(y0, -1)
    inside = np.zeros(pts.shape[0], dtype=bool)
    for k in range(poly.shape[0]):
        cond = (y0[k] > y) != (y1[k] > y)
        with np.errstate(divide="ignore", invalid="ignore"):
            xcross = (x1[k] - x0[k]) * (y - y0[k]) / (y1[k] - y0[k]) + x0[k]
        inside ^= cond & (x < xcross)
    return inside


def body_polygon(grid: CurvilinearGrid, face: str = "jmin") -> np.ndarray:
    """The closed solid-surface curve of a 2-D body-fitted grid."""
    if grid.ndim != 2:
        raise ValueError("body_polygon is 2-D only")
    return grid.face_points(face)


def cut_holes(
    grids: list[CurvilinearGrid],
    inflate: float = 0.0,
) -> list[np.ndarray]:
    """Compute iblank masks (1 = active, 0 = hole) for every grid.

    Each grid with a wall face cuts holes in every *other* grid:
    2-D: exact polygon containment of the wall curve (optionally
    inflated outward is not supported — inflate applies to 3-D boxes);
    3-D: containment in the wall-surface bounding box shrunk/inflated
    by ``inflate`` (negative shrinks).
    """
    iblanks = [np.ones(g.dims, dtype=np.int8) for g in grids]
    grid_boxes = [g.bounding_box() for g in grids]
    for bi, body in enumerate(grids):
        walls = body.wall_faces()
        if not walls:
            continue
        body_box = grid_boxes[bi]
        for gi, grid in enumerate(grids):
            if gi == bi:
                continue
            # Cheap cull: a grid that nowhere overlaps the body grid
            # cannot contain any of its wall surface.
            if not grid_boxes[gi].intersects(body_box):
                continue
            pts = grid.points_flat()
            blank = np.zeros(pts.shape[0], dtype=bool)
            for wall in walls:
                if grid.ndim == 2 and body.ndim == 2:
                    poly = body.face_points(wall.face)
                    surf_box = AABB.of_points(poly)
                    candidates = surf_box.contains(pts)
                    if candidates.any():
                        blank[candidates] |= points_in_polygon(
                            pts[candidates], poly
                        )
                else:
                    surf = body.face_points(wall.face).reshape(-1, body.ndim)
                    box = AABB.of_points(surf)
                    margin = inflate - 0.02 * float(box.extent.max())
                    try:
                        box = box.inflated(margin)
                    except ValueError:
                        continue  # degenerate surface: nothing to cut
                    blank |= box.contains(pts)
            if blank.any():
                mask = iblanks[gi].reshape(-1)
                mask[blank] = 0
    return iblanks


def hole_fringe_mask(iblank: np.ndarray) -> np.ndarray:
    """Active points adjacent (face-neighbour) to a hole point: these
    become IGBPs that need donors."""
    hole = iblank == 0
    fringe = np.zeros_like(hole)
    for axis in range(iblank.ndim):
        for shift in (-1, 1):
            rolled = np.roll(hole, shift, axis=axis)
            # np.roll wraps; kill the wrapped slice.
            sl: list = [slice(None)] * iblank.ndim
            sl[axis] = 0 if shift == 1 else -1
            rolled[tuple(sl)] = False
            fringe |= rolled
    return fringe & (iblank == 1)
