"""Multilinear interpolation from donor cells.

Once the donor search produces (cell, frac) pairs, boundary values are
interpolated from the 2**ndim donor-cell corners with the matching
multilinear weights — the interpolation coefficients the connectivity
solution exists to provide (paper section 2.0).
"""

from __future__ import annotations

import numpy as np


def interpolation_weights(fracs: np.ndarray) -> np.ndarray:
    """Corner weights for fractional cell coordinates.

    ``fracs`` has shape (n, ndim); the result has shape (n, 2**ndim)
    with corners ordered dimension-0 fastest (matching
    :func:`corner_offsets`).  Weights are non-negative and sum to one.
    """
    fr = np.atleast_2d(np.asarray(fracs, dtype=float))
    n, ndim = fr.shape
    w = np.ones((n, 2**ndim))
    for corner in range(2**ndim):
        for d in range(ndim):
            bit = (corner >> d) & 1
            w[:, corner] *= fr[:, d] if bit else (1 - fr[:, d])
    return w


def corner_offsets(ndim: int) -> np.ndarray:
    """Integer corner offsets, shape (2**ndim, ndim), dim-0 fastest."""
    out = np.zeros((2**ndim, ndim), dtype=np.int64)
    for corner in range(2**ndim):
        for d in range(ndim):
            out[corner, d] = (corner >> d) & 1
    return out


def interpolate(
    field: np.ndarray, cells: np.ndarray, fracs: np.ndarray
) -> np.ndarray:
    """Interpolate node ``field`` (shape (*dims, nvar) or (*dims,)) at
    donor (cell, frac) pairs; returns (n, nvar) or (n,)."""
    scalar = field.ndim == cells.shape[1]
    if scalar:
        field = field[..., None]
    cells = np.atleast_2d(np.asarray(cells, dtype=np.int64))
    w = interpolation_weights(fracs)  # (n, 2**ndim)
    offs = corner_offsets(cells.shape[1])
    out = np.zeros((cells.shape[0], field.shape[-1]))
    for corner, off in enumerate(offs):
        idx = tuple((cells + off).T)
        out += w[:, corner : corner + 1] * field[idx]
    return out[:, 0] if scalar else out
