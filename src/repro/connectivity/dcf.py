"""The distributed asynchronous donor-search protocol (paper Fig. 3).

Per connectivity solve each rank:

1. takes part in a global exchange of subdomain bounding boxes ("the
   bounding box information is broadcast globally");
2. routes each of its inter-grid boundary points to a processor of the
   first grid on that point's search list whose bounding box contains
   it, as one batched SEARCH message per destination;
3. enters an asynchronous service loop: incoming SEARCH requests are
   served immediately (the windowed stencil-walk donor search on the
   local subdomain), walks that exit the subdomain are FORWARDED to the
   neighbouring processor owning the exit cell, and results return to
   the *original* requester as REPLY messages — "processors can be
   performing searches simultaneously";
4. replies that report failure push the point to the next grid in its
   hierarchical search list;
5. termination: a rank that has resolved all its own points sends DONE
   to rank 0 but keeps servicing; when rank 0 holds DONE from everyone
   there can be no connectivity message still in flight (every request
   has been answered), so it sends FINISH to all and the phase ends.

The per-rank count of points received in SEARCH messages is I(p), the
quantity Algorithm 2 (dynamic load balancing) consumes; walk steps are
charged to the simulated clock through the work model, so connectivity
load imbalance emerges from real geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.connectivity.donorsearch import donor_search
from repro.connectivity.restart import RestartCache
from repro.grids.bbox import AABB
from repro.machine.event import ANY_SOURCE
from repro.solver.workmodel import DEFAULT_WORK_MODEL, WorkModel

TAG_SEARCH = 101
TAG_REPLY = 102
TAG_DONE = 103
TAG_FINISH = 104


@dataclass
class DcfConfig:
    """Connectivity-phase settings."""

    search_lists: dict[int, list[int]]  # receiver grid -> donor grids, in order
    max_forward_hops: int = 20
    use_restart: bool = True
    bbox_margin: float = 1e-9


@dataclass
class ConnectivityStats:
    """Per-rank accounting of one connectivity solve."""

    igbps_received: int = 0   # I(p): points served for other processors
    search_steps: int = 0     # stencil-walk iterations performed locally
    requests_sent: int = 0
    forwards: int = 0
    donors_found: int = 0
    orphans: int = 0          # points that exhausted their search list


@dataclass
class DcfWorld:
    """Read-only shared description of the overset system for one solve.

    In a real distributed run each rank would hold only its slice; the
    simulation shares the arrays but every rank *uses* only its own
    window (enforced by the windowed donor search).
    """

    grid_xyz: list[np.ndarray]          # coordinates per grid (current step)
    grid_of_rank: list[int]
    rank_boxes: list                    # index-space Box per rank
    ranks_of_grid: dict[int, list[int]]
    config: DcfConfig
    work: WorkModel = field(default_factory=lambda: DEFAULT_WORK_MODEL)

    def cell_owner(self, grid: int, cell: np.ndarray) -> int | None:
        """Rank of ``grid`` owning the cell (by its low-corner node)."""
        for rank in self.ranks_of_grid[grid]:
            if self.rank_boxes[rank].contains_index(cell):
                return rank
        return None

    def cell_window(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """Cell-index window a rank may search (its box, +1 halo node on
        the high side so seam cells are computable)."""
        box = self.rank_boxes[rank]
        dims = self.grid_xyz[self.grid_of_rank[rank]].shape[:-1]
        lo = np.array(box.lo, dtype=np.int64)
        hi = np.minimum(
            np.array(box.hi, dtype=np.int64) - 1, np.array(dims) - 2
        )
        return lo, hi


def _physical_bbox(world: DcfWorld, rank: int) -> tuple:
    """Bounding box (lo, hi arrays) of a rank's subdomain points,
    including the one-node halo on the high side so the cells spanning
    subdomain seams (searchable here per :meth:`DcfWorld.cell_window`)
    are covered by exactly this rank's box."""
    grid = world.grid_of_rank[rank]
    xyz = world.grid_xyz[grid]
    box = world.rank_boxes[rank]
    dims = xyz.shape[:-1]
    sl = tuple(
        slice(lo, min(hi + 1, d))
        for lo, hi, d in zip(box.lo, box.hi, dims)
    )
    pts = xyz[sl].reshape(-1, xyz.shape[-1])
    return pts.min(axis=0), pts.max(axis=0)


def dcf_rank_program(
    comm,
    world: DcfWorld,
    igbp_flat: np.ndarray,
    igbp_points: np.ndarray,
    restart: RestartCache | None = None,
):
    """Run one distributed connectivity solve on this rank.

    A generator to be ``yield from``-ed inside a SimMPI rank program.
    ``igbp_flat``/``igbp_points`` are the IGBPs this rank owns (receiver
    points lying in its subdomain).  Returns ``(assignment, stats)``
    where assignment maps each owned IGBP row to its donor.
    """
    rank = comm.rank
    cfg = world.config
    my_grid = world.grid_of_rank[rank]
    ndim = world.grid_xyz[0].shape[-1]
    stats = ConnectivityStats()

    # ------------------------------------------------------------ step 1
    lo, hi = _physical_bbox(world, rank)
    boxes_raw = yield from comm.allgather(
        (lo.tolist(), hi.tolist()), nbytes=2 * ndim * 8
    )
    rank_bboxes = [
        AABB(b[0], b[1]).inflated(cfg.bbox_margin) for b in boxes_raw
    ]

    n = int(len(igbp_flat))
    result = {
        "found": np.zeros(n, dtype=bool),
        "donor_grid": np.full(n, -1, dtype=np.int64),
        "donor_rank": np.full(n, -1, dtype=np.int64),
        "cells": np.zeros((n, ndim), dtype=np.int64),
        "fracs": np.zeros((n, ndim), dtype=float),
    }
    level = np.zeros(n, dtype=np.int64)  # position in the candidate order
    resolved = np.zeros(n, dtype=bool)
    outstanding = 0  # points awaiting a reply

    search_list = list(cfg.search_lists.get(my_grid, []))

    # Per-point donor-grid candidate order: the grid that donated last
    # step first (the other half of the nth-level restart), then the
    # user's hierarchical search list.
    orders: list[list[int]] = []
    for row in range(n):
        cached = -1
        if cfg.use_restart and restart is not None:
            cached = restart.donor_grid_of(my_grid, igbp_flat[row])
        if cached >= 0 and cached in search_list:
            orders.append(
                [cached] + [g for g in search_list if g != cached]
            )
        else:
            orders.append(search_list)

    def route_points(rows: np.ndarray):
        """Pick (dst_rank, hint) per point at its current candidate;
        returns batched messages {dst: [(row, hint)]} and rows that
        exhausted their candidate list.

        Vectorised: cached-donor lookups and containment tests run per
        donor-grid batch rather than per point (this routine is on the
        per-timestep critical path for every rank).
        """
        batches: dict[int, list] = {}
        dead: list[int] = []
        active = np.asarray(rows, dtype=np.int64)
        while active.size:
            donor = np.array(
                [
                    orders[r][level[r]] if level[r] < len(orders[r]) else -1
                    for r in active
                ],
                dtype=np.int64,
            )
            dead.extend(int(r) for r in active[donor < 0])
            keep = donor >= 0
            active = active[keep]
            donor = donor[keep]
            if active.size == 0:
                break
            next_active: list[int] = []
            for dg in np.unique(donor):
                sel = active[donor == dg]
                pts = igbp_points[sel]
                dst = np.full(sel.size, -1, dtype=np.int64)
                hint_cells = np.full((sel.size, ndim), -1, dtype=np.int64)
                if cfg.use_restart and restart is not None:
                    cells, known = restart.hints_with_mask(
                        my_grid, int(dg), igbp_flat[sel], ndim
                    )
                    hint_cells = cells
                    if known.any():
                        for rk in world.ranks_of_grid[int(dg)]:
                            box = world.rank_boxes[rk]
                            lo = np.asarray(box.lo)
                            hi = np.asarray(box.hi)
                            inside = (
                                known
                                & (dst < 0)
                                & np.all(
                                    (cells >= lo) & (cells < hi), axis=1
                                )
                            )
                            dst[inside] = rk
                missing = dst < 0
                if missing.any():
                    for rk in world.ranks_of_grid[int(dg)]:
                        need = dst < 0
                        if not need.any():
                            break
                        inside = rank_bboxes[rk].contains(pts)
                        dst[need & inside] = rk
                placed = dst >= 0
                for row, d_, hc in zip(
                    sel[placed], dst[placed], hint_cells[placed]
                ):
                    batches.setdefault(int(d_), []).append(
                        (int(row), hc if (hc >= 0).all() else None)
                    )
                unplaced = sel[~placed]
                level[unplaced] += 1
                next_active.extend(int(r) for r in unplaced)
            active = np.array(next_active, dtype=np.int64)
        return batches, dead

    def send_batches(batches: dict):
        nonlocal outstanding
        for dst, items in sorted(batches.items()):
            rows = np.array([it[0] for it in items], dtype=np.int64)
            hints = np.array(
                [
                    it[1] if it[1] is not None else [-1] * ndim
                    for it in items
                ],
                dtype=np.int64,
            )
            payload = {
                "requester": rank,
                "rows": rows,
                "points": igbp_points[rows],
                "hints": hints,
                "hops": 0,
            }
            # Forming and tagging the IGBP list (step 1 of Fig. 3).
            yield from comm.compute(
                flops=rows.size * world.work.igbp_request_flops
            )
            yield from comm.send(
                dst, TAG_SEARCH, payload,
                nbytes=int(rows.size * world.work.igbp_request_bytes),
            )
            stats.requests_sent += int(rows.size)
            outstanding += int(rows.size)

    def mark_dead(rows):
        for row in rows:
            if not resolved[row]:
                resolved[row] = True
                stats.orphans += 1

    # ------------------------------------------------------------ step 2
    if n and search_list:
        batches, dead = route_points(np.arange(n))
        mark_dead(np.array(dead, dtype=np.int64))
        yield from send_batches(batches)
    else:
        resolved[:] = True
        stats.orphans += n

    # ------------------------------------------------------------ step 3
    #
    # The service loop drains each wildcard channel with
    # ``Comm.drain_recv``, which consumes every arrived message in
    # canonical (source, sequence) order.  The earlier implementation
    # popped one ``ANY_SOURCE`` message per poll in *arrival* order —
    # on a real asynchronous machine that order is timing-dependent,
    # which is exactly the wildcard message race the SimMPI sanitizer
    # (repro.analysis.sanitizer) reports as a nondeterminism witness.
    # With canonical drains the processing order depends only on who
    # sent what, not on when it arrived, and the sanitizer certifies
    # the protocol race-free (tests/analysis/test_sanitizer.py).
    done_sent = False
    done_count = 0
    finished = False
    idle_wait = 2.0e-5  # exponential backoff while nothing arrives
    while not finished:
        progress = False

        # Serve incoming search requests, in stable (src, seq) order.
        for payload, _status in (
            yield from comm.drain_recv(ANY_SOURCE, TAG_SEARCH)
        ):
            progress = True
            yield from _serve_search(comm, world, rank, payload, stats)

        # Absorb replies, in stable (src, seq) order.
        for p, _status in (yield from comm.drain_recv(ANY_SOURCE, TAG_REPLY)):
            progress = True
            rows = p["rows"]
            found = p["found"]
            outstanding -= int(rows.size)
            ok = rows[found]
            result["found"][ok] = True
            result["donor_grid"][ok] = p["donor_grid"]
            result["donor_rank"][ok] = p["donor_rank"]
            result["cells"][ok] = p["cells"][found]
            result["fracs"][ok] = p["fracs"][found]
            resolved[ok] = True
            stats.donors_found += int(found.sum())
            # Failed points: try the next grid in the hierarchy.
            bad = rows[~found]
            if bad.size:
                level[bad] += 1
                batches, dead = route_points(bad)
                mark_dead(np.array(dead, dtype=np.int64))
                yield from send_batches(batches)

        # Own work complete? Tell rank 0 (once).
        if not done_sent and resolved.all() and outstanding == 0:
            done_sent = True
            yield from comm.send(0, TAG_DONE, None, nbytes=8)

        if rank == 0:
            for _p, _status in (
                yield from comm.drain_recv(ANY_SOURCE, TAG_DONE)
            ):
                progress = True
                done_count += 1
            if done_count == comm.size:
                for dst in range(1, comm.size):
                    yield from comm.send(dst, TAG_FINISH, None, nbytes=8)
                finished = True
        else:
            # FINISH only ever comes from rank 0: receive from the
            # specific source so there is no wildcard at all.
            msg = yield from comm._tryrecv(0, TAG_FINISH)
            if msg is not None:
                finished = True

        if progress:
            idle_wait = 2.0e-5
        elif not finished:
            yield from comm.elapse(idle_wait)
            idle_wait = min(idle_wait * 2.0, 1.0e-3)

    if restart is not None:
        for dg in sorted(set(search_list)):
            sel = result["donor_grid"] == dg
            if sel.any():
                restart.store(
                    my_grid, dg,
                    igbp_flat[sel], result["cells"][sel],
                    result["found"][sel],
                )
    return result, stats


def _serve_search(comm, world: DcfWorld, rank: int, payload: dict, stats):
    """Serve one SEARCH message: windowed search + replies + forwards."""
    cfg = world.config
    my_grid = world.grid_of_rank[rank]
    xyz = world.grid_xyz[my_grid]
    ndim = xyz.shape[-1]
    points = payload["points"]
    rows = payload["rows"]
    hints = payload["hints"]
    requester = payload["requester"]
    hops = payload["hops"]
    stats.igbps_received += int(rows.size)

    lo, hi = world.cell_window(rank)
    # Negative hints mark cold points; the search seeds them itself.
    res = donor_search(
        xyz, points, guesses=hints, cell_lo=lo, cell_hi=hi
    )
    stats.search_steps += res.total_steps
    # Walk arithmetic plus the fixed per-point service cost (stencil
    # quality checks, coefficient computation, packing).
    yield from comm.compute(
        flops=world.work.search_flops(res.total_steps)
        + rows.size * world.work.igbp_service_flops
    )

    # Forward escapes whose exit cell belongs to a neighbour.
    forward_to: dict[int, list[int]] = {}
    notfound = []
    for k in range(rows.size):
        if res.found[k]:
            continue
        dst = None
        if res.escaped[k] and hops < cfg.max_forward_hops:
            owner = world.cell_owner(my_grid, res.cells[k])
            if owner is not None and owner != rank:
                dst = owner
        if dst is None:
            notfound.append(k)
        else:
            forward_to.setdefault(dst, []).append(k)

    for dst, ks in sorted(forward_to.items()):
        ks = np.array(ks, dtype=np.int64)
        fwd = {
            "requester": requester,
            "rows": rows[ks],
            "points": points[ks],
            "hints": res.cells[ks],
            "hops": hops + 1,
        }
        stats.forwards += int(ks.size)
        yield from comm.send(
            dst, TAG_SEARCH, fwd,
            nbytes=int(ks.size * world.work.igbp_request_bytes),
        )

    # Reply for everything answered here (found + definitively missing).
    # The interpolated boundary values travel with the reply (donor pays
    # the interpolation arithmetic): with connectivity redone every
    # timestep, piggybacking the interpolation exchange on the search
    # reply is the natural implementation and is charged here.
    nfound = int(res.found.sum())
    if nfound:
        yield from comm.compute(
            flops=nfound * world.work.interp_flops_per_igbp
        )
    answered = np.concatenate(
        [np.nonzero(res.found)[0], np.array(notfound, dtype=np.int64)]
    ).astype(np.int64)
    if answered.size:
        reply = {
            "rows": rows[answered],
            "found": res.found[answered],
            "cells": res.cells[answered],
            "fracs": res.fracs[answered],
            "donor_grid": my_grid,
            "donor_rank": rank,
        }
        yield from comm.send(
            requester, TAG_REPLY, reply,
            nbytes=int(answered.size * world.work.donor_reply_bytes),
        )
