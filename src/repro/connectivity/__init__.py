"""DCF3D-like overset domain connectivity.

Re-establishing domain connectivity after grid movement is step (3) of
the paper's per-timestep loop and the subject of its load-balancing
study.  The pieces:

* :mod:`holecut` — cut "holes" in grids that intersect solid surfaces
  of other grids (paper section 2.0);
* :mod:`igbp` — identify the inter-grid boundary points (IGBPs): outer
  overset-fringe points plus the fringe ringing every hole;
* :mod:`donorsearch` — the stencil-walk + Newton donor search with
  vectorised batch evaluation;
* :mod:`interpolation` — bilinear/trilinear weights and their
  application;
* :mod:`restart` — the "nth-level restart" warm start (Barszcz):
  donors from the previous timestep seed the next search;
* :mod:`dcf` — the distributed asynchronous donor-search protocol of
  paper Fig. 3, run on the simulated machine.
"""

from repro.connectivity.holecut import cut_holes, hole_fringe_mask
from repro.connectivity.igbp import IgbpSet, find_igbps
from repro.connectivity.donorsearch import DonorSearchResult, donor_search
from repro.connectivity.interpolation import (
    interpolation_weights,
    interpolate,
)
from repro.connectivity.restart import RestartCache
from repro.connectivity.dcf import (
    ConnectivityStats,
    DcfConfig,
    dcf_rank_program,
)

__all__ = [
    "cut_holes",
    "hole_fringe_mask",
    "IgbpSet",
    "find_igbps",
    "DonorSearchResult",
    "donor_search",
    "interpolation_weights",
    "interpolate",
    "RestartCache",
    "ConnectivityStats",
    "DcfConfig",
    "dcf_rank_program",
]
