"""The descending delta wing case (paper section 4.2).

Four grids, composite ~1 million points at ``scale=1.0`` with an
IGBPs/gridpoints ratio of ~33e-3.  Three curvilinear grids make up the
delta wing and pipe jet (here: the tapered swept wing, a jet-region
box grid under it, and the jet pipe); the fourth is a Cartesian
background.  The three curvilinear grids descend together at the slow
rate M = 0.064.  Viscous terms active on all grids, no turbulence
models — exactly the paper's setup.
"""

from __future__ import annotations

import math

from repro.core.config import CaseConfig
from repro.grids.generators import (
    cartesian_background,
    extruded_wing_grid,
    fin_grid,
    pipe_grid,
)
from repro.grids.structured import CurvilinearGrid
from repro.machine.spec import MachineSpec, sp2
from repro.motion.prescribed import SteadyDescent

#: Wing, jet-region and pipe grids interpolate from each other and the
#: background; the background from the curvilinear grids.
DELTAWING_SEARCH_LISTS = {
    0: [3, 1],
    1: [0, 3, 2],
    2: [1, 3],
    3: [0, 1, 2],
}


def deltawing_grids(scale: float = 1.0) -> list[CurvilinearGrid]:
    """Four grids, ~1M composite points at ``scale=1.0``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    s = scale ** (1.0 / 3.0)

    def at_least(n, floor):
        return max(floor, int(round(n * s)))

    # The background carries about half the composite points (as in the
    # paper's Fig. 6, where a large Cartesian grid surrounds the wing
    # system): the grids that *serve* most donor searches then also
    # hold a matching share of processors under Algorithm 1.
    wing = extruded_wing_grid(
        "delta-wing",
        ni=at_least(141, 17),
        nj=at_least(45, 7),
        nk=at_least(49, 7),
        span=1.2,
        root_chord=1.0,
        taper=0.15,
        sweep=0.9,
        radius=0.6,
        viscous=True,
        symmetry_root=True,  # half-span model: root plane is symmetry
    )
    jet_region = fin_grid(
        "jet-region",
        ni=at_least(41, 9),
        nj=at_least(29, 7),
        nk=at_least(29, 7),
        root=(0.4, -0.45, 0.1),
        span=0.5,
        chord=0.6,
        thickness=0.05,
        direction=(0.0, 1.0, 0.0),
        viscous=True,
    )
    pipe = pipe_grid(
        "jet-pipe",
        ni=at_least(45, 9),
        nj=at_least(37, 7),
        nk=at_least(57, 9),
        radius=0.12,
        length=0.8,
        origin=(0.55, -0.02, 0.35),
        viscous=True,
    )
    # Tight background (~1 chord margin around the wing system): the
    # near-body region then spans several background subdomains, so
    # donor-search service spreads with the processor count.
    bg = cartesian_background(
        "background",
        (-1.0, -2.2, -0.6),
        (3.2, 1.0, 1.9),
        (
            at_least(101, 9),
            at_least(79, 7),
            at_least(79, 7),
        ),
        viscous=True,
    )
    return [wing, jet_region, pipe, bg]


def deltawing_fringe_layers(scale: float = 1.0) -> int:
    """Fringe depth holding the IGBP ratio near 33e-3 across scales."""
    return max(1, int(round(2 * scale ** (1.0 / 3.0))))


def deltawing_case(
    machine: MachineSpec | None = None,
    scale: float = 1.0,
    nsteps: int = 10,
    f0: float = math.inf,
) -> CaseConfig:
    """Assemble the descending-delta-wing case."""
    if machine is None:
        machine = sp2(nodes=12)
    grids = deltawing_grids(scale)
    descent = SteadyDescent(velocity=(0.0, -0.064, 0.0))
    return CaseConfig(
        name="descending delta wing",
        grids=grids,
        machine=machine,
        search_lists=DELTAWING_SEARCH_LISTS,
        motions={0: descent, 1: descent, 2: descent},
        nsteps=nsteps,
        dt=0.05,
        f0=f0,
        fringe_layers=deltawing_fringe_layers(scale),
    )
