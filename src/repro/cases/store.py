"""The finned-store separation case (paper section 4.3).

Mach 1.6 store separation from a wing/pylon: 16 grids, composite ~0.81
million points at ``scale=1.0`` with an IGBPs/gridpoints ratio of
~66e-3 — 1.5-2x the other cases, which is why this case is the paper's
test bed for the dynamic load balance scheme.

Grid inventory (matching the paper's counts):

* ten curvilinear grids define the finned store: main body, nose cap,
  boat-tail, four fins, and three fin-root collar grids — all viscous
  with the Baldwin-Lomax model active;
* three curvilinear grids define the wing/pylon: wing, pylon, and a
  wing-tip cap — viscous + Baldwin-Lomax;
* three Cartesian background grids around the store, all inviscid.

The store's ten grids move along a prescribed separation trajectory
("the motion of the store is specified in this case", with free motion
available at "negligible change in the parallel performance").
"""

from __future__ import annotations

import math

from repro.core.config import CaseConfig
from repro.grids.generators import (
    body_of_revolution_grid,
    cartesian_background,
    extruded_wing_grid,
    fin_grid,
)
from repro.grids.structured import CurvilinearGrid
from repro.machine.spec import MachineSpec, sp2
import numpy as np

from repro.motion.prescribed import SixDofMotion, StoreSeparation
from repro.motion.rigid import RigidBodyState
from repro.motion.sixdof import Loads, SixDof

N_STORE_GRIDS = 10  # grids 0..9 move with the store

#: Store grids search each other, then the backgrounds; wing/pylon
#: grids search each other and the backgrounds; backgrounds search the
#: curvilinear grids then each other (coarser levels).
def _search_lists() -> dict[int, list[int]]:
    store = list(range(10))
    wing = [10, 11, 12]
    bgs = [13, 14, 15]
    lists: dict[int, list[int]] = {}
    # Store components: the main body first, then the innermost bg.
    for g in store:
        lists[g] = [x for x in (0, 1, 2) if x != g] + bgs
    # Fins also see the body collars.
    for g in (3, 4, 5, 6):
        lists[g] = [0] + [7, 8, 9] + bgs
    for g in (7, 8, 9):
        lists[g] = [0] + bgs
    lists[10] = [11, 12] + bgs
    lists[11] = [10] + bgs
    lists[12] = [10] + bgs
    lists[13] = store[:3] + wing + [14, 15]
    lists[14] = [13, 15] + store[:1]
    lists[15] = [14, 13]
    return lists


STORE_SEARCH_LISTS = _search_lists()


def store_grids(scale: float = 1.0) -> list[CurvilinearGrid]:
    """Sixteen grids, ~0.81M composite points at ``scale=1.0``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    s = scale ** (1.0 / 3.0)

    def al(n, floor=7):
        return max(floor, int(round(n * s)))

    L = 1.0          # store length
    R = 0.07         # store radius
    grids: list[CurvilinearGrid] = []

    # --- store (10 grids, indices 0-9), built around the origin ------
    grids.append(
        body_of_revolution_grid(
            "store-body", ni=al(101, 9), nj=al(49, 9), nk=al(33, 7),
            length=L, body_radius=R, outer_radius=0.45,
            viscous=True, turbulence=True,
        )
    )
    grids.append(
        body_of_revolution_grid(
            "store-nose", ni=al(41, 7), nj=al(41, 7), nk=al(25, 7),
            length=0.25 * L, body_radius=0.8 * R, outer_radius=0.3,
            axis_origin=(-0.08, 0.0, 0.0),
            viscous=True, turbulence=True,
        )
    )
    grids.append(
        body_of_revolution_grid(
            "store-tail", ni=al(41, 7), nj=al(41, 7), nk=al(25, 7),
            length=0.3 * L, body_radius=0.9 * R, outer_radius=0.3,
            axis_origin=(0.85, 0.0, 0.0),
            viscous=True, turbulence=True,
        )
    )
    fin_dirs = [(0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
    for k, d in enumerate(fin_dirs):
        root = (0.78, 0.06 * d[1], 0.06 * d[2])
        grids.append(
            fin_grid(
                f"store-fin{k}", ni=al(33, 7), nj=al(21, 7), nk=al(17, 7),
                root=root, span=0.18, chord=0.16, thickness=0.015,
                direction=d, viscous=True,
            )
        )
    for k in range(3):
        grids.append(
            fin_grid(
                f"store-collar{k}", ni=al(25, 7), nj=al(17, 7), nk=al(13, 7),
                root=(0.70 + 0.05 * k, 0.05, 0.0), span=0.08,
                chord=0.12, thickness=0.02,
                direction=(0.0, 1.0, 0.0), viscous=True,
            )
        )

    # --- wing / pylon (indices 10-12), above the store ---------------
    grids.append(
        extruded_wing_grid(
            "wing", ni=al(121, 13), nj=al(33, 7), nk=al(41, 7),
            span=2.5, root_chord=1.8, taper=0.5, sweep=0.7, radius=0.9,
            viscous=True, turbulence=True,
        )
    )
    # Shift the wing above the store (+y) in its reference pose.
    wing = grids[-1]
    grids[-1] = wing.with_coordinates(wing.xyz + [0.0, 0.8, 0.2])
    grids.append(
        fin_grid(
            "pylon", ni=al(41, 7), nj=al(25, 7), nk=al(21, 7),
            root=(0.3, 0.25, 0.3), span=0.5, chord=0.5, thickness=0.06,
            direction=(0.0, 1.0, 0.0), viscous=True,
        )
    )
    grids.append(
        fin_grid(
            "wing-tip", ni=al(33, 7), nj=al(21, 7), nk=al(17, 7),
            root=(1.0, 0.8, 2.6), span=0.3, chord=0.6, thickness=0.08,
            direction=(0.0, 0.0, 1.0), viscous=True,
        )
    )

    # --- Cartesian backgrounds (indices 13-15), inviscid --------------
    grids.append(
        cartesian_background(
            "bg-fine", (-0.6, -1.2, -0.8), (1.8, 0.6, 0.8),
            (al(61, 9), al(45, 7), al(41, 7)),
        )
    )
    grids.append(
        cartesian_background(
            "bg-mid", (-1.5, -3.0, -1.8), (3.0, 1.5, 3.2),
            (al(49, 9), al(41, 7), al(41, 7)),
        )
    )
    grids.append(
        cartesian_background(
            "bg-coarse", (-4.0, -6.0, -4.0), (6.0, 3.0, 6.0),
            (al(41, 7), al(33, 7), al(33, 7)),
        )
    )
    assert len(grids) == 16
    return grids


def store_fringe_layers(scale: float = 1.0) -> int:
    """Fringe depth holding the IGBP ratio near 66e-3 across scales."""
    return max(1, int(round(2 * scale ** (1.0 / 3.0))))


def free_store_motion() -> SixDofMotion:
    """Store motion computed from loads by the 6-DOF model instead of
    prescribed — the paper's "the free motion can be computed with
    negligible change in the parallel performance".  Loads: gravity,
    an initial ejector impulse, and a simple pitch-down aerodynamic
    moment that saturates (qualitatively the prescribed trajectory)."""
    body = SixDof(
        mass=1.0,
        inertia=np.array([0.02, 0.1, 0.1]),
        state=RigidBodyState(velocity=np.array([0.0, -0.08, 0.0])),
    )

    def loads(state, t):
        force = np.array([0.0, -0.04, 0.0])  # gravity (nondimensional)
        # Aerodynamic nose-down moment, fading as the store pitches.
        moment = np.array([0.0, 0.0, 0.003 * max(0.0, 1.0 - 2.0 * abs(
            2.0 * np.arcsin(np.clip(state.attitude.q[3], -1.0, 1.0))
        ))])
        return Loads(force=force, moment=moment)

    return SixDofMotion(body, loads, internal_dt=0.02)


def store_case(
    machine: MachineSpec | None = None,
    scale: float = 1.0,
    nsteps: int = 10,
    f0: float = math.inf,
    free_motion: bool = False,
) -> CaseConfig:
    """Assemble the wing/pylon/finned-store separation case.

    ``free_motion`` swaps the prescribed separation trajectory for the
    6-DOF-integrated one (paper section 4.3).
    """
    if machine is None:
        machine = sp2(nodes=16)
    grids = store_grids(scale)
    motion = (
        free_store_motion()
        if free_motion
        else StoreSeparation(
            eject_velocity=0.08, gravity=0.04, pitch_rate=0.015,
            center=(0.5, 0.0, 0.0),
        )
    )
    return CaseConfig(
        name="wing/pylon/finned-store separation",
        grids=grids,
        machine=machine,
        search_lists=STORE_SEARCH_LISTS,
        motions={gi: motion for gi in range(N_STORE_GRIDS)},
        nsteps=nsteps,
        dt=0.02,
        f0=f0,
        fringe_layers=store_fringe_layers(scale),
    )
