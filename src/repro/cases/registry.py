"""Dynamic case registry — the single source of truth for case lookup.

Every runnable case — the four checked-in paper benchmarks *and*
generated off-body scenarios — is a :class:`CaseEntry` in one registry,
so the CLI, ``repro bench``, and the serve daemon resolve names through
the same path and fail with the same typed :class:`UnknownCaseError`.

Two kinds of entry exist:

* ``"overflow"`` — the builder returns a :class:`repro.core.CaseConfig`
  and runs under :class:`repro.core.OverflowD1`;
* ``"offbody"`` — the builder returns a
  :class:`repro.offbody.OffBodyCase` and runs under
  :class:`repro.offbody.OffBodyDriver` (scenario files register
  themselves here when loaded).

The four built-ins are registered by :mod:`repro.cases` at import time;
``repro scenario`` output is registered on demand by
:func:`repro.offbody.scenario.register_scenario_case`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


class UnknownCaseError(ValueError):
    """Raised when a case name is not in the registry.

    Carries the offending ``name`` and the sorted tuple of ``known``
    names so callers (CLI, serve daemon) can render a helpful message
    without string-parsing.
    """

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown case {name!r}; choose from {', '.join(known)}"
        )


@dataclass(frozen=True)
class CaseEntry:
    """One runnable case: a name bound to a builder callable."""

    name: str
    builder: Callable[..., Any]
    kind: str = "overflow"
    help: str = ""
    #: Extra metadata (e.g. the scenario file a generated case came
    #: from); not interpreted by the registry.
    meta: dict[str, Any] = field(default_factory=dict)


_REGISTRY: dict[str, CaseEntry] = {}

_KINDS = ("overflow", "offbody")


def register_case(
    name: str,
    builder: Callable[..., Any],
    *,
    kind: str = "overflow",
    help: str = "",
    replace: bool = False,
    **meta: Any,
) -> CaseEntry:
    """Register ``builder`` under ``name``; returns the entry.

    Re-registering an existing name raises unless ``replace=True``
    (reloading the same scenario file is a legitimate replace).
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown case kind {kind!r}; choose from {_KINDS}")
    if name in _REGISTRY and not replace:
        raise ValueError(f"case {name!r} already registered")
    entry = CaseEntry(name=name, builder=builder, kind=kind, help=help, meta=dict(meta))
    _REGISTRY[name] = entry
    return entry


def case_entry(name: str) -> CaseEntry:
    """Look up a case; raises :class:`UnknownCaseError` on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownCaseError(name, tuple(sorted(_REGISTRY))) from None


def case_names(kind: str | None = None) -> tuple[str, ...]:
    """Sorted registered names, optionally filtered by kind."""
    return tuple(
        sorted(
            name
            for name, entry in _REGISTRY.items()
            if kind is None or entry.kind == kind
        )
    )


def build_case(name: str, **kwargs: Any) -> Any:
    """Resolve ``name`` and invoke its builder with ``kwargs``."""
    return case_entry(name).builder(**kwargs)
