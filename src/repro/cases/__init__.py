"""The paper's test problems as ready-to-run case builders.

Each builder returns a :class:`repro.core.CaseConfig` whose grid
system matches the paper's structure (grid count, relative sizes,
IGBP/gridpoint ratio) at a chosen ``scale`` — ``scale=1.0`` reproduces
the paper's gridpoint counts, smaller values shrink every linear
dimension for fast tests and benchmarks (ratios are preserved by
scaling the fringe depth; see each module's notes).

* :mod:`airfoil` — 2-D oscillating NACA 0012 (section 4.1): 3 grids,
  64K points, IGBP ratio 44e-3, sinusoidal pitch;
* :mod:`deltawing` — descending delta wing (section 4.2): 4 grids,
  ~1M points, 33e-3, slow descent at M 0.064;
* :mod:`store` — finned-store separation (section 4.3): 16 grids
  (10 store + 3 wing/pylon + 3 background), 0.81M points, 66e-3,
  prescribed separation trajectory;
* :mod:`x38` — X-38-like blunt body for the section-5 adaptive
  Cartesian scheme.
"""

from repro.cases.airfoil import airfoil_case, airfoil_grids
from repro.cases.deltawing import deltawing_case, deltawing_grids
from repro.cases.registry import (
    CaseEntry,
    UnknownCaseError,
    build_case,
    case_entry,
    case_names,
    register_case,
)
from repro.cases.store import store_case, store_grids
from repro.cases.x38 import x38_adaptive_system, x38_case, x38_near_body_grids

register_case(
    "airfoil",
    airfoil_case,
    help="2-D oscillating NACA 0012 (paper section 4.1)",
)
register_case(
    "deltawing",
    deltawing_case,
    help="descending delta wing (paper section 4.2)",
)
register_case(
    "store",
    store_case,
    help="finned-store separation (paper section 4.3)",
)
register_case(
    "x38",
    x38_case,
    help="X-38-like blunt body, adaptive Cartesian scheme (section 5)",
)

__all__ = [
    "airfoil_case",
    "airfoil_grids",
    "deltawing_case",
    "deltawing_grids",
    "store_case",
    "store_grids",
    "x38_case",
    "x38_near_body_grids",
    "x38_adaptive_system",
    "CaseEntry",
    "UnknownCaseError",
    "build_case",
    "case_entry",
    "case_names",
    "register_case",
]
