"""The 2-D oscillating airfoil case (paper section 4.1).

NACA 0012, M = 0.8, Re = 1e6, alpha(t) = 5 deg * sin(pi/2 * t).  Three
grids with roughly equal point counts, 64K composite total at
``scale=1.0``:

* a near-field O-grid defining the airfoil, extending about one chord;
* an intermediate circular (annulus) grid to about three chords;
* a square Cartesian background grid to seven chords.

Only the airfoil grid moves.  The IGBPs/gridpoints ratio is ~44e-3; in
this reproduction the overset fringe depth supplies the ratio (see
DESIGN.md — NASA's original grids realise it through overlap-region
blanking we do not model), and the fringe depth scales with resolution
so the scale-up study (Table 2) keeps the ratio constant, exactly as
the paper reports.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import CaseConfig
from repro.grids.generators import (
    airfoil_ogrid,
    annulus_grid,
    cartesian_background,
)
from repro.grids.structured import CurvilinearGrid
from repro.machine.spec import MachineSpec, sp2
from repro.motion.prescribed import PitchOscillation

#: Search hierarchy: near-field interpolates from the intermediate grid
#: then the background; the intermediate from both neighbours; the
#: background from the intermediate then the near grid.
AIRFOIL_SEARCH_LISTS = {0: [1, 2], 1: [0, 2], 2: [1, 0]}


def airfoil_grids(scale: float = 1.0) -> list[CurvilinearGrid]:
    """The three component grids; ``scale=1.0`` gives ~64K points."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    s = math.sqrt(scale)

    def at_least(n, floor):
        return max(floor, int(round(n * s)))

    near = airfoil_ogrid(
        "near-field",
        ni=at_least(241, 21),
        nj=at_least(89, 9),
        radius=1.0,
        center=(0.5, 0.0),
        viscous=True,
    )
    mid = annulus_grid(
        "intermediate",
        ni=at_least(241, 21),
        nj=at_least(89, 9),
        r_inner=0.85,
        r_outer=3.0,
        center=(0.5, 0.0),
    )
    bg = cartesian_background(
        "background",
        (-6.5, -7.0),
        (7.5, 7.0),
        (at_least(146, 13), at_least(146, 13)),
    )
    return [near, mid, bg]


def airfoil_fringe_layers(scale: float = 1.0) -> int:
    """Fringe depth holding IGBPs/gridpoints at ~44e-3 across scales."""
    return max(1, int(round(4 * math.sqrt(scale))))


def airfoil_case(
    machine: MachineSpec | None = None,
    scale: float = 1.0,
    nsteps: int = 10,
    f0: float = math.inf,
    grids: list[CurvilinearGrid] | None = None,
    fringe_layers: int | None = None,
) -> CaseConfig:
    """Assemble the oscillating-airfoil case.

    The timestep is chosen so donor cells move well under one receiving
    cell per step (the regime that makes nth-level restart effective,
    section 2.2).
    """
    if machine is None:
        machine = sp2(nodes=12)
    if grids is None:
        grids = airfoil_grids(scale)
    motion = PitchOscillation(center=(0.25, 0.0))
    # Max wall speed ~ alpha0 * omega * lever (~7 chords at the bg edge);
    # keep per-step motion below ~half the finest fringe cell.
    dt = 0.01 / max(0.1, math.sqrt(scale))
    return CaseConfig(
        name="2D oscillating airfoil",
        grids=grids,
        machine=machine,
        search_lists=AIRFOIL_SEARCH_LISTS,
        motions={0: motion},
        nsteps=nsteps,
        dt=dt,
        f0=f0,
        fringe_layers=(
            airfoil_fringe_layers(scale)
            if fringe_layers is None
            else fringe_layers
        ),
    )
