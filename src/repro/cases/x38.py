"""X-38-like configuration for the adaptive Cartesian scheme (section 5).

The paper's Fig. 12 shows the X-38 Crew Return Vehicle: near-body
curvilinear grids around a blunt lifting body, with the off-body domain
automatically partitioned into Cartesian grids refined by proximity.
We model the vehicle as a blunt body of revolution plus two stubby
fins — geometry is incidental; what the adaptive experiments exercise
is the brick refinement, Algorithm-3 grouping and search-free
Cartesian connectivity around a realistic near-body grid cluster.
"""

from __future__ import annotations

import math

from repro.adapt.manager import AdaptiveSystem
from repro.core.config import CaseConfig
from repro.grids.bbox import AABB
from repro.grids.generators import body_of_revolution_grid, fin_grid
from repro.grids.structured import CurvilinearGrid
from repro.machine.spec import MachineSpec, sp

#: Search hierarchy for the near-body cluster: each fin interpolates
#: from the body grid it is embedded in; the body closes its fringe
#: from the fins where they overlap.
X38_SEARCH_LISTS = {0: [1, 2], 1: [0], 2: [0]}


def x38_near_body_grids(scale: float = 1.0) -> list[CurvilinearGrid]:
    """Near-body curvilinear grids for the blunt vehicle."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    s = scale ** (1.0 / 3.0)

    def al(n, floor=7):
        return max(floor, int(round(n * s)))

    body = body_of_revolution_grid(
        "x38-body", ni=al(81, 9), nj=al(49, 9), nk=al(29, 7),
        length=1.0, body_radius=0.18, outer_radius=0.6,
        viscous=True, turbulence=True,
    )
    fins = [
        fin_grid(
            f"x38-fin{k}", ni=al(29, 7), nj=al(17, 7), nk=al(13, 7),
            root=(0.75, 0.16 * sgn, 0.0), span=0.25, chord=0.25,
            thickness=0.03, direction=(0.0, sgn, 0.0), viscous=True,
        )
        for k, sgn in enumerate((1.0, -1.0))
    ]
    return [body] + fins


def x38_case(
    machine: MachineSpec | None = None,
    scale: float = 1.0,
    nsteps: int = 5,
    f0: float = math.inf,
) -> CaseConfig:
    """The near-body X-38 cluster as an OVERFLOW-D1 performance case.

    The section-5 adaptive machinery exercises the off-body Cartesian
    bricks separately (:func:`x38_adaptive_system`); this builder wraps
    the same near-body curvilinear cluster in a :class:`CaseConfig` so
    the re-entry configuration can run through the standard driver (and
    the ``repro run`` / ``repro trace`` CLI) alongside the section-4
    cases.  The vehicle is rigid and holds attitude — connectivity is
    re-solved every step from fully warm restarts, the cheapest steady
    regime, which makes it a good observability baseline.
    """
    if machine is None:
        machine = sp(nodes=8)
    grids = x38_near_body_grids(scale)
    return CaseConfig(
        name="X-38 near-body cluster",
        grids=grids,
        machine=machine,
        search_lists=X38_SEARCH_LISTS,
        motions={},
        nsteps=nsteps,
        dt=0.01,
        f0=f0,
        fringe_layers=1,
    )


def x38_adaptive_system(
    max_level: int = 3, points_per_brick: int = 9
) -> AdaptiveSystem:
    """Default off-body domain around the vehicle (Fig. 12a)."""
    domain = AABB((-2.0, -2.0, -2.0), (4.0, 2.0, 2.0))
    return AdaptiveSystem(
        domain, brick_extent=1.0, max_level=max_level,
        points_per_brick=points_per_brick,
    )
