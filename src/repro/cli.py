"""Command-line interface: run cases and regenerate tables.

Usage (installed as ``python -m repro``):

    python -m repro list
    python -m repro run airfoil --machine sp2 --nodes 12 --scale 0.5 --steps 5
    python -m repro run --case airfoil --backend mp --nodes 4 --scale 0.25
    python -m repro run airfoil --steps 60 --checkpoint-every 25 \
        --checkpoint-dir ckpts --fault rank=3@step=40
    python -m repro resume ckpts
    python -m repro sweep store --machine sp2 --nodes 16,28,52 --scale 0.1
    python -m repro trace airfoil --nodes 8 --scale 0.1 --steps 4
    python -m repro trace airfoil --trace-store /tmp/st --trends
    python -m repro run x38 --backend mp --trace-store /tmp/st
    python -m repro top /tmp/st --once
    python -m repro physics --scale 0.05 --steps 20
    python -m repro lint src tests
    python -m repro run x38 --sanitize
    python -m repro bench all --quick
    python -m repro bench x38 --quick --compare
    python -m repro bench airfoil --quick --backend mp
    python -m repro trace-diff benchmarks/baselines/BENCH_x38.json \
        benchmarks/results/BENCH_x38.json
    python -m repro serve --workers 4 --cache-dir /var/tmp/repro-cache
    python -m repro submit airfoil --nodes 8 --scale 0.1 --steps 5
    python -m repro jobs --stats
    python -m repro scenario --kind store-salvo --seed 7 --out scen.json
    python -m repro run --scenario scen.json --backend mp
    python -m repro trace --scenario scen.json
    python -m repro trace airfoil --trace-store /tmp/st --from-step 3
    python -m repro bench --scenario scen.json

``run``/``trace``/``bench`` accept ``--backend {sim,mp}``: ``sim`` is
the deterministic discrete-event simulator (modeled virtual time, the
default and the only backend the CI gates compare); ``mp`` executes the
same rank programs on real ``multiprocessing`` processes and reports
measured wall time — physics (Q fields, IGBP counts) are identical by
construction and cross-checked.  ``bench --compare`` additionally
trace-diffs each fresh payload against ``benchmarks/baselines/`` in the
same invocation.

``run`` executes one OVERFLOW-D1 simulation and prints the paper's
per-run statistics; with ``--fault`` / ``--checkpoint-every`` /
``--checkpoint-dir`` it exercises the resilience machinery
(:mod:`repro.resilience`): injected fail-stop faults, periodic
checkpoints and elastic recovery.  With ``--sanitize`` the run is
shadowed by the SimMPI sanitizer (:mod:`repro.analysis`), which
reports wildcard message races, tag collisions, collective mismatches
and finalize leaks without changing virtual time; ``lint`` runs the
project's determinism lint (rules ``RPR001``-``RPR007``) over source
trees.  Both exit non-zero when findings remain.  ``resume`` continues a run from a
checkpoint file (or the newest checkpoint in a directory).  ``sweep``
produces a Table-1-style speedup table over several node counts;
``trace`` runs one simulation with per-rank span tracing enabled and
dumps a Chrome ``trace_event`` JSON, a CSV rollup and an ASCII per-rank
timeline (see docs/observability.md); ``physics`` runs the real coupled
2-D solver on the oscillating-airfoil system.

``bench`` runs the performance-observatory harness
(:mod:`repro.obs.perf`): each case executes under the span tracer and
sanitizer, is analyzed for critical path, comm matrix and f(p)=I(p)/Ibar
imbalance, and lands as schema-versioned canonical ``BENCH_<case>.json``;
``trace-diff`` classifies per-metric deltas between two such payloads
and exits non-zero on regressions beyond tolerance — the CI perf gate.

``scenario`` generates a seeded multi-body off-body case file
(:mod:`repro.offbody`): randomized store salvos, tumbling debris or
formation flights as canonical ``repro-scenario/1`` JSON.
``run``/``trace``/``bench`` accept ``--scenario FILE`` to execute such
a file with the adaptive off-body driver (Algorithm 3 grouping; see
docs/offbody.md) instead of a built-in case.  ``trace --from-step N``
replays only steps ``N..`` from a segment store using the index's
per-step byte offsets.

``serve`` starts the simulation-as-a-service daemon
(:mod:`repro.serve`): a pool of warm worker processes executes queued
jobs over a unix socket, with ``config_sha``-keyed result caching so
identical deterministic submissions are answered byte-identically for
free; ``submit`` and ``jobs`` are the matching clients.  See
docs/serving.md.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

from repro.cases import UnknownCaseError, case_entry, case_names
from repro.core import OverflowD1, speedup_table
from repro.machine import MACHINE_PRESETS

DEFAULT_TRACE_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


def _machine(name: str, nodes: int):
    try:
        preset = MACHINE_PRESETS[name]
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {sorted(MACHINE_PRESETS)}"
        )
    if name == "ymp":
        return preset()
    return preset(nodes=nodes)


def _case(name: str, machine, scale: float, steps: int, f0: float):
    try:
        entry = case_entry(name)
    except UnknownCaseError as exc:
        raise SystemExit(str(exc))
    if entry.kind != "overflow":
        raise SystemExit(
            f"case {name!r} is an off-body scenario case; "
            f"run it via --scenario <file>"
        )
    return entry.builder(machine=machine, scale=scale, nsteps=steps, f0=f0)


def _steps(args, default: int = 5) -> int:
    """``--steps`` with a per-command default (None = not given)."""
    steps = getattr(args, "steps", None)
    return default if steps is None else steps


def _scenario_case(args):
    """Load ``--scenario FILE``, register it, build the OffBodyCase."""
    from repro.offbody import (
        ScenarioError,
        load_scenario,
        register_scenario_case,
    )

    try:
        payload = load_scenario(args.scenario)
    except ScenarioError as exc:
        raise SystemExit(str(exc))
    entry = register_scenario_case(payload, source=args.scenario)
    kwargs = {}
    if getattr(args, "nodes", None) is not None:
        kwargs["nodes"] = args.nodes
    if getattr(args, "steps", None) is not None:
        kwargs["nsteps"] = args.steps
    if getattr(args, "grouping", None):
        kwargs["grouping"] = args.grouping
    try:
        case = entry.builder(**kwargs)
    except (ScenarioError, ValueError) as exc:
        raise SystemExit(str(exc))
    return payload, case


def _case_name(args) -> str:
    """The case from the positional argument or the ``--case`` flag."""
    pos = getattr(args, "case_pos", None)
    opt = getattr(args, "case_opt", None)
    if pos and opt and pos != opt:
        raise SystemExit(
            f"conflicting case names: positional {pos!r} vs --case {opt!r}"
        )
    name = opt or pos
    if not name:
        raise SystemExit("no case given (positional argument or --case)")
    return name


def _backend(args):
    """Resolve ``--backend`` to an engine; SystemExit on bad names."""
    from repro.backend import BackendUnavailable, backend_help, get_backend

    name = getattr(args, "backend", "sim")
    options = {}
    if name == "cluster":
        options["nnodes"] = getattr(args, "cluster_nodes", 2)
    try:
        return get_backend(name, **options)
    except (ValueError, BackendUnavailable) as exc:
        lines = "\n".join(
            f"  {n:<6} {doc}" for n, doc in backend_help().items()
        )
        raise SystemExit(f"{exc}\nregistered backends:\n{lines}")


def cmd_list(_args) -> int:
    print("cases:    " + ", ".join(case_names()))
    print("machines: " + ", ".join(sorted(MACHINE_PRESETS)))
    for name in case_names():
        entry = case_entry(name)
        kind = "" if entry.kind == "overflow" else f" [{entry.kind}]"
        print(f"  {name:<12}{kind} {entry.help}")
    return 0


def _resilience_kwargs(args) -> dict:
    """Driver kwargs from the shared --fault/--checkpoint-* options."""
    kwargs = {}
    if getattr(args, "fault", None):
        kwargs["fault_plan"] = list(args.fault)
    if getattr(args, "checkpoint_every", None):
        kwargs["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "checkpoint_dir", None):
        kwargs["checkpoint_store"] = args.checkpoint_dir
    return kwargs


def _make_sanitizer(args, tracer=None):
    """Build a Sanitizer when ``--sanitize`` was given, else None."""
    if not getattr(args, "sanitize", False):
        return None
    from repro.analysis import Sanitizer

    return Sanitizer(tracer=tracer)


def _finish_sanitizer(san) -> int:
    """Print the sanitizer report; return the process exit code."""
    if san is None:
        return 0
    report = san.report()
    print()
    print(report.format())
    return 0 if report.ok else 1


def _print_run(r, measured: bool = False) -> None:
    unit = "measured wall s" if measured else "simulated s"
    print(f"time/step        {r.time_per_step:.4f} {unit}")
    print(f"Mflops/node      {r.mflops_per_node:.1f}")
    print(f"%time in DCF3D   {r.pct_dcf3d:.1f}%")
    for step, procs in r.partition_history:
        print(f"partition from step {step}: {procs}")
    for rec in r.recoveries:
        print(rec.describe())
    if r.recoveries:
        print(
            f"wall (incl. rollback) {r.wall_elapsed:.4f} {unit}, "
            f"downtime {r.downtime:.4f} s over {len(r.recoveries)} "
            f"recovery(ies)"
        )


def _store_tracer(args, case: str, component: str):
    """Build the streaming StoreTracer for ``--trace-store`` (or None)."""
    target = getattr(args, "trace_store", None)
    if not target:
        return None
    from repro.obs.store import StoreTracer

    try:
        return StoreTracer(
            target,
            meta={"case": case, "component": component},
            fresh=True,
        )
    except FileExistsError as exc:
        raise SystemExit(str(exc))


def _print_offbody(r) -> None:
    """Per-epoch adaptive/off-body statistics (OffBodyRunResult only)."""
    for e in r.epochs:
        levels = " ".join(
            f"L{k}:{v}" for k, v in sorted(e.level_counts.items())
        )
        print(
            f"epoch @ step {e.first_step}: {e.npatches} patches "
            f"({levels}; +{e.created}/-{e.destroyed}), {e.strategy} cut "
            f"{e.cut_points} pts / {e.cut_edges} edges "
            f"(intra {e.intra_edges}), tau {e.balance_tau:.3f}"
        )


def _no_case_with_scenario(args) -> None:
    if getattr(args, "case_pos", None) or getattr(args, "case_opt", None):
        raise SystemExit("give either a case name or --scenario, not both")


def _run_scenario(args) -> int:
    """``repro run --scenario FILE``: one adaptive off-body run."""
    from repro.offbody import OffBodyDriver

    _no_case_with_scenario(args)
    if getattr(args, "checkpoint_every", None) or \
            getattr(args, "checkpoint_dir", None):
        raise SystemExit(
            "--checkpoint-* is not supported with --scenario: off-body "
            "recovery re-derives state from prescribed motions instead "
            "of checkpoint bytes"
        )
    engine = _backend(args)
    _payload, case = _scenario_case(args)
    print(
        f"{case.name}: {case.n_near} near-body grids, "
        f"{case.machine.name} x {case.machine.nodes} nodes, "
        f"{case.nsteps} steps (adapt every {case.adapt_interval}), "
        f"grouping={case.grouping}, backend={engine.name}"
    )
    tracer = _store_tracer(args, case.name, "run")
    san = _make_sanitizer(args, tracer=tracer)
    try:
        try:
            driver = OffBodyDriver(
                case,
                tracer=tracer,
                sanitizer=san,
                backend=engine,
                fault_plan=(
                    list(args.fault)
                    if getattr(args, "fault", None) else None
                ),
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        r = driver.run()
    finally:
        engine.close()
        if tracer is not None:
            tracer.close()
    _print_run(r, measured=engine.measured)
    _print_offbody(r)
    if tracer is not None:
        print(
            f"trace store: {tracer.directory} ({tracer.records} records, "
            f"{tracer.nranks} ranks; watch with 'repro top "
            f"{tracer.directory}')"
        )
    return _finish_sanitizer(san)


def cmd_run(args) -> int:
    if args.scenario:
        return _run_scenario(args)
    machine = _machine(args.machine, 12 if args.nodes is None else args.nodes)
    engine = _backend(args)
    case = _case_name(args)
    cfg = _case(case, machine, args.scale, _steps(args), args.f0)
    print(
        f"{cfg.name}: {cfg.total_gridpoints} points, {len(cfg.grids)} "
        f"grids, {machine.name} x {machine.nodes} nodes, "
        f"f0={'inf' if math.isinf(args.f0) else args.f0}, "
        f"backend={engine.name}"
    )
    tracer = _store_tracer(args, case, "run")
    san = _make_sanitizer(args, tracer=tracer)
    try:
        try:
            driver = OverflowD1(
                cfg,
                tracer=tracer,
                sanitizer=san,
                backend=engine,
                **_resilience_kwargs(args),
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        r = driver.run()
    finally:
        engine.close()
        if tracer is not None:
            tracer.close()
    _print_run(r, measured=engine.measured)
    if tracer is not None:
        print(
            f"trace store: {tracer.directory} ({tracer.records} records, "
            f"{tracer.nranks} ranks; watch with 'repro top "
            f"{tracer.directory}')"
        )
    return _finish_sanitizer(san)


def cmd_resume(args) -> int:
    from repro.core.overflow_d1 import resume_run
    from repro.resilience import Checkpoint, CheckpointError, CheckpointStore

    path = Path(args.checkpoint)
    if path.is_dir():
        store = CheckpointStore(path)
        ckpt = store.latest()
        if ckpt is None:
            raise SystemExit(f"no checkpoints in {path}")
    else:
        try:
            ckpt = Checkpoint.load(path)
        except CheckpointError as exc:
            raise SystemExit(str(exc))
    meta = ckpt.meta
    print(
        f"resuming {meta.get('case')} on {meta.get('machine')} from "
        f"measured step {meta.get('measured_step')} "
        f"({ckpt.nbytes} bytes, {meta.get('nprocs')} ranks)"
    )
    san = _make_sanitizer(args)
    r = resume_run(ckpt, sanitizer=san, **_resilience_kwargs(args))
    _print_run(r)
    return _finish_sanitizer(san)


def cmd_sweep(args) -> int:
    node_counts = sorted(int(v) for v in args.nodes.split(","))
    case = _case_name(args)
    runs = []
    total = None
    for nodes in node_counts:
        machine = _machine(args.machine, nodes)
        cfg = _case(case, machine, args.scale, _steps(args), args.f0)
        total = cfg.total_gridpoints
        print(f"running {nodes} nodes ...", file=sys.stderr)
        runs.append(OverflowD1(cfg).run())
    table = speedup_table(runs, total)
    print(table.format())
    if args.csv:
        print(table.to_csv())
    return 0


def cmd_trace(args) -> int:
    from repro.obs import (
        SpanTracer,
        ascii_timeline,
        write_chrome_trace,
        write_rollup_csv,
    )

    engine = _backend(args)
    if args.scenario:
        _no_case_with_scenario(args)
        _payload, cfg = _scenario_case(args)
        case = cfg.name
    else:
        machine = _machine(
            args.machine, 8 if args.nodes is None else args.nodes
        )
        case = _case_name(args)
        cfg = _case(case, machine, args.scale, _steps(args), args.f0)
    out_dir = Path(args.out)
    # --trends needs per-step rollups, which come from the segment
    # store's index; default its location under the output directory.
    if args.trends and not args.trace_store:
        args.trace_store = str(out_dir / f"store_{case}")
    store = _store_tracer(args, case, "trace")
    if args.from_step is not None and store is None:
        raise SystemExit(
            "--from-step needs --trace-store: per-step byte offsets "
            "live in the segment store's index"
        )
    mode = "streaming store" if store else "in-memory"
    if args.scenario:
        print(
            f"{cfg.name}: {cfg.n_near} near-body grids, "
            f"{cfg.machine.name} x {cfg.machine.nodes} nodes, "
            f"grouping={cfg.grouping}, tracing enabled ({mode}), "
            f"backend={engine.name}"
        )
    else:
        print(
            f"{cfg.name}: {cfg.total_gridpoints} points, {len(cfg.grids)} "
            f"grids, {machine.name} x {machine.nodes} nodes, tracing "
            f"enabled ({mode}), backend={engine.name}"
        )
    tracer = store if store is not None else SpanTracer()
    san = _make_sanitizer(args, tracer=tracer)
    try:
        try:
            if args.scenario:
                from repro.offbody import OffBodyDriver

                driver = OffBodyDriver(
                    cfg,
                    tracer=tracer,
                    sanitizer=san,
                    backend=engine,
                    fault_plan=(
                        list(args.fault)
                        if getattr(args, "fault", None) else None
                    ),
                )
            else:
                driver = OverflowD1(
                    cfg,
                    tracer=tracer,
                    sanitizer=san,
                    backend=engine,
                    **_resilience_kwargs(args),
                )
        except ValueError as exc:
            raise SystemExit(str(exc))
        run = driver.run()
    finally:
        engine.close()
        if store is not None:
            store.close()

    steps = []
    reader = None
    if store is not None:
        # Reconstruct the exact in-memory view from the stream; the
        # exporters below consume it unchanged (and byte-identically).
        from repro.obs.store import StoreReader

        reader = StoreReader(store.directory)
        tracer = reader.to_tracer()
        steps = reader.steps

    suffix = ""
    rollup = None
    if args.from_step is not None:
        if reader is None:
            raise SystemExit(
                "--from-step needs --trace-store: per-step byte offsets "
                "live in the segment store's index"
            )
        from repro.obs import PhaseRollup

        try:
            tracer = reader.to_tracer(from_step=args.from_step)
        except ValueError as exc:
            raise SystemExit(str(exc))
        suffix = f"_from{args.from_step}"
        rollup = PhaseRollup.from_tracer(tracer)
    if rollup is None:
        rollup = run.rollup()
    igbp = run.igbp_rollup()
    trace_path = write_chrome_trace(
        tracer, out_dir / f"trace_{case}{suffix}.json"
    )
    csv_path = write_rollup_csv(
        rollup, out_dir / f"trace_{case}{suffix}_rollup.csv"
    )

    unit = "wall" if tracer.clock == "wall" else "virtual"
    print(f"\n{len(tracer.ops)} span events over {run.elapsed:.4f} "
          f"{unit} s ({run.nsteps} steps, {len(run.epochs)} epochs)")
    if suffix:
        print(
            f"partial replay from step {args.from_step}: spans, rollup "
            f"and timeline below cover steps {args.from_step}.. only "
            f"(exports carry the {suffix} suffix)"
        )
    print(rollup.format_breakdown())
    ig = igbp.summary()
    print(f"\nI(p) over the last window: {ig['I']}")
    print(f"Ibar = {ig['ibar']:.2f}, max f(p) = {ig['f_max']:.3f}")
    for step, procs in run.partition_history:
        print(f"partition from step {step}: {procs}")
    if args.scenario:
        _print_offbody(run)
    for rec in run.recoveries:
        print(rec.describe())
    if not args.no_timeline:
        print()
        print(ascii_timeline(tracer, width=args.width))
    print(f"\nwrote {trace_path}  (load in chrome://tracing or Perfetto)")
    print(f"wrote {csv_path}")
    if store is not None:
        print(
            f"trace store: {store.directory} ({store.records} records; "
            f"watch live with 'repro top {store.directory}')"
        )
    if args.trends:
        from repro.obs.perf.trends import (
            step_series,
            trend_chart,
            write_trend_csv,
        )

        if not steps:
            print("trends: no per-step rollups in the store index")
        else:
            print()
            print(trend_chart(step_series(steps), width=args.width))
            trends_path = write_trend_csv(
                steps, out_dir / f"trace_{case}_trends.csv"
            )
            print(f"\nwrote {trends_path}")
    return _finish_sanitizer(san)


def cmd_physics(args) -> int:
    from repro.cases.airfoil import AIRFOIL_SEARCH_LISTS, airfoil_grids
    from repro.core import Overset2D
    from repro.motion import PitchOscillation
    from repro.solver import FlowConfig

    grids = airfoil_grids(scale=args.scale)
    driver = Overset2D(
        grids,
        FlowConfig(mach=args.mach, reynolds=args.reynolds, cfl=2.0),
        AIRFOIL_SEARCH_LISTS,
        motions={0: PitchOscillation()},
        fringe_layers=2,
    )
    print(
        f"{driver.total_gridpoints()} points, "
        f"{driver.last_report.igbps} IGBPs"
    )
    for k in range(args.steps):
        out = driver.step()
        if k % max(1, args.steps // 10) == 0:
            print(
                f"step {k:4d}: t={out['t']:.4f} "
                f"max-resid={max(out['residuals']):.3e}"
            )
    f = driver.surface_forces(0)
    print(f"forces: fx={f['fx']:+.5f} fy={f['fy']:+.5f} "
          f"moment={f['moment']:+.6f}")
    return 0


def cmd_scenario(args) -> int:
    from repro.offbody import (
        ScenarioError,
        generate_scenario,
        write_scenario,
    )

    try:
        payload = generate_scenario(
            args.kind, seed=args.seed, nbodies=args.nbodies
        )
    except ScenarioError as exc:
        raise SystemExit(str(exc))
    out = args.out or f"scenario-{args.kind}-{args.seed}.json"
    path = write_scenario(payload, out)
    run = payload["run"]
    print(
        f"{payload['name']}: {payload['kind']} scenario, seed "
        f"{payload['seed']}, {len(payload['bodies'])} bodies, "
        f"{run['nsteps']} steps on {run['machine']} x {run['nodes']} "
        f"nodes, grouping={run['grouping']}"
    )
    print(f"wrote {path}  (execute with 'repro run --scenario {path}')")
    return 0


def _bench_scenario(args) -> int:
    """``repro bench --scenario FILE``: off-body BENCH payload."""
    from repro.obs.perf import scenario_bench_payload, write_bench
    from repro.offbody import ScenarioError, load_scenario

    _no_case_with_scenario(args)
    engine = _backend(args)  # fail fast on unknown/unavailable names
    engine.close()  # the harness builds its own; this one was a probe
    try:
        scn = load_scenario(args.scenario)
    except ScenarioError as exc:
        raise SystemExit(str(exc))
    print(
        f"bench {scn['name']} (scenario, {args.repeats} repeat(s), "
        f"backend={engine.name}) ...",
        file=sys.stderr,
    )
    payload = scenario_bench_payload(
        scn,
        repeats=args.repeats,
        backend=engine.name,
        grouping=args.grouping,
    )
    path = write_bench(payload, args.out)
    exit_code = 0
    sim = payload["simulated"]
    print(
        f"{scn['name']}: {sim['elapsed_s']:.4f} simulated s over "
        f"{sim['nsteps']} steps on {sim['nranks']} ranks "
        f"({payload['host']['wall_s_median']:.2f} s wall median)"
    )
    print(
        f"  Mflops/node {sim['mflops_per_node']:.1f}, "
        f"%DCF3D {sim['pct_dcf3d']:.1f}%, "
        f"max f(p) {sim['imbalance']['f_max']:.3f}, "
        f"comm {sim['comm']['total_messages']} msgs / "
        f"{sim['comm']['total_bytes']} B"
    )
    ob = sim["offbody"]
    for e in ob["epochs"]:
        print(
            f"  epoch @ step {e['first_step']}: {e['npatches']} patches "
            f"(+{e['created']}/-{e['destroyed']}), {ob['grouping']} cut "
            f"{e['cut_points']} pts / {e['cut_edges']} edges, "
            f"tau {e['balance_tau']:.3f}"
        )
    meas = payload["host"].get("measured")
    if meas:
        match = "physics match" if meas["igbp_matches_simulated"] \
            else "PHYSICS MISMATCH"
        print(
            f"  measured ({meas['backend']}): "
            f"{meas['elapsed_s_median']:.4f} wall s median, "
            f"{meas['time_per_step_s']:.4f} s/step, "
            f"Mflops/node {meas['mflops_per_node']:.1f}, "
            f"%DCF3D {meas['pct_dcf3d']:.1f}% [{match}]"
        )
        if not meas["igbp_matches_simulated"]:
            exit_code = 1
    if not sim["sanitizer"]["ok"]:
        print(f"  sanitizer: FINDINGS {sim['sanitizer']['counts']}")
        exit_code = 1
    print(f"  wrote {path}")
    return exit_code


def cmd_bench(args) -> int:
    from repro.obs.perf import BENCH_CASES, run_bench

    if args.scenario:
        return _bench_scenario(args)
    case_name = _case_name(args)
    if case_name == "all":
        cases = sorted(BENCH_CASES)
    elif case_name in BENCH_CASES:
        cases = [case_name]
    else:
        raise SystemExit(
            f"unknown bench case {case_name!r}; choose from "
            f"{sorted(BENCH_CASES)} or 'all'"
        )
    engine = _backend(args)  # fail fast on unknown/unavailable names
    engine.close()  # run_bench builds its own engine; this one was a probe
    exit_code = 0
    for i, case in enumerate(cases):
        print(f"bench {case} ({'quick' if args.quick else 'full'}, "
              f"{args.repeats} repeat(s), backend={engine.name}) ...",
              file=sys.stderr)
        payload, path = run_bench(
            case,
            args.out,
            quick=args.quick,
            repeats=args.repeats,
            # One micro-bench per invocation is plenty.
            microbench=not args.no_microbench and i == 0,
            backend=engine.name,
            trace_store=(
                str(Path(args.trace_store) / case)
                if args.trace_store
                else None
            ),
        )
        sim = payload["simulated"]
        print(
            f"{case}: {sim['elapsed_s']:.4f} simulated s over "
            f"{sim['nsteps']} steps on {sim['nranks']} ranks "
            f"({payload['host']['wall_s_median']:.2f} s wall median)"
        )
        print(
            f"  Mflops/node {sim['mflops_per_node']:.1f}, "
            f"%DCF3D {sim['pct_dcf3d']:.1f}%, "
            f"max f(p) {sim['imbalance']['f_max']:.3f}, "
            f"comm {sim['comm']['total_messages']} msgs / "
            f"{sim['comm']['total_bytes']} B"
        )
        mb = payload["host"].get("hook_microbench")
        if mb:
            print(
                f"  hook overhead: {mb['eager_hook_calls']} eager hook "
                f"calls -> {mb['batched_hook_calls']} batched "
                f"({mb['hook_call_reduction']:.0f}x fewer); per-send path "
                f"{mb['eager_ns_per_send']:.0f} -> "
                f"{mb['batched_ns_per_send']:.0f} ns "
                f"({mb['hook_speedup']:.1f}x)"
            )
        sv = payload["host"].get("serve_microbench")
        if sv and "jobs_per_sec" in sv:
            print(
                f"  warm-pool throughput: {sv['jobs_per_sec']:.2f} jobs/s "
                f"({sv['jobs']} x {sv['case']} over {sv['workers']} "
                f"workers, {sv['wall_s']:.2f} s wall)"
            )
        meas = payload["host"].get("measured")
        if meas:
            match = "physics match" if meas["igbp_matches_simulated"] \
                else "PHYSICS MISMATCH"
            print(
                f"  measured ({meas['backend']}): "
                f"{meas['elapsed_s_median']:.4f} wall s median, "
                f"{meas['time_per_step_s']:.4f} s/step, "
                f"Mflops/node {meas['mflops_per_node']:.1f}, "
                f"%DCF3D {meas['pct_dcf3d']:.1f}% [{match}]"
            )
            if not meas["igbp_matches_simulated"]:
                exit_code = 1
        if not sim["sanitizer"]["ok"]:
            print(f"  sanitizer: FINDINGS {sim['sanitizer']['counts']}")
            exit_code = 1
        trend = sim.get("trend", {})
        if trend.get("steps"):
            print(
                f"  trend: {trend['steps']} step(s), "
                f"max imbalance {trend['imbalance_max']:.3f}"
            )
        print(f"  wrote {path}")
        if args.compare:
            from repro.obs.perf import diff_files

            baseline = Path(args.baseline_dir) / path.name
            if not baseline.is_file():
                print(f"  compare: no baseline {baseline}", file=sys.stderr)
                exit_code = 1
                continue
            try:
                report = diff_files(baseline, path, tolerance=args.tolerance)
            except (OSError, ValueError) as exc:
                raise SystemExit(str(exc))
            print(report.format())
            if not report.ok:
                exit_code = 1
    return exit_code


def cmd_trace_diff(args) -> int:
    from repro.obs.perf import diff_files

    try:
        report = diff_files(args.a, args.b, tolerance=args.tolerance)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))
    print(report.to_json() if args.json else report.format())
    return 0 if report.ok else 1


def cmd_lint(args) -> int:
    from repro.analysis import fix_paths, lint_paths, rule_catalog

    if args.rules:
        for rule in rule_catalog():
            print(f"{rule['code']}  {rule['name']}: {rule['summary']}")
        return 0
    paths = args.paths or ["src"]
    select = args.select.split(",") if args.select else None
    if args.fix:
        result = fix_paths(paths)
        print(result.format())
    try:
        report = lint_paths(paths, select=select)
    except (ValueError, FileNotFoundError) as exc:
        raise SystemExit(str(exc))
    print(report.to_json() if args.json else report.format())
    return 0 if report.ok else 1


def cmd_check(args) -> int:
    from repro.analysis import rule_catalog
    from repro.analysis.commcheck import (
        BaselineError,
        COMMCHECK_CODES,
        load_baseline,
        run_check,
        sarif_json,
        to_sarif,
    )

    catalog = [r for r in rule_catalog() if r["code"] in COMMCHECK_CODES]
    if args.rules:
        for rule in catalog:
            print(f"{rule['code']}  {rule['name']}: {rule['summary']}")
        return 0
    paths = args.paths or ["src/repro"]
    select = args.select.split(",") if args.select else None
    baseline = []
    if not args.no_baseline:
        from pathlib import Path

        bl = Path(args.baseline)
        if bl.is_file():
            try:
                baseline = load_baseline(bl)
            except BaselineError as exc:
                raise SystemExit(str(exc))
        elif args.baseline_check:
            raise SystemExit(
                f"--baseline-check: baseline file not found: {bl}"
            )
    try:
        report = run_check(paths, select=select, baseline=baseline)
    except (ValueError, FileNotFoundError) as exc:
        raise SystemExit(str(exc))
    if args.sarif:
        doc = to_sarif(
            report.findings,
            waived=report.waived,
            suppressed=report.suppressed,
            rules=catalog,
        )
        text = sarif_json(doc)
        if args.sarif == "-":
            print(text)
        else:
            from pathlib import Path

            Path(args.sarif).write_text(text + "\n", encoding="utf-8")
    if not (args.sarif == "-"):
        print(
            report.to_json()
            if args.json
            else report.format(show_summary=args.summary)
        )
    if args.baseline_check and report.stale_baseline:
        return 1
    return 0 if report.ok else 1


def _default_socket() -> str:
    import os

    # Short and stable: unix socket paths cap out around 107 bytes.
    return f"/tmp/repro-serve-{os.getuid()}.sock"


def cmd_serve(args) -> int:
    import signal

    from repro.serve import ReproServer
    from repro.serve.pool import pool_available

    reason = pool_available()
    if reason is not None:
        raise SystemExit(f"repro serve unavailable: {reason}")
    tracer = None
    if args.trace_store:
        from repro.obs.store import StoreTracer

        try:
            # Dispatcher threads record concurrently and jobs are not
            # solver steps, so flush by record count to keep a live
            # `repro top` current.
            tracer = StoreTracer(
                args.trace_store,
                meta={"component": "serve", "workers": args.workers},
                fresh=True,
                flush_every=20,
            )
        except FileExistsError as exc:
            raise SystemExit(str(exc))
        tracer.clock = "wall"
    server = ReproServer(
        args.socket,
        workers=args.workers,
        cache_dir=args.cache_dir,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        tracer=tracer,
    )

    import threading

    drainers: list = []

    def _drain(signum, frame):
        print("draining ...", file=sys.stderr)
        t = threading.Thread(target=server.shutdown, daemon=False)
        t.start()
        drainers.append(t)

    try:
        server.start()
    except OSError as exc:
        raise SystemExit(str(exc))
    # Installed only after start(): the warm workers fork inside
    # start(), and they must not inherit the daemon's drain handler
    # (a process-group SIGTERM/SIGINT would run shutdown in every
    # child against its forked copy of the server).
    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(
        f"repro serve: {args.workers} warm worker(s) on {args.socket} "
        f"(cache: {args.cache_dir or 'memory-only'}); "
        f"SIGTERM/Ctrl-C drains and exits",
        file=sys.stderr,
    )
    assert server._accept_thread is not None
    while server._accept_thread.is_alive():
        server._accept_thread.join(timeout=0.5)
    for t in drainers:
        t.join()
    if tracer is not None:
        tracer.close()
        print(
            f"repro serve: trace store closed ({tracer.records} records "
            f"in {args.trace_store})",
            file=sys.stderr,
        )
    print("repro serve: stopped", file=sys.stderr)
    return 0


def _submit_spec(args):
    from repro.serve import JobSpec, JobSpecError

    try:
        return JobSpec(
            case=_case_name(args),
            machine=args.machine,
            nodes=args.nodes,
            scale=args.scale,
            nsteps=_steps(args),
            f0=args.f0,
            backend=getattr(args, "backend", "sim"),
        )
    except JobSpecError as exc:
        raise SystemExit(str(exc))


def cmd_submit(args) -> int:
    import json as _json

    from repro.serve import (
        JobFailedError,
        ServeClient,
        ServeConnectError,
        SocketPathTooLong,
    )

    spec = _submit_spec(args)
    try:
        spec.check_runnable()
    except Exception as exc:
        raise SystemExit(str(exc))
    try:
        client = ServeClient(args.socket)
    except (ServeConnectError, SocketPathTooLong) as exc:
        raise SystemExit(str(exc))
    with client:
        try:
            if args.no_wait:
                rec = client.submit(spec, cache=not args.no_cache)
            else:
                rec = client.run(
                    spec, cache=not args.no_cache, timeout=args.timeout
                )
        except JobFailedError as exc:
            print(f"job failed: {exc}", file=sys.stderr)
            if exc.detail:
                print(
                    _json.dumps(exc.detail, indent=2, sort_keys=True),
                    file=sys.stderr,
                )
            return 1
    if args.json:
        print(_json.dumps(rec, indent=2, sort_keys=True))
        return 0
    print(
        f"job {rec['id']} [{rec['sha'][:12]}] {rec['case']} "
        f"({rec['backend']}): {rec['state']}"
        + (" (cache hit)" if rec.get("cached") else "")
        + (f" after {rec['attempts']} attempt(s)"
           if rec.get("attempts", 0) > 1 else "")
    )
    payload = rec.get("payload")
    if payload:
        blob = _json.loads(payload)
        result = blob["result"]
        unit = "simulated s" if blob.get("deterministic") else "measured wall s"
        print(
            f"  {result['elapsed_s']:.4f} {unit} over "
            f"{result['nsteps']} steps on {result['nranks']} ranks; "
            f"Mflops/node {result['mflops_per_node']:.1f}, "
            f"%DCF3D {result['pct_dcf3d']:.1f}%"
        )
    return 0


def cmd_jobs(args) -> int:
    import json as _json

    from repro.serve import ServeClient, ServeConnectError, SocketPathTooLong

    try:
        client = ServeClient(args.socket)
    except (ServeConnectError, SocketPathTooLong) as exc:
        raise SystemExit(str(exc))
    with client:
        if args.stats:
            stats = client.stats()
            print(_json.dumps(stats, indent=2, sort_keys=True))
            return 0
        jobs = client.jobs()
    if args.json:
        print(_json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        flags = []
        if job.get("cached"):
            flags.append("cache-hit")
        if job.get("attempts", 0) > 1:
            flags.append(f"{job['attempts']} attempts")
        if job.get("error"):
            flags.append(job["error"]["kind"])
        suffix = f" ({', '.join(flags)})" if flags else ""
        print(
            f"{job['id']:>4}  {job['sha'][:12]}  {job['case']:<10} "
            f"{job['backend']:<4} {job['state']}{suffix}"
        )
    return 0


def cmd_top(args) -> int:
    from repro.obs.store import load_index
    from repro.obs.store.top import run_top

    store = Path(args.store)
    if not store.is_dir() and not args.wait:
        raise SystemExit(
            f"no trace store at {store} (start a producer with "
            f"--trace-store, or pass --wait to poll for one)"
        )
    if args.wait:
        import time as _time

        deadline = _time.monotonic() + args.wait
        while not store.is_dir() or (
            load_index(store) is None
            and not any(store.glob("shard-*.seg"))
        ):
            if _time.monotonic() >= deadline:
                raise SystemExit(
                    f"no trace store appeared at {store} within "
                    f"{args.wait:.0f}s"
                )
            _time.sleep(0.1)
    return run_top(
        store,
        interval=args.interval,
        once=args.once,
        width=args.width,
    )


def cmd_node(args) -> int:
    from repro.cluster.node import NodeDaemon
    from repro.cluster.protocol import ClusterProtocolError, parse_hostport

    try:
        host, port = parse_hostport(args.connect)
    except ClusterProtocolError as exc:
        raise SystemExit(str(exc))
    try:
        return NodeDaemon(host, port, name=args.name).run()
    except KeyboardInterrupt:
        return 130


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Parallel dynamic overset grid methods (SC 1997) "
        "reproduction",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list cases and machines").set_defaults(
        fn=cmd_list
    )

    def case_args(sp, extra=""):
        sp.add_argument(
            "case_pos", nargs="?", metavar="case", default=None,
            help="airfoil | deltawing | store | x38" + extra,
        )
        sp.add_argument(
            "--case", dest="case_opt", metavar="CASE",
            help="case name (flag alternative to the positional)",
        )

    def common(sp):
        case_args(sp)
        sp.add_argument("--machine", default="sp2")
        sp.add_argument("--scale", type=float, default=0.1)
        # None = not given: built-in cases default to 5 steps while a
        # --scenario file's own run block wins unless overridden.
        sp.add_argument("--steps", type=int, default=None)
        sp.add_argument("--f0", type=float, default=math.inf)

    def backend_opt(sp):
        sp.add_argument(
            "--backend", default="sim", metavar="NAME",
            help="execution backend: 'sim' (modeled virtual time, "
            "deterministic; default), 'mp' (real multiprocessing "
            "ranks, measured wall time, identical physics), or "
            "'cluster' (multi-host node daemons over TCP, elastic)",
        )
        sp.add_argument(
            "--cluster-nodes", type=int, default=2, metavar="N",
            help="node-daemon pool size for --backend cluster "
            "(default 2, spawned on localhost)",
        )

    def trace_store_opt(sp):
        sp.add_argument(
            "--trace-store", metavar="DIR",
            help="stream trace events to a sharded segment store at DIR "
            "(append-only per-rank segments + index; O(segment) memory; "
            "tail it live with 'repro top DIR')",
        )

    def sanitize(sp):
        sp.add_argument(
            "--sanitize", action="store_true",
            help="shadow the run with the SimMPI sanitizer "
            "(message-race / tag / collective / finalize checks; "
            "exits 1 on findings)",
        )

    def scenario_opt(sp):
        sp.add_argument(
            "--scenario", metavar="FILE",
            help="execute a generated off-body scenario file instead of "
            "a built-in case (adaptive Cartesian patches + Algorithm 3 "
            "grouping; see 'repro scenario' and docs/offbody.md)",
        )
        sp.add_argument(
            "--grouping", choices=("algorithm3", "roundrobin"),
            default=None,
            help="off-body grouping strategy override for --scenario "
            "(default: the scenario's run block, normally algorithm3)",
        )

    def resilience(sp):
        sp.add_argument(
            "--fault", action="append", metavar="SPEC",
            help="inject a fail-stop fault, e.g. rank=3@step=40 "
            "(also rank=R@t=SECONDS / rank=R@phase=K; repeatable)",
        )
        sp.add_argument(
            "--checkpoint-every", type=int, metavar="N",
            help="checkpoint the driver state every N measured steps",
        )
        sp.add_argument(
            "--checkpoint-dir", metavar="DIR",
            help="persist checkpoints to DIR (usable by 'repro resume')",
        )

    run = sub.add_parser(
        "run", help="one OVERFLOW-D1 (or --scenario off-body) simulation"
    )
    common(run)
    run.add_argument(
        "--nodes", type=int, default=None,
        help="node count (default 12; a --scenario file's own node "
        "count wins unless given)",
    )
    scenario_opt(run)
    resilience(run)
    sanitize(run)
    backend_opt(run)
    trace_store_opt(run)
    run.set_defaults(fn=cmd_run)

    resume = sub.add_parser(
        "resume", help="continue a run from a checkpoint file or directory"
    )
    resume.add_argument(
        "checkpoint", help="path to a .rpk checkpoint or a checkpoint dir"
    )
    resilience(resume)
    sanitize(resume)
    resume.set_defaults(fn=cmd_resume)

    sweep = sub.add_parser("sweep", help="speedup table over node counts")
    common(sweep)
    sweep.add_argument("--nodes", default="6,12,24",
                       help="comma-separated node counts")
    sweep.add_argument("--csv", action="store_true",
                       help="also print the CSV series")
    sweep.set_defaults(fn=cmd_sweep)

    trace = sub.add_parser(
        "trace",
        help="one traced run: Chrome trace JSON + rollup CSV + timeline",
    )
    common(trace)
    trace.add_argument(
        "--nodes", type=int, default=None,
        help="node count (default 8; a --scenario file's own node "
        "count wins unless given)",
    )
    scenario_opt(trace)
    resilience(trace)
    sanitize(trace)
    backend_opt(trace)
    trace.add_argument("--out", default=str(DEFAULT_TRACE_DIR),
                       help="output directory for trace/rollup files")
    trace.add_argument("--width", type=int, default=72,
                       help="ASCII timeline width in characters")
    trace.add_argument("--no-timeline", action="store_true",
                       help="skip the ASCII timeline")
    trace_store_opt(trace)
    trace.add_argument(
        "--trends", action="store_true",
        help="per-step trend analytics from the store index: ASCII "
        "phase-time and imbalance plots + a trends CSV (implies a "
        "segment store under --out when --trace-store is not given)",
    )
    trace.add_argument(
        "--from-step", type=int, default=None, metavar="N",
        help="replay only steps N.. from the segment store via the "
        "index's per-step byte offsets (needs --trace-store); exports "
        "are suffixed _fromN",
    )
    trace.set_defaults(fn=cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="performance observatory: canonical BENCH_<case>.json payloads",
    )
    case_args(bench, extra=" | all")
    bench.add_argument(
        "--quick", action="store_true",
        help="reduced scale/steps/nodes (the CI perf-gate configuration)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="wall-time repeats (median reported; simulated time must "
        "be identical across repeats)",
    )
    bench.add_argument(
        "--out", default=str(DEFAULT_TRACE_DIR),
        help="output directory for BENCH_<case>.json files",
    )
    bench.add_argument(
        "--no-microbench", action="store_true",
        help="skip the sanitizer hook-overhead micro-benchmark",
    )
    backend_opt(bench)
    scenario_opt(bench)
    bench.add_argument(
        "--compare", action="store_true",
        help="after each case, trace-diff the fresh payload against the "
        "committed baseline and exit non-zero on regressions",
    )
    bench.add_argument(
        "--baseline-dir",
        default=str(Path(__file__).resolve().parents[2]
                    / "benchmarks" / "baselines"),
        help="baseline directory for --compare "
        "(default: benchmarks/baselines)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.02,
        help="relative tolerance for --compare (default 2%%)",
    )
    bench.add_argument(
        "--trace-store", metavar="DIR",
        help="keep each case's final-repeat segment store under "
        "DIR/<case> (default: a temporary directory, discarded)",
    )
    bench.set_defaults(fn=cmd_bench)

    scen = sub.add_parser(
        "scenario",
        help="generate a seeded multi-body off-body scenario JSON file "
        "(execute with run/trace/bench --scenario)",
    )
    scen.add_argument(
        "--kind", choices=("store-salvo", "debris", "formation"),
        default="store-salvo",
        help="scenario family (default store-salvo)",
    )
    scen.add_argument(
        "--seed", type=int, required=True,
        help="RNG seed; the same kind+seed always yields a "
        "byte-identical file",
    )
    scen.add_argument(
        "--nbodies", type=int, default=None,
        help="body count override (default: a kind-specific draw)",
    )
    scen.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default: scenario-<kind>-<seed>.json)",
    )
    scen.set_defaults(fn=cmd_scenario)

    tdiff = sub.add_parser(
        "trace-diff",
        help="classify per-metric deltas between two BENCH payloads; "
        "exits 1 on regression beyond tolerance",
    )
    tdiff.add_argument("a", help="baseline BENCH_*.json")
    tdiff.add_argument("b", help="candidate BENCH_*.json")
    tdiff.add_argument(
        "--tolerance", type=float, default=0.02,
        help="relative tolerance for 'unchanged' (default 2%%)",
    )
    tdiff.add_argument(
        "--json", action="store_true", help="emit the JSON report"
    )
    tdiff.set_defaults(fn=cmd_trace_diff)

    lint = sub.add_parser(
        "lint",
        help="project determinism lint (RPR rules) over source trees",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: src)",
    )
    lint.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (e.g. RPR001,RPR005)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the JSON report"
    )
    lint.add_argument(
        "--rules", action="store_true",
        help="list the rule catalog and exit",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="auto-fix RPR007 findings in place (wrap unordered loop "
        "iterables in sorted(...)), then lint the result",
    )
    lint.set_defaults(fn=cmd_lint)

    check = sub.add_parser(
        "check",
        help="whole-program comm-protocol & lock-discipline analysis "
        "(RPR010-RPR015) with baseline + SARIF output",
    )
    check.add_argument(
        "paths", nargs="*",
        help="files/directories to analyze as one program "
        "(default: src/repro)",
    )
    check.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (e.g. RPR014,RPR015)",
    )
    check.add_argument(
        "--json", action="store_true", help="emit the JSON report"
    )
    check.add_argument(
        "--sarif", metavar="FILE",
        help="write a SARIF 2.1.0 report to FILE ('-' for stdout)",
    )
    check.add_argument(
        "--baseline", default="analysis-baseline.json", metavar="FILE",
        help="suppression baseline for documented false positives "
        "(default: analysis-baseline.json; missing file = empty)",
    )
    check.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file (report raw findings)",
    )
    check.add_argument(
        "--baseline-check", action="store_true",
        help="also fail (exit 1) when the baseline contains stale "
        "entries that no longer match any finding",
    )
    check.add_argument(
        "--rules", action="store_true",
        help="list the whole-program rule catalog and exit",
    )
    check.add_argument(
        "--summary", action="store_true",
        help="print the extracted communication summary after the "
        "findings",
    )
    check.set_defaults(fn=cmd_check)

    def socket_opt(sp):
        sp.add_argument(
            "--socket", default=_default_socket(), metavar="PATH",
            help="unix socket of the job server "
            "(default: /tmp/repro-serve-<uid>.sock)",
        )

    serve = sub.add_parser(
        "serve",
        help="long-lived job server: warm worker pool + result cache "
        "over a unix socket",
    )
    socket_opt(serve)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="warm worker processes (default 2)",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist cached results to DIR (default: memory only)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=300.0, metavar="S",
        help="per-job wall-clock budget in seconds (default 300)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2,
        help="retries after a worker crash (default 2)",
    )
    trace_store_opt(serve)
    serve.set_defaults(fn=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one job to a running 'repro serve' daemon"
    )
    common(submit)
    submit.add_argument("--nodes", type=int, default=4)
    backend_opt(submit)
    socket_opt(submit)
    submit.add_argument(
        "--no-wait", action="store_true",
        help="enqueue and return immediately (poll with 'repro jobs')",
    )
    submit.add_argument(
        "--no-cache", action="store_true",
        help="force a fresh execution even when the result is cached",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="seconds to wait for the result (default 300)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="print the full result frame as JSON",
    )
    submit.set_defaults(fn=cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list the daemon's jobs (or --stats for counters)"
    )
    socket_opt(jobs)
    jobs.add_argument(
        "--stats", action="store_true",
        help="print cache/queue/worker counters instead of the job list",
    )
    jobs.add_argument(
        "--json", action="store_true", help="print the job list as JSON"
    )
    jobs.set_defaults(fn=cmd_jobs)

    top = sub.add_parser(
        "top",
        help="live view of a running traced job: per-rank phase "
        "occupancy, f(p) imbalance and hot comm edges, tailed from a "
        "segment store",
    )
    top.add_argument("store", help="trace-store directory to tail")
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh interval in seconds (default 1.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single snapshot of what is durable now and exit",
    )
    top.add_argument(
        "--width", type=int, default=80,
        help="render width in characters (default 80)",
    )
    top.add_argument(
        "--wait", type=float, default=0.0, metavar="S",
        help="wait up to S seconds for the store to appear "
        "(for racing a freshly launched job)",
    )
    top.set_defaults(fn=cmd_top)

    node = sub.add_parser(
        "node",
        help="cluster node daemon: hosts rank workers for a head "
        "running '--backend cluster'",
    )
    node.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="address of the cluster head to join",
    )
    node.add_argument(
        "--name", default=None, metavar="NAME",
        help="daemon name in head-side logs (default: hostname)",
    )
    node.set_defaults(fn=cmd_node)

    phys = sub.add_parser("physics", help="real coupled 2-D solve")
    phys.add_argument("--scale", type=float, default=0.05)
    phys.add_argument("--steps", type=int, default=20)
    phys.add_argument("--mach", type=float, default=0.5)
    phys.add_argument("--reynolds", type=float, default=1e4)
    phys.set_defaults(fn=cmd_physics)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
