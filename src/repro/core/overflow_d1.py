"""The OVERFLOW-D1 performance driver.

Runs the paper's per-timestep loop on the simulated machine:

1. **flow solve** — each rank charges the work-model arithmetic for its
   subdomain and exchanges halo faces with its neighbours on the same
   component grid (one round per factored sweep direction);
2. **grid motion** — ranks of moving grids charge the rigid-transform
   update; the shared world state advances (new coordinates, holes cut,
   IGBPs identified);
3. **domain connectivity** — the real distributed DCF3D protocol
   (:mod:`repro.connectivity.dcf`) runs, producing per-rank received-
   IGBP counts I(p) and walk-step work.

Barriers separate the three modules, as in the paper ("barriers are put
in place to synchronize each of the solution modules").

Dynamic load balancing (Algorithm 2) happens between *epochs*: the
driver simulates ``lb_check_interval`` timesteps, inspects the
accumulated I(p), and — when f0 is finite and some processor exceeds it
— rebuilds the partition and continues.  Virtual time accumulates
across epochs.

Resilience (:mod:`repro.resilience`)
------------------------------------
The driver optionally runs with a fault plan, periodic checkpoints and
elastic recovery:

* **checkpointing** splits an epoch into sub-chunks at checkpoint
  boundaries.  Sub-chunks are resumed with *carried clocks*
  (``Simulator(initial_clocks=...)``): the scheduler's matching, waking
  and tie-breaking depend only on virtual clocks, so a split epoch is
  bit-identical to the unsplit one — checkpointing perturbs nothing.
  Checkpoint *writes* are modeled as free (overlapped with
  computation); only *restores* carry a modeled cost.
* **fault injection** converts driver-level ``step`` triggers into
  chunk-local phase triggers (one measured timestep = three phase
  barriers) and hands scheduler-level triggers through.
* **elastic recovery** on a :class:`repro.machine.faults.RankFailure`:
  survivors run the heartbeat detection protocol, the last checkpoint
  is restored, Algorithm 1 re-runs over the surviving processor set
  (``exclude_ranks``), survivors are renumbered contiguously (ULFM
  shrink) and the timestep loop resumes.  The whole episode lands on
  the trace timeline as ``failure-detection`` / ``restore`` /
  ``repartition`` spans with continuous epoch offsets.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.backend import BackendResult, ExecutionBackend, get_backend
from repro.connectivity.dcf import DcfConfig, DcfWorld, dcf_rank_program
from repro.connectivity.holecut import cut_holes
from repro.connectivity.igbp import IgbpSet, find_igbps
from repro.connectivity.restart import RestartCache
from repro.core.config import CaseConfig
from repro.machine.faults import FaultPlan, FaultSpec, RankFailure
from repro.machine.metrics import MachineMetrics
from repro.obs.rollup import IgbpRollup, PhaseRollup
from repro.partition.assignment import Partition, build_partition
from repro.partition.dynamic_lb import DynamicRebalancer
from repro.resilience.checkpoint import Checkpoint, CheckpointStore
from repro.resilience.recovery import (
    RecoveryPolicy,
    RecoveryRecord,
    run_failure_detection,
)

TAG_HALO = 201

PHASE_FLOW = "overflow"
PHASE_MOTION = "motion"
PHASE_DCF = "dcf3d"

#: Each measured timestep executes exactly this many ``set_phase``
#: barriers (flow / motion / dcf3d) — the conversion factor between
#: driver-level ``step`` fault triggers and scheduler phase triggers.
PHASES_PER_STEP = 3


@dataclass
class StepStats:
    """Per-rank, per-step connectivity statistics."""

    step: int
    igbps_received: int
    search_steps: int
    donors_found: int
    orphans: int


@dataclass
class EpochResult:
    """One contiguous run at a fixed partition.

    All timing/counter data lives in the two :mod:`repro.obs` rollups;
    the former ad-hoc dict/array fields survive as derived properties.
    """

    partition: Partition
    first_step: int
    nsteps: int
    elapsed: float
    rollup: PhaseRollup     # per-rank/per-phase compute/comm/wait + flops
    igbp: IgbpRollup        # per-step, per-rank I(p)
    search_steps_total: int
    orphans_total: int

    @property
    def phase_totals(self) -> dict:
        """phase -> summed rank-seconds (derived from the rollup)."""
        return {p: self.rollup.phase_total(p) for p in self.rollup.phases()}

    @property
    def phase_max(self) -> dict:
        """phase -> max single-rank seconds (derived from the rollup)."""
        return {p: self.rollup.phase_max(p) for p in self.rollup.phases()}

    @property
    def total_flops(self) -> float:
        return self.rollup.total_flops()

    @property
    def igbp_per_rank_step(self) -> np.ndarray:
        """(nsteps, nprocs) I(p) matrix (derived from the IGBP rollup)."""
        return self.igbp.per_step()


@dataclass
class RunResult:
    """Merged outcome of a full OVERFLOW-D1 run."""

    case: str
    machine: str
    nprocs: int
    nsteps: int
    epochs: list[EpochResult] = field(default_factory=list)
    #: Completed failure/restore/repartition episodes, in order.
    recoveries: list[RecoveryRecord] = field(default_factory=list)
    #: Total virtual timeline including lost (rolled-back) work and
    #: recovery overheads.  Equals :attr:`elapsed` for fault-free runs.
    wall_elapsed: float = 0.0

    @property
    def elapsed(self) -> float:
        return sum(e.elapsed for e in self.epochs)

    @property
    def time_per_step(self) -> float:
        return self.elapsed / self.nsteps

    @property
    def downtime(self) -> float:
        """Virtual seconds spent in detection + restore + repartition."""
        return sum(r.downtime for r in self.recoveries)

    def phase_total(self, phase: str) -> float:
        return sum(e.rollup.phase_total(phase) for e in self.epochs)

    @property
    def pct_dcf3d(self) -> float:
        """Percentage of total (rank-summed) time in the connectivity
        solution — the paper's '% Time in DCF3D' column."""
        total = sum(e.rollup.total_seconds() for e in self.epochs)
        if total == 0:
            return 0.0
        return 100.0 * self.phase_total(PHASE_DCF) / total

    @property
    def total_flops(self) -> float:
        return sum(e.rollup.total_flops() for e in self.epochs)

    @property
    def mflops_per_node(self) -> float:
        if self.elapsed == 0:
            return 0.0
        return self.total_flops / self.elapsed / self.nprocs / 1e6

    def phase_elapsed(self, phase: str) -> float:
        """Critical-path seconds of one phase (slowest rank per epoch)."""
        return sum(e.rollup.phase_max(phase) for e in self.epochs)

    @property
    def partition_history(self) -> list[tuple[int, tuple[int, ...]]]:
        return [(e.first_step, e.partition.procs_per_grid) for e in self.epochs]

    def rollup(self) -> PhaseRollup:
        """Merged per-rank/per-phase rollup over every epoch."""
        if not self.epochs:
            raise ValueError("run has no epochs")
        merged = PhaseRollup(self.nprocs)
        for e in self.epochs:
            merged.merge(e.rollup)
        return merged

    def igbp_rollup(self) -> IgbpRollup:
        """Merged I(p) series over every epoch.

        Note the merged window restarts whenever a repartition changed
        the rank count (see :meth:`repro.obs.rollup.IgbpRollup.record`).
        """
        merged = IgbpRollup()
        for e in self.epochs:
            merged.merge(e.igbp)
        return merged


class _WorldState:
    """Shared (read-mostly) overset system state, advanced by rank 0."""

    def __init__(self, config: CaseConfig) -> None:
        self.config = config
        self.reference = list(config.grids)
        self.grids = list(config.grids)
        self.time = 0.0
        self.iblanks: list[np.ndarray] = []
        self.igbp_sets: list[IgbpSet] = []
        self.advance(0.0)

    def advance(self, t: float) -> None:
        cfg = self.config
        grids = []
        for gi, ref in enumerate(self.reference):
            motion = cfg.motions.get(gi)
            if motion is None:
                grids.append(self.grids[gi] if t > 0.0 else ref)
            else:
                grids.append(ref.with_coordinates(motion.at(t).apply(ref.xyz)))
        self.grids = grids
        self.time = t
        self._recompute()

    def restore(self, t: float, xyz_list) -> None:
        """Reset to checkpointed poses (no motion recomputation).

        Restoring the stored coordinates directly — rather than
        re-evaluating the motions at ``t`` — keeps restore exact even
        for stateful motions (e.g. the 6-DoF integrator) whose
        trajectory depends on history, and is bit-identical by
        construction for the prescribed ones.
        """
        self.grids = [
            ref.with_coordinates(xyz)
            for ref, xyz in zip(self.reference, xyz_list)
        ]
        self.time = t
        self._recompute()

    def _recompute(self) -> None:
        cfg = self.config
        self.iblanks = cut_holes(self.grids)
        self.igbp_sets = [
            find_igbps(g, gi, self.iblanks[gi], cfg.fringe_layers)
            for gi, g in enumerate(self.grids)
        ]

    def own_igbps(
        self, partition: Partition, rank: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(flat ids, coordinates) of the IGBPs this rank owns."""
        gi = partition.grid_of_rank(rank)
        box = partition.subdomain_of(rank).box
        s = self.igbp_sets[gi]
        if s.count == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, self.grids[0].ndim)),
            )
        multi = np.stack(
            np.unravel_index(s.flat_indices, self.grids[gi].dims), axis=-1
        )
        mine = np.all((multi >= box.lo) & (multi < box.hi), axis=1)
        return s.flat_indices[mine], s.points[mine]


def _halo_neighbors(partition: Partition) -> list[list[tuple[int, int]]]:
    """Per rank: (neighbour rank, shared face points) on the same grid."""
    out: list[list[tuple[int, int]]] = [[] for _ in range(partition.nprocs)]
    for gi in range(partition.ngrids):
        ranks = partition.ranks_of_grid(gi)
        for a in ranks:
            for b in ranks:
                if b <= a:
                    continue
                shared = _shared_face(
                    partition.subdomain_of(a).box, partition.subdomain_of(b).box
                )
                if shared > 0:
                    out[a].append((b, shared))
                    out[b].append((a, shared))
    return out


def _shared_face(a, b) -> int:
    """Points on the face shared by two abutting boxes (0 if not)."""
    touch_axis = None
    overlap = 1
    for d in range(a.ndim):
        if a.hi[d] == b.lo[d] or b.hi[d] == a.lo[d]:
            if touch_axis is not None:
                return 0  # touch along two axes: edge, not face
            touch_axis = d
        else:
            lo = max(a.lo[d], b.lo[d])
            hi = min(a.hi[d], b.hi[d])
            if hi <= lo:
                return 0
            overlap *= hi - lo
    return overlap if touch_axis is not None else 0


@dataclass
class _EpochAccum:
    """Accumulates sub-chunks of one epoch into a single EpochResult.

    The per-rank :class:`repro.machine.metrics.RankMetrics` accumulators
    are *carried* from chunk to chunk
    (``Simulator(initial_metrics=...)``), so the epoch's counters see
    exactly the same additions in exactly the same order as an unsplit
    run — the rollup built at :meth:`finish` is bit-identical, not just
    close, which the checkpointing bit-identity tests pin.
    """

    partition: Partition
    first_step: int          # absolute step (incl. warmup)
    planned: int             # steps this epoch will cover
    steps_done: int = 0
    per_step: list = field(default_factory=list)  # one I(p) row per step
    search_total: int = 0
    orphans_total: int = 0
    #: Per-rank virtual clocks at the last completed sub-chunk; carried
    #: into the next sub-chunk's Simulator so the split epoch's virtual
    #: timeline is continuous (and bit-identical to the unsplit run).
    clocks: list | None = None
    #: Per-rank RankMetrics carried across sub-chunks (see class doc).
    metrics: list | None = None

    @property
    def base(self) -> float:
        """Epoch-local virtual time already covered (0.0 at epoch start)."""
        return max(self.clocks) if self.clocks else 0.0

    def add(self, out, nsteps: int) -> None:
        nprocs = self.partition.nprocs
        mat = np.zeros((nsteps, nprocs), dtype=np.int64)
        for rank, stats in enumerate(out.returns):
            for s, st in enumerate(stats):
                mat[s, rank] = st.igbps_received
                self.search_total += st.search_steps
                self.orphans_total += st.orphans
        for s in range(nsteps):
            self.per_step.append(mat[s])
        self.metrics = list(out.metrics.ranks)
        self.clocks = [rm.final_clock for rm in out.metrics.ranks]
        self.steps_done += nsteps

    def finish(self) -> EpochResult:
        igbp = IgbpRollup()
        for row in self.per_step:
            igbp.record(row)
        if self.metrics is not None:
            rollup = PhaseRollup.from_metrics(MachineMetrics(self.metrics))
        else:
            rollup = PhaseRollup(self.partition.nprocs)
        return EpochResult(
            partition=self.partition,
            first_step=self.first_step,
            nsteps=self.steps_done,
            elapsed=self.base,
            rollup=rollup,
            igbp=igbp,
            search_steps_total=self.search_total,
            orphans_total=self.orphans_total,
        )


@dataclass
class _DriverState:
    """Everything the driver needs to continue (and to checkpoint)."""

    step: int                       # next absolute step (incl. warmup)
    partition: Partition
    rebalancer: DynamicRebalancer
    cache: RestartCache | None
    epochs: list = field(default_factory=list)
    recoveries: list = field(default_factory=list)
    #: Global virtual time at the current epoch's origin — mirrors the
    #: tracer offset, and works identically with ``tracer=None``.
    vt: float = 0.0
    #: Partial epoch in flight (None exactly at epoch boundaries).
    epoch: _EpochAccum | None = None


class OverflowD1:
    """Run a :class:`CaseConfig` on N simulated nodes.

    Pass a :class:`repro.obs.SpanTracer` to record per-rank span events
    for the measured epochs (warm-up is excluded, matching the paper's
    statistics).  With ``tracer=None`` (default) nothing is recorded
    and the simulated timings are bit-identical.

    Resilience parameters (all optional; defaults reproduce the
    historical infallible-machine behaviour exactly):

    fault_plan:
        A :class:`repro.machine.faults.FaultPlan`, a fault-spec string
        (``"rank=3@step=40"``), or a list of specs/strings.  ``step``
        triggers count *measured* timesteps (warm-up excluded); ``t``
        triggers are global measured virtual seconds; ``phase`` triggers
        count ``set_phase`` barriers over measured steps.
    checkpoint_every:
        Snapshot the full driver state every N measured steps.
        Checkpoint boundaries may fall inside an epoch; carried clocks
        keep the run bit-identical either way.
    checkpoint_store:
        A :class:`repro.resilience.checkpoint.CheckpointStore` (or a
        directory path) that persists checkpoints to disk.  Without it,
        checkpoints stay in memory (still usable for recovery).
    recovery_policy:
        Modeled restore/repartition costs and the detection timeout
        (:class:`repro.resilience.recovery.RecoveryPolicy`).
    backend:
        Execution engine for the rank programs: a registry name
        (``"sim"``/``"mp"``) or an
        :class:`repro.backend.ExecutionBackend` instance.  The default
        ``"sim"`` runs on the deterministic discrete-event simulator,
        bit-identical to every release before backends existed.
        ``"mp"`` runs each rank as a real process with measured
        wall-clock accounting; physics outputs (step stats, IGBP
        counts) are identical, timings are measured rather than
        modeled.  Fault injection and the sanitizer require ``"sim"``.
    """

    def __init__(
        self,
        config: CaseConfig,
        tracer=None,
        fault_plan=None,
        checkpoint_every: int | None = None,
        checkpoint_store=None,
        recovery_policy: RecoveryPolicy | None = None,
        sanitizer=None,
        backend: str | ExecutionBackend = "sim",
    ) -> None:
        self.config = config
        self.backend = (
            backend
            if isinstance(backend, ExecutionBackend)
            else get_backend(backend)
        )
        if not self.backend.shared_state:
            if sanitizer is not None:
                raise ValueError(
                    "the sanitizer needs the deterministic simulator; "
                    "run with backend='sim'"
                )
            if fault_plan:
                raise ValueError(
                    "fault injection needs the deterministic simulator; "
                    "run with backend='sim'"
                )
        self.tracer = (
            tracer if tracer is not None and tracer.enabled else None
        )
        #: Optional :class:`repro.analysis.sanitizer.Sanitizer`.  Purely
        #: observational — threading it through every chunk (including
        #: warm-up and recovery re-runs) never perturbs virtual time.
        self.sanitizer = sanitizer
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        elif isinstance(fault_plan, (list, tuple)):
            fault_plan = FaultPlan(fault_plan)
        self.fault_plan = fault_plan if fault_plan else None
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.checkpoint_every = checkpoint_every
        if isinstance(checkpoint_store, (str, Path)):
            checkpoint_store = CheckpointStore(checkpoint_store)
        self.checkpoint_store = checkpoint_store
        self.policy = recovery_policy or RecoveryPolicy()
        self._pending_faults: list[FaultSpec] = []
        self._steps_done = 0       # measured steps actually executed
        self._last_ckpt: Checkpoint | None = None

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        cfg = self.config
        nprocs = cfg.machine.nodes
        partition = build_partition([g.dims for g in cfg.grids], nprocs)
        rebalancer = DynamicRebalancer(
            f0=cfg.f0, check_interval=cfg.lb_check_interval
        )
        # One cache shared by all ranks: restart data lives with the
        # IGBPs (keyed by receiver grid + point id), so it survives
        # repartitioning just as block data redistributed by a real
        # dynamic rebalance would.
        cache = RestartCache() if cfg.use_restart else None
        world = _WorldState(cfg)

        # Warm-up: the paper's statistics exclude preprocessing, and the
        # first connectivity solve (everything searched from scratch) is
        # exactly that; these steps warm the nth-level-restart caches
        # and their metrics are discarded.  Warm-up is never traced,
        # never checkpointed and never faulted.
        if cfg.warmup_steps:
            self._run_chunk(
                world, partition, cache, 0, cfg.warmup_steps,
                clocks=None, tracer=None, fault_plan=None,
            )

        state = _DriverState(
            step=cfg.warmup_steps,
            partition=partition,
            rebalancer=rebalancer,
            cache=cache,
        )
        self._pending_faults = (
            list(self.fault_plan.faults) if self.fault_plan else []
        )
        self._steps_done = 0
        if self.fault_plan is not None or getattr(self.backend, "elastic", False):
            # Implicit step-0 restore point: recovery works even before
            # the first periodic checkpoint (or with checkpointing off).
            # Elastic backends (cluster) get one too — their faults are
            # real node losses that arrive without any plan.
            self._last_ckpt = self._snapshot(state, world)
        return self._main_loop(state, world)

    def resume(self, checkpoint) -> RunResult:
        """Continue a run from a checkpoint (path, bytes-level
        :class:`Checkpoint`, or store's latest).

        The resumed run's :class:`RunResult` covers the *whole* run —
        restored epochs plus the continuation — and, on the same
        processor count with no faults, is bit-identical to the
        uninterrupted run.
        """
        if isinstance(checkpoint, (str, Path)):
            checkpoint = Checkpoint.load(checkpoint)
        data = checkpoint.unpack()
        cfg = data["config"]
        if cfg.name != self.config.name:
            raise ValueError(
                f"checkpoint is for case {cfg.name!r}, "
                f"driver built for {self.config.name!r}"
            )
        self.config = cfg
        state: _DriverState = data["driver"]
        world = _WorldState.__new__(_WorldState)
        world.config = cfg
        world.reference = list(cfg.grids)
        world.grids = list(cfg.grids)
        world.restore(data["world"]["t"], data["world"]["xyz"])
        if self.tracer is not None and state.vt > 0:
            # Align the trace origin with the restored virtual time so
            # resumed spans continue the original timeline.
            self.tracer.advance(state.vt)
        self._pending_faults = (
            list(self.fault_plan.faults) if self.fault_plan else []
        )
        self._steps_done = 0
        self._last_ckpt = checkpoint
        return self._main_loop(state, world)

    # ------------------------------------------------------------------

    def _main_loop(self, state: _DriverState, world: _WorldState) -> RunResult:
        cfg = self.config
        last = cfg.warmup_steps + cfg.nsteps
        while state.step < last or state.epoch is not None:
            try:
                self._advance(state, world, last)
            except RankFailure as failure:
                state = self._recover(state, world, failure)
        return RunResult(
            case=cfg.name,
            machine=cfg.machine.name,
            nprocs=cfg.machine.nodes,
            nsteps=cfg.nsteps,
            epochs=state.epochs,
            recoveries=state.recoveries,
            wall_elapsed=state.vt,
        )

    def _advance(self, state: _DriverState, world: _WorldState, last: int) -> None:
        """Run one sub-chunk; commit the epoch when it completes."""
        cfg = self.config
        tracer = self.tracer
        if state.epoch is None:
            remaining = last - state.step
            planned = (
                remaining
                if math.isinf(cfg.f0)
                else min(cfg.lb_check_interval, remaining)
            )
            if tracer is not None:
                tracer.mark(
                    0.0, "epoch",
                    first_step=state.step - cfg.warmup_steps,
                    nsteps=planned,
                    procs_per_grid=list(state.partition.procs_per_grid),
                )
            state.epoch = _EpochAccum(
                partition=state.partition,
                first_step=state.step,
                planned=planned,
            )
        acc = state.epoch
        epoch_end = acc.first_step + acc.planned
        chunk_end = epoch_end
        if self.checkpoint_every:
            k = self.checkpoint_every
            measured = state.step - cfg.warmup_steps
            next_ckpt = cfg.warmup_steps + (measured // k + 1) * k
            chunk_end = min(chunk_end, next_ckpt)
        nsteps = chunk_end - state.step

        out = self._run_chunk(
            world, state.partition, state.cache, state.step, nsteps,
            clocks=acc.clocks, metrics=acc.metrics, tracer=tracer,
            fault_plan=self._chunk_fault_plan(state, nsteps),
        )
        acc.add(out, nsteps)
        state.step = chunk_end
        self._steps_done += nsteps

        if state.step == epoch_end:
            epoch = acc.finish()
            state.epochs.append(epoch)
            state.rebalancer.record_epoch(epoch.igbp)
            state.epoch = None
            if tracer is not None:
                tracer.advance(epoch.elapsed)
            state.vt += epoch.elapsed
            new = state.rebalancer.maybe_rebalance(state.partition, state.step)
            if new is not None:
                state.partition = new
                if tracer is not None:
                    tracer.mark(
                        0.0, "rebalance",
                        step=state.step - cfg.warmup_steps,
                        procs_per_grid=list(new.procs_per_grid),
                    )

        if (
            self.checkpoint_every
            and (state.step - cfg.warmup_steps) % self.checkpoint_every == 0
            and state.step < last
        ):
            ckpt = self._snapshot(state, world)
            self._last_ckpt = ckpt
            if self.checkpoint_store is not None:
                self.checkpoint_store.write(ckpt)
            if tracer is not None:
                tracer.mark(
                    0.0, "checkpoint",
                    step=state.step - cfg.warmup_steps,
                    nbytes=ckpt.nbytes,
                )

    # ------------------------------------------------------------------
    # fault plumbing

    def _chunk_fault_plan(self, state: _DriverState, nsteps: int) -> FaultPlan | None:
        """Translate pending driver-level faults into chunk-local triggers."""
        if not self._pending_faults:
            return None
        cfg = self.config
        specs = []
        for f in self._pending_faults:
            if f.rank >= state.partition.nprocs:
                continue  # rank id no longer exists after a shrink
            if f.step is not None:
                abs_step = cfg.warmup_steps + f.step
                if state.step <= abs_step < state.step + nsteps:
                    specs.append(FaultSpec(
                        rank=f.rank,
                        phase_index=PHASES_PER_STEP * (abs_step - state.step),
                    ))
            elif f.time is not None:
                specs.append(FaultSpec(
                    rank=f.rank, time=max(0.0, f.time - state.vt)
                ))
            else:
                local = f.phase_index - PHASES_PER_STEP * self._steps_done
                if 0 <= local < PHASES_PER_STEP * nsteps:
                    specs.append(FaultSpec(rank=f.rank, phase_index=local))
        return FaultPlan(specs) if specs else None

    def _recover(
        self, state: _DriverState, world: _WorldState, failure: RankFailure
    ) -> _DriverState:
        """Detection -> restore -> repartition; returns the new state."""
        cfg = self.config
        tracer = self.tracer
        policy = self.policy
        old_n = state.partition.nprocs

        if len(state.recoveries) >= policy.max_recoveries:
            raise failure
        ckpt = self._last_ckpt
        if ckpt is None:
            raise failure  # no restore point: surface the failure

        # 1. The timeline reaches the failure point (failure.time is
        # epoch-local; the tracer offset sits at the epoch origin).
        t_fail_local = failure.time
        vt_fail = state.vt + t_fail_local
        if tracer is not None:
            tracer.advance(t_fail_local)
            tracer.mark(
                0.0, "recovery",
                failed_ranks=list(failure.failed_ranks),
                step=state.step - cfg.warmup_steps,
            )

        # 2. Failure detection: survivors agree on the dead set.
        dead, t_detect = run_failure_detection(
            cfg.machine.with_nodes(old_n),
            failure.failed_ranks,
            tracer=tracer,
            timeout=policy.detection_timeout,
            sanitizer=self.sanitizer,
        )
        if tracer is not None:
            tracer.advance(t_detect)
        dead_set = set(dead)
        self._pending_faults = [
            f for f in self._pending_faults if f.rank not in dead_set
        ]

        n_new = old_n - len(dead)
        if n_new < len(cfg.grids):
            # Not enough survivors to give every grid a processor.
            raise failure

        # 3. Restore the last checkpoint (modeled read cost).
        data = ckpt.unpack()
        restored: _DriverState = data["driver"]
        world.restore(data["world"]["t"], data["world"]["xyz"])
        restored.recoveries = state.recoveries  # superset of checkpointed
        t_restore = policy.restore_latency + ckpt.nbytes / policy.restore_bandwidth
        if tracer is not None:
            for r in range(old_n):
                if r not in dead_set:
                    tracer.phase(r, 0.0, "restore")
                    tracer.op(r, "restore", "compute", 0.0, t_restore)
            tracer.advance(t_restore)

        # A restored partial epoch ran under the pre-failure partition;
        # the shrink forces an epoch boundary, so commit it as a short
        # epoch (its spans already sit at the right timeline position).
        if restored.epoch is not None and restored.epoch.steps_done > 0:
            partial = restored.epoch.finish()
            restored.epochs.append(partial)
            restored.rebalancer.record_epoch(partial.igbp)
        restored.epoch = None

        # 4. Repartition: Algorithm 1 over the surviving processor set,
        # survivors renumbered contiguously (ULFM shrink).
        new_partition = build_partition(
            [g.dims for g in cfg.grids], old_n, exclude_ranks=dead
        )
        t_rep = policy.repartition_seconds
        if tracer is not None:
            for r in range(n_new):
                tracer.phase(r, 0.0, "repartition")
                tracer.op(r, "repartition", "compute", 0.0, t_rep)
            tracer.advance(t_rep)
        restored.partition = new_partition
        restored.vt = vt_fail + t_detect + t_restore + t_rep

        record = RecoveryRecord(
            failed_ranks=dead,
            nprocs_before=old_n,
            nprocs_after=n_new,
            step_failed=state.step - cfg.warmup_steps,
            step_restored=restored.step - cfg.warmup_steps,
            t_failure=vt_fail,
            t_detect=t_detect,
            t_restore=t_restore,
            t_repartition=t_rep,
            checkpoint_bytes=ckpt.nbytes,
            procs_per_grid=new_partition.procs_per_grid,
        )
        restored.recoveries.append(record)
        if tracer is not None:
            tracer.mark(
                0.0, "recovered",
                step=record.step_restored,
                nprocs=n_new,
                procs_per_grid=list(new_partition.procs_per_grid),
            )

        # The post-recovery state is the new restore point: any later
        # failure must not resurrect the dead ranks.
        self._last_ckpt = self._snapshot(restored, world)
        if self.checkpoint_store is not None:
            self.checkpoint_store.write(self._last_ckpt)
        return restored

    # ------------------------------------------------------------------
    # checkpointing

    def _snapshot(self, state: _DriverState, world: _WorldState) -> Checkpoint:
        """Serialise the full driver state (deep-copy semantics)."""
        cfg = self.config
        meta = {
            "case": cfg.name,
            "machine": cfg.machine.name,
            "step": state.step,
            "measured_step": state.step - cfg.warmup_steps,
            "nprocs": state.partition.nprocs,
            "vt": state.vt + (state.epoch.base if state.epoch else 0.0),
            "recoveries": len(state.recoveries),
        }
        return Checkpoint.pack(meta, {
            "config": cfg,
            "driver": state,
            "world": {"t": world.time, "xyz": [g.xyz for g in world.grids]},
        })

    # ------------------------------------------------------------------

    def _run_chunk(
        self,
        world: _WorldState,
        partition: Partition,
        cache,
        first_step: int,
        nsteps: int,
        clocks=None,
        metrics=None,
        tracer=None,
        fault_plan=None,
    ) -> BackendResult:
        """Simulate ``nsteps`` timesteps at a fixed partition.

        ``clocks``/``metrics`` warm-start the per-rank virtual clocks
        and counter accumulators (continuing a split epoch); returns a
        :class:`repro.backend.BackendResult` (field-compatible with the
        scheduler's ``SimulationResult``).

        Backends without shared state (real processes) need three
        deviations, all behind ``shared_state``:

        * every rank advances its *private* world copy in the motion
          phase (rank 0 alone would leave peers' copies stale);
        * each rank returns its private restart cache alongside its
          step stats, and the driver merges them back (ownership of
          IGBP points is disjoint within a chunk, so the union equals
          the shared cache's content at every read point — the
          backend-equivalence tests pin this);
        * the driver re-synchronises its own world copy to the chunk's
          end time (``at(t)`` motions are deterministic functions of
          absolute time, so this is exact).
        """
        cfg = self.config
        nprocs = partition.nprocs
        shared_state = self.backend.shared_state
        caches = [cache] * nprocs
        base_hits = cache.hits if cache is not None else 0
        base_misses = cache.misses if cache is not None else 0
        neighbors = _halo_neighbors(partition)
        dcf_cfg = DcfConfig(
            search_lists=cfg.search_lists, use_restart=cfg.use_restart
        )
        grid_of_rank = [partition.grid_of_rank(r) for r in range(nprocs)]
        rank_boxes = [partition.subdomain_of(r).box for r in range(nprocs)]
        ranks_of_grid = {
            gi: partition.ranks_of_grid(gi) for gi in range(partition.ngrids)
        }

        from repro.grids.subdomain import interior_face_points

        def program(comm):
            rank = comm.rank
            gi = grid_of_rank[rank]
            grid0 = cfg.grids[gi]
            box = rank_boxes[rank]
            own_pts = box.npoints
            # Fraction of this subdomain's points in the halo-adjacent
            # strip (the part that must wait for neighbour data when
            # overlapping communication with computation).
            strip = min(
                0.9, interior_face_points(box, grid0.dims) / max(1, own_pts)
            )
            flow_flops = cfg.work.flow_flops(
                own_pts, grid0.viscous, grid0.turbulence, grid0.ndim
            )
            moves = gi in cfg.motions
            stats_out: list[StepStats] = []

            for s in range(nsteps):
                step = first_step + s
                # ---- (1) flow solve -------------------------------------
                yield from comm.set_phase(PHASE_FLOW)
                if cfg.overlap_halo:
                    # Section-5 latency hiding: inject halos, sweep the
                    # interior while they fly, then finish the strip.
                    for _ in range(cfg.work.halo_exchanges_per_step):
                        for nbr, shared in neighbors[rank]:
                            yield from comm.send(
                                nbr, TAG_HALO, None,
                                nbytes=cfg.work.halo_bytes(shared),
                            )
                        yield from comm.compute(
                            flops=flow_flops
                            * (1.0 - strip)
                            / cfg.work.halo_exchanges_per_step,
                            points_per_node=own_pts,
                        )
                        for nbr, _ in neighbors[rank]:
                            yield from comm.recv(nbr, TAG_HALO)
                        yield from comm.compute(
                            flops=flow_flops
                            * strip
                            / cfg.work.halo_exchanges_per_step,
                            points_per_node=own_pts,
                        )
                else:
                    yield from comm.compute(
                        flops=flow_flops, points_per_node=own_pts
                    )
                    for _ in range(cfg.work.halo_exchanges_per_step):
                        for nbr, shared in neighbors[rank]:
                            yield from comm.send(
                                nbr, TAG_HALO, None,
                                nbytes=cfg.work.halo_bytes(shared),
                            )
                        for nbr, _ in neighbors[rank]:
                            yield from comm.recv(nbr, TAG_HALO)
                yield from comm.barrier()

                # ---- (2) grid motion ------------------------------------
                yield from comm.set_phase(PHASE_MOTION)
                if moves:
                    yield from comm.compute(
                        flops=cfg.work.motion_flops(own_pts)
                    )
                if rank == 0 or not shared_state:
                    # Shared state: rank 0 advances the one world every
                    # rank reads.  Private state (mp): every rank must
                    # advance its own copy — deterministic in absolute
                    # time, so all copies agree bit-for-bit.
                    world.advance((step + 1) * cfg.dt)
                yield from comm.barrier()

                # ---- (3) domain connectivity ----------------------------
                yield from comm.set_phase(PHASE_DCF)
                yield from comm.compute(
                    flops=cfg.work.holecut_flops_per_point * own_pts
                )
                dcf_world = DcfWorld(
                    grid_xyz=[g.xyz for g in world.grids],
                    grid_of_rank=grid_of_rank,
                    rank_boxes=rank_boxes,
                    ranks_of_grid=ranks_of_grid,
                    config=dcf_cfg,
                    work=cfg.work,
                )
                flat, pts = world.own_igbps(partition, rank)
                _, cstats = yield from dcf_rank_program(
                    comm, dcf_world, flat, pts, caches[rank]
                )
                stats_out.append(
                    StepStats(
                        step=step,
                        igbps_received=cstats.igbps_received,
                        search_steps=cstats.search_steps,
                        donors_found=cstats.donors_found,
                        orphans=cstats.orphans,
                    )
                )
                yield from comm.barrier()
            if shared_state:
                return stats_out
            # Private-state backends ship the rank's cache copy home so
            # the driver can merge this chunk's warm-start data.
            return stats_out, caches[rank]

        out = self.backend.run(
            cfg.machine.with_nodes(nprocs),
            [program] * nprocs,
            tracer=tracer,
            fault_plan=fault_plan,
            initial_clocks=clocks,
            initial_metrics=metrics,
            sanitizer=self.sanitizer,
        )
        if not shared_state:
            returns = []
            for ret in out.returns:
                stats, rank_cache = ret
                returns.append(stats)
                if cache is not None and rank_cache is not None:
                    cache.merge(
                        rank_cache,
                        base_hits=base_hits,
                        base_misses=base_misses,
                    )
            out.returns = returns
            # Bring the driver's own world copy up to the chunk end.
            world.advance((first_step + nsteps) * cfg.dt)
        return out


def resume_run(
    checkpoint,
    tracer=None,
    fault_plan=None,
    checkpoint_every: int | None = None,
    checkpoint_store=None,
    recovery_policy: RecoveryPolicy | None = None,
    sanitizer=None,
    backend: str | ExecutionBackend = "sim",
) -> RunResult:
    """Resume an OVERFLOW-D1 run from a checkpoint file/object.

    Convenience wrapper: reads the case config out of the checkpoint,
    builds the driver and continues.  Used by ``repro resume``.
    """
    if isinstance(checkpoint, (str, Path)):
        checkpoint = Checkpoint.load(checkpoint)
    cfg = pickle.loads(checkpoint.sections["config"])
    driver = OverflowD1(
        cfg,
        tracer=tracer,
        fault_plan=fault_plan,
        checkpoint_every=checkpoint_every,
        checkpoint_store=checkpoint_store,
        recovery_policy=recovery_policy,
        sanitizer=sanitizer,
        backend=backend,
    )
    return driver.resume(checkpoint)
