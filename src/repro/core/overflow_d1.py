"""The OVERFLOW-D1 performance driver.

Runs the paper's per-timestep loop on the simulated machine:

1. **flow solve** — each rank charges the work-model arithmetic for its
   subdomain and exchanges halo faces with its neighbours on the same
   component grid (one round per factored sweep direction);
2. **grid motion** — ranks of moving grids charge the rigid-transform
   update; the shared world state advances (new coordinates, holes cut,
   IGBPs identified);
3. **domain connectivity** — the real distributed DCF3D protocol
   (:mod:`repro.connectivity.dcf`) runs, producing per-rank received-
   IGBP counts I(p) and walk-step work.

Barriers separate the three modules, as in the paper ("barriers are put
in place to synchronize each of the solution modules").

Dynamic load balancing (Algorithm 2) happens between *epochs*: the
driver simulates ``lb_check_interval`` timesteps, inspects the
accumulated I(p), and — when f0 is finite and some processor exceeds it
— rebuilds the partition and continues.  Virtual time accumulates
across epochs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.connectivity.dcf import DcfConfig, DcfWorld, dcf_rank_program
from repro.connectivity.holecut import cut_holes
from repro.connectivity.igbp import find_igbps
from repro.connectivity.restart import RestartCache
from repro.core.config import CaseConfig
from repro.machine.scheduler import Simulator
from repro.obs.rollup import IgbpRollup, PhaseRollup
from repro.partition.assignment import Partition, build_partition
from repro.partition.dynamic_lb import DynamicRebalancer

TAG_HALO = 201

PHASE_FLOW = "overflow"
PHASE_MOTION = "motion"
PHASE_DCF = "dcf3d"


@dataclass
class StepStats:
    """Per-rank, per-step connectivity statistics."""

    step: int
    igbps_received: int
    search_steps: int
    donors_found: int
    orphans: int


@dataclass
class EpochResult:
    """One contiguous run at a fixed partition.

    All timing/counter data lives in the two :mod:`repro.obs` rollups;
    the former ad-hoc dict/array fields survive as derived properties.
    """

    partition: Partition
    first_step: int
    nsteps: int
    elapsed: float
    rollup: PhaseRollup     # per-rank/per-phase compute/comm/wait + flops
    igbp: IgbpRollup        # per-step, per-rank I(p)
    search_steps_total: int
    orphans_total: int

    @property
    def phase_totals(self) -> dict:
        """phase -> summed rank-seconds (derived from the rollup)."""
        return {p: self.rollup.phase_total(p) for p in self.rollup.phases()}

    @property
    def phase_max(self) -> dict:
        """phase -> max single-rank seconds (derived from the rollup)."""
        return {p: self.rollup.phase_max(p) for p in self.rollup.phases()}

    @property
    def total_flops(self) -> float:
        return self.rollup.total_flops()

    @property
    def igbp_per_rank_step(self) -> np.ndarray:
        """(nsteps, nprocs) I(p) matrix (derived from the IGBP rollup)."""
        return self.igbp.per_step()


@dataclass
class RunResult:
    """Merged outcome of a full OVERFLOW-D1 run."""

    case: str
    machine: str
    nprocs: int
    nsteps: int
    epochs: list[EpochResult] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return sum(e.elapsed for e in self.epochs)

    @property
    def time_per_step(self) -> float:
        return self.elapsed / self.nsteps

    def phase_total(self, phase: str) -> float:
        return sum(e.rollup.phase_total(phase) for e in self.epochs)

    @property
    def pct_dcf3d(self) -> float:
        """Percentage of total (rank-summed) time in the connectivity
        solution — the paper's '% Time in DCF3D' column."""
        total = sum(e.rollup.total_seconds() for e in self.epochs)
        if total == 0:
            return 0.0
        return 100.0 * self.phase_total(PHASE_DCF) / total

    @property
    def total_flops(self) -> float:
        return sum(e.rollup.total_flops() for e in self.epochs)

    @property
    def mflops_per_node(self) -> float:
        if self.elapsed == 0:
            return 0.0
        return self.total_flops / self.elapsed / self.nprocs / 1e6

    def phase_elapsed(self, phase: str) -> float:
        """Critical-path seconds of one phase (slowest rank per epoch)."""
        return sum(e.rollup.phase_max(phase) for e in self.epochs)

    @property
    def partition_history(self) -> list[tuple[int, tuple[int, ...]]]:
        return [(e.first_step, e.partition.procs_per_grid) for e in self.epochs]

    def rollup(self) -> PhaseRollup:
        """Merged per-rank/per-phase rollup over every epoch."""
        if not self.epochs:
            raise ValueError("run has no epochs")
        merged = PhaseRollup(self.nprocs)
        for e in self.epochs:
            merged.merge(e.rollup)
        return merged

    def igbp_rollup(self) -> IgbpRollup:
        """Merged I(p) series over every epoch.

        Note the merged window restarts whenever a repartition changed
        the rank count (see :meth:`repro.obs.rollup.IgbpRollup.record`).
        """
        merged = IgbpRollup()
        for e in self.epochs:
            merged.merge(e.igbp)
        return merged


class _WorldState:
    """Shared (read-mostly) overset system state, advanced by rank 0."""

    def __init__(self, config: CaseConfig):
        self.config = config
        self.reference = list(config.grids)
        self.grids = list(config.grids)
        self.iblanks = None
        self.igbp_sets = None
        self.advance(0.0)

    def advance(self, t: float) -> None:
        cfg = self.config
        grids = []
        for gi, ref in enumerate(self.reference):
            motion = cfg.motions.get(gi)
            if motion is None:
                grids.append(self.grids[gi] if t > 0.0 else ref)
            else:
                grids.append(ref.with_coordinates(motion.at(t).apply(ref.xyz)))
        self.grids = grids
        self.iblanks = cut_holes(grids)
        self.igbp_sets = [
            find_igbps(g, gi, self.iblanks[gi], cfg.fringe_layers)
            for gi, g in enumerate(grids)
        ]

    def own_igbps(self, partition: Partition, rank: int):
        """(flat ids, coordinates) of the IGBPs this rank owns."""
        gi = partition.grid_of_rank(rank)
        box = partition.subdomain_of(rank).box
        s = self.igbp_sets[gi]
        if s.count == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, self.grids[0].ndim)),
            )
        multi = np.stack(
            np.unravel_index(s.flat_indices, self.grids[gi].dims), axis=-1
        )
        mine = np.all((multi >= box.lo) & (multi < box.hi), axis=1)
        return s.flat_indices[mine], s.points[mine]


def _halo_neighbors(partition: Partition) -> list[list[tuple[int, int]]]:
    """Per rank: (neighbour rank, shared face points) on the same grid."""
    out: list[list[tuple[int, int]]] = [[] for _ in range(partition.nprocs)]
    for gi in range(partition.ngrids):
        ranks = partition.ranks_of_grid(gi)
        for a in ranks:
            for b in ranks:
                if b <= a:
                    continue
                shared = _shared_face(
                    partition.subdomain_of(a).box, partition.subdomain_of(b).box
                )
                if shared > 0:
                    out[a].append((b, shared))
                    out[b].append((a, shared))
    return out


def _shared_face(a, b) -> int:
    """Points on the face shared by two abutting boxes (0 if not)."""
    touch_axis = None
    overlap = 1
    for d in range(a.ndim):
        if a.hi[d] == b.lo[d] or b.hi[d] == a.lo[d]:
            if touch_axis is not None:
                return 0  # touch along two axes: edge, not face
            touch_axis = d
        else:
            lo = max(a.lo[d], b.lo[d])
            hi = min(a.hi[d], b.hi[d])
            if hi <= lo:
                return 0
            overlap *= hi - lo
    return overlap if touch_axis is not None else 0


class OverflowD1:
    """Run a :class:`CaseConfig` on N simulated nodes.

    Pass a :class:`repro.obs.SpanTracer` to record per-rank span events
    for the measured epochs (warm-up is excluded, matching the paper's
    statistics).  With ``tracer=None`` (default) nothing is recorded
    and the simulated timings are bit-identical.
    """

    def __init__(self, config: CaseConfig, tracer=None):
        self.config = config
        self.tracer = (
            tracer if tracer is not None and tracer.enabled else None
        )

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        cfg = self.config
        nprocs = cfg.machine.nodes
        partition = build_partition([g.dims for g in cfg.grids], nprocs)
        rebalancer = DynamicRebalancer(
            f0=cfg.f0, check_interval=cfg.lb_check_interval
        )
        # One cache shared by all ranks: restart data lives with the
        # IGBPs (keyed by receiver grid + point id), so it survives
        # repartitioning just as block data redistributed by a real
        # dynamic rebalance would.
        shared_cache = RestartCache() if cfg.use_restart else None
        caches = [shared_cache] * nprocs
        world = _WorldState(cfg)
        result = RunResult(
            case=cfg.name,
            machine=cfg.machine.name,
            nprocs=nprocs,
            nsteps=cfg.nsteps,
        )

        # Warm-up: the paper's statistics exclude preprocessing, and the
        # first connectivity solve (everything searched from scratch) is
        # exactly that; these steps warm the nth-level-restart caches
        # and their metrics are discarded.
        if cfg.warmup_steps:
            # Warm-up is never traced: the paper's statistics exclude it.
            self._run_epoch(world, partition, caches, 0, cfg.warmup_steps,
                            tracer=None)

        tracer = self.tracer
        step = cfg.warmup_steps
        last = cfg.warmup_steps + cfg.nsteps
        while step < last:
            remaining = last - step
            if math.isinf(cfg.f0):
                epoch_steps = remaining
            else:
                epoch_steps = min(cfg.lb_check_interval, remaining)
            if tracer is not None:
                tracer.mark(
                    0.0, "epoch",
                    first_step=step - cfg.warmup_steps,
                    nsteps=epoch_steps,
                    procs_per_grid=list(partition.procs_per_grid),
                )
            epoch = self._run_epoch(world, partition, caches, step,
                                    epoch_steps, tracer=tracer)
            result.epochs.append(epoch)
            rebalancer.record_epoch(epoch.igbp)
            step += epoch_steps
            if tracer is not None:
                tracer.advance(epoch.elapsed)
            new = rebalancer.maybe_rebalance(partition, step)
            if new is not None:
                partition = new
                if tracer is not None:
                    tracer.mark(
                        0.0, "rebalance",
                        step=step - cfg.warmup_steps,
                        procs_per_grid=list(partition.procs_per_grid),
                    )
        return result

    # ------------------------------------------------------------------

    def _run_epoch(
        self,
        world: _WorldState,
        partition: Partition,
        caches,
        first_step: int,
        nsteps: int,
        tracer=None,
    ) -> EpochResult:
        cfg = self.config
        nprocs = partition.nprocs
        neighbors = _halo_neighbors(partition)
        dcf_cfg = DcfConfig(
            search_lists=cfg.search_lists, use_restart=cfg.use_restart
        )
        grid_of_rank = [partition.grid_of_rank(r) for r in range(nprocs)]
        rank_boxes = [partition.subdomain_of(r).box for r in range(nprocs)]
        ranks_of_grid = {
            gi: partition.ranks_of_grid(gi) for gi in range(partition.ngrids)
        }

        from repro.grids.subdomain import interior_face_points

        def program(comm):
            rank = comm.rank
            gi = grid_of_rank[rank]
            grid0 = cfg.grids[gi]
            box = rank_boxes[rank]
            own_pts = box.npoints
            # Fraction of this subdomain's points in the halo-adjacent
            # strip (the part that must wait for neighbour data when
            # overlapping communication with computation).
            strip = min(
                0.9, interior_face_points(box, grid0.dims) / max(1, own_pts)
            )
            flow_flops = cfg.work.flow_flops(
                own_pts, grid0.viscous, grid0.turbulence, grid0.ndim
            )
            moves = gi in cfg.motions
            stats_out: list[StepStats] = []

            for s in range(nsteps):
                step = first_step + s
                # ---- (1) flow solve -------------------------------------
                yield from comm.set_phase(PHASE_FLOW)
                if cfg.overlap_halo:
                    # Section-5 latency hiding: inject halos, sweep the
                    # interior while they fly, then finish the strip.
                    for _ in range(cfg.work.halo_exchanges_per_step):
                        for nbr, shared in neighbors[rank]:
                            yield from comm.send(
                                nbr, TAG_HALO, None,
                                nbytes=cfg.work.halo_bytes(shared),
                            )
                        yield from comm.compute(
                            flops=flow_flops
                            * (1.0 - strip)
                            / cfg.work.halo_exchanges_per_step,
                            points_per_node=own_pts,
                        )
                        for nbr, _ in neighbors[rank]:
                            yield from comm.recv(nbr, TAG_HALO)
                        yield from comm.compute(
                            flops=flow_flops
                            * strip
                            / cfg.work.halo_exchanges_per_step,
                            points_per_node=own_pts,
                        )
                else:
                    yield from comm.compute(
                        flops=flow_flops, points_per_node=own_pts
                    )
                    for _ in range(cfg.work.halo_exchanges_per_step):
                        for nbr, shared in neighbors[rank]:
                            yield from comm.send(
                                nbr, TAG_HALO, None,
                                nbytes=cfg.work.halo_bytes(shared),
                            )
                        for nbr, _ in neighbors[rank]:
                            yield from comm.recv(nbr, TAG_HALO)
                yield from comm.barrier()

                # ---- (2) grid motion ------------------------------------
                yield from comm.set_phase(PHASE_MOTION)
                if moves:
                    yield from comm.compute(
                        flops=cfg.work.motion_flops(own_pts)
                    )
                if rank == 0:
                    world.advance((step + 1) * cfg.dt)
                yield from comm.barrier()

                # ---- (3) domain connectivity ----------------------------
                yield from comm.set_phase(PHASE_DCF)
                yield from comm.compute(
                    flops=cfg.work.holecut_flops_per_point * own_pts
                )
                dcf_world = DcfWorld(
                    grid_xyz=[g.xyz for g in world.grids],
                    grid_of_rank=grid_of_rank,
                    rank_boxes=rank_boxes,
                    ranks_of_grid=ranks_of_grid,
                    config=dcf_cfg,
                    work=cfg.work,
                )
                flat, pts = world.own_igbps(partition, rank)
                _, cstats = yield from dcf_rank_program(
                    comm, dcf_world, flat, pts, caches[rank]
                )
                stats_out.append(
                    StepStats(
                        step=step,
                        igbps_received=cstats.igbps_received,
                        search_steps=cstats.search_steps,
                        donors_found=cstats.donors_found,
                        orphans=cstats.orphans,
                    )
                )
                yield from comm.barrier()
            return stats_out

        sim = Simulator(cfg.machine.with_nodes(nprocs), tracer=tracer)
        sim.spawn_all(program)
        out = sim.run()

        igbp = IgbpRollup()
        per_step = np.zeros((nsteps, nprocs), dtype=np.int64)
        search_total = 0
        orphans_total = 0
        for rank, stats in enumerate(out.returns):
            for s, st in enumerate(stats):
                per_step[s, rank] = st.igbps_received
                search_total += st.search_steps
                orphans_total += st.orphans
        for s in range(nsteps):
            igbp.record(per_step[s])
        return EpochResult(
            partition=partition,
            first_step=first_step,
            nsteps=nsteps,
            elapsed=out.elapsed,
            rollup=PhaseRollup.from_metrics(out.metrics),
            igbp=igbp,
            search_steps_total=search_total,
            orphans_total=orphans_total,
        )
