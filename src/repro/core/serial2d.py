"""Overset2D: the real-physics serial driver (2-D).

A thin dimensional wrapper over :class:`repro.core.overset.OversetDriver`
— see that module for the coupled solution procedure ("the solution
proceeds by updating, at each step, the boundary conditions on each
grid with the interpolated data", paper section 2.0).
"""

from __future__ import annotations

from typing import Any

from repro.core.overset import ConnectivityReport, OversetDriver
from repro.grids.structured import CurvilinearGrid
from repro.solver.state import FlowConfig

__all__ = ["ConnectivityReport", "Overset2D"]


class Overset2D(OversetDriver):
    """Serial dynamic-overset driver over real 2-D flow solvers."""

    def __init__(
        self,
        grids: list[CurvilinearGrid],
        flow: FlowConfig,
        search_lists: dict[int, list[int]],
        **kw: Any,
    ) -> None:
        if grids and grids[0].ndim != 2:
            raise ValueError("Overset2D is 2-D only")
        super().__init__(grids, flow, search_lists, **kw)
