"""Minimal ASCII line charts for the speedup figures.

The environment has no plotting stack; these charts render the
Fig. 5/7/10/11 series directly in the terminal (and into
``benchmarks/results``).  Good enough to see who scales and who
plateaus — which is all the paper's figures convey.
"""

from __future__ import annotations

import math


def line_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Each series gets its own marker; axes are linear and shared.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("no data to plot")
    markers = "ox+*#@%&"
    xs = [p[0] for pts in series.values() for p in pts]
    ys = [p[1] for pts in series.values() for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, ch: str) -> None:
        cx = int(round((x - x0) / (x1 - x0) * (width - 1)))
        cy = int(round((y - y0) / (y1 - y0) * (height - 1)))
        grid[height - 1 - cy][cx] = ch

    for k, (name, pts) in enumerate(series.items()):
        mk = markers[k % len(markers)]
        # Linear interpolation between points for a continuous trace.
        spts = sorted(pts)
        for (xa, ya), (xb, yb) in zip(spts, spts[1:]):
            steps = max(
                2,
                int(abs(xb - xa) / (x1 - x0) * width * 2) + 1,
            )
            for s in range(steps + 1):
                t = s / steps
                put(xa + t * (xb - xa), ya + t * (yb - ya), ".")
        for x, y in spts:
            put(x, y, mk)

    lines = []
    if title:
        lines.append(title.center(width + 10))
    for r, row in enumerate(grid):
        yval = y1 - r * (y1 - y0) / (height - 1)
        lines.append(f"{yval:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    xaxis = f"{x0:<10.4g}{xlabel.center(width - 20)}{x1:>10.4g}"
    lines.append(" " * 10 + xaxis)
    legend = "   ".join(
        f"{markers[k % len(markers)]} {name}"
        for k, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    if ylabel:
        lines.insert(1 if title else 0, f"[y: {ylabel}]")
    return "\n".join(lines)


def timeline_chart(
    spans_by_rank: dict[int, list[tuple[float, float, str]]],
    t_end: float | None = None,
    width: int = 72,
    title: str = "",
) -> str:
    """Render per-rank labelled spans as a one-row-per-rank timeline.

    ``spans_by_rank`` maps rank -> [(t0, t1, label), ...]; each row is
    sampled at ``width`` uniform slots and shows the label occupying the
    slot's midpoint (blank = no recorded activity, i.e. the rank had
    already finished).  Labels are assigned single characters in
    first-seen order — the legend underneath decodes them.
    """
    if not spans_by_rank or all(not s for s in spans_by_rank.values()):
        raise ValueError("no spans to plot")
    if t_end is None:
        t_end = max(
            t1 for spans in spans_by_rank.values() for _, t1, _ in spans
        )
    if t_end <= 0:
        t_end = 1.0

    # Stable label -> marker assignment (first seen, across all ranks in
    # rank order so the legend is deterministic).
    markers: dict[str, str] = {}
    palette = "FMCDABEGHIJKLNOPQRSTUVWXYZ*#@+%"
    for rank in sorted(spans_by_rank):
        for _, _, label in spans_by_rank[rank]:
            if label not in markers:
                markers[label] = palette[len(markers) % len(palette)]

    lines = []
    if title:
        lines.append(title)
    for rank in sorted(spans_by_rank):
        spans = spans_by_rank[rank]
        row = [" "] * width
        for col in range(width):
            t = (col + 0.5) / width * t_end
            for t0, t1, label in spans:
                if t0 <= t < t1:
                    row[col] = markers[label]
                    break
        lines.append(f"rank {rank:>3d} |" + "".join(row) + "|")
    lines.append(" " * 9 + f"0{'':{max(0, width - 10)}s}{t_end:>9.4g}s")
    lines.append(
        " " * 9
        + "   ".join(f"{mk}={label}" for label, mk in markers.items())
    )
    return "\n".join(lines)


def speedup_chart(table_rows: list[dict], title: str = "") -> str:
    """Chart a :class:`repro.core.performance.PerformanceTable`'s rows
    in the layout of the paper's speedup figures: OVERFLOW, DCF3D and
    combined against the ideal line."""
    nodes = [r["nodes"] for r in table_rows]
    base = nodes[0]
    series = {
        "ideal": [(n, n / base) for n in nodes],
        "overflow": [(n, r["speedup_overflow"]) for n, r in zip(nodes, table_rows)],
        "combined": [(n, r["speedup"]) for n, r in zip(nodes, table_rows)],
        "dcf3d": [(n, r["speedup_dcf3d"]) for n, r in zip(nodes, table_rows)],
    }
    return line_chart(
        series, title=title, xlabel="processors", ylabel="parallel speedup"
    )
