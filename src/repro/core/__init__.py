"""OVERFLOW-D1: the bundled dynamic overset driver.

The paper bundles the parallel OVERFLOW flow solver, the SIXDOF motion
model, the parallel DCF3D connectivity code and the load-balancing
routines into a single code, OVERFLOW-D1, whose unsteady loop executes
three barrier-separated steps per timestep: (1) flow solve, (2) grid
motion, (3) domain connectivity.

Two drivers are provided:

* :class:`OverflowD1` (:mod:`overflow_d1`) — the *performance* driver:
  every rank runs the real distributed connectivity protocol on the
  simulated machine while the flow-solve arithmetic is charged through
  the calibrated work model; this is what regenerates the paper's
  tables and figures.
* :class:`Overset2D` (:mod:`serial2d`) — the *physics* driver: real
  2-D Navier-Stokes solves on every component grid with real hole
  cutting, donor search and fringe interpolation, for the examples.
"""

from repro.core.config import CaseConfig
from repro.core.overflow_d1 import (
    OverflowD1,
    RunResult,
    StepStats,
    resume_run,
)
from repro.core.overset import OversetDriver, Overset3D
from repro.core.serial2d import Overset2D
from repro.core.performance import (
    PerformanceTable,
    serial_time_per_step,
    speedup_table,
)

__all__ = [
    "CaseConfig",
    "OverflowD1",
    "RunResult",
    "StepStats",
    "resume_run",
    "Overset2D",
    "Overset3D",
    "OversetDriver",
    "PerformanceTable",
    "serial_time_per_step",
    "speedup_table",
]
