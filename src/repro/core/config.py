"""Case configuration for the OVERFLOW-D1 drivers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.grids.structured import CurvilinearGrid
from repro.machine.spec import MachineSpec
from repro.motion.prescribed import PrescribedMotion
from repro.solver.workmodel import DEFAULT_WORK_MODEL, WorkModel


@dataclass
class CaseConfig:
    """Everything needed to run one moving-body overset case.

    Parameters mirror the paper's experimental knobs:

    * ``f0`` — the dynamic load-balance factor of Algorithm 2
      (``math.inf`` keeps the static partition, the paper's default);
    * ``lb_check_interval`` — timesteps between Algorithm-2 checks;
    * ``search_lists`` — the user-provided hierarchical donor-grid
      lists ("the grids are listed in hierarchical manner", section 2.2);
    * ``fringe_layers`` — overset overlap depth in cells.
    """

    name: str
    grids: list[CurvilinearGrid]
    machine: MachineSpec
    search_lists: dict[int, list[int]]
    motions: dict[int, PrescribedMotion] = field(default_factory=dict)
    nsteps: int = 10
    dt: float = 0.01
    f0: float = math.inf
    lb_check_interval: int = 5
    fringe_layers: int = 1
    use_restart: bool = True
    warmup_steps: int = 1
    #: Latency hiding (paper section 5): start the sweep on interior
    #: points while halo messages are in flight, then finish the
    #: boundary strip — "effectively overlapping communication with
    #: computation".
    overlap_halo: bool = False
    work: WorkModel = field(default_factory=lambda: DEFAULT_WORK_MODEL)

    def __post_init__(self) -> None:
        n = len(self.grids)
        if n == 0:
            raise ValueError("case needs at least one grid")
        for gi, lst in self.search_lists.items():
            if not (0 <= gi < n):
                raise ValueError(f"search list for unknown grid {gi}")
            for d in lst:
                if not (0 <= d < n):
                    raise ValueError(f"search list entry {d} out of range")
                if d == gi:
                    raise ValueError(f"grid {gi} cannot donate to itself")
        for gi in self.motions:
            if not (0 <= gi < n):
                raise ValueError(f"motion for unknown grid {gi}")
        if self.nsteps < 1:
            raise ValueError("nsteps must be >= 1")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.warmup_steps < 0:
            raise ValueError("warmup_steps must be >= 0")

    @property
    def total_gridpoints(self) -> int:
        return sum(g.npoints for g in self.grids)

    @property
    def ndim(self) -> int:
        return self.grids[0].ndim
