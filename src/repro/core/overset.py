"""Dimension-generic serial overset driver (real physics).

Shared implementation behind :class:`repro.core.Overset2D` and
:class:`repro.core.Overset3D`: one flow solver per component grid,
rigid grid motion, hole cutting, hierarchical donor search with
nth-level restart, and multilinear fringe interpolation of the actual
conservative state between grids — the paper's coupled solution
procedure at example scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.connectivity.donorsearch import donor_search
from repro.connectivity.holecut import cut_holes
from repro.connectivity.igbp import find_igbps
from repro.connectivity.interpolation import interpolate
from repro.connectivity.restart import RestartCache
from repro.grids.structured import CurvilinearGrid
from repro.motion.prescribed import PrescribedMotion
from repro.solver.solver2d import Solver2D
from repro.solver.solver3d import Solver3D
from repro.solver.state import FlowConfig


@dataclass
class ConnectivityReport:
    """Serial connectivity outcome for one timestep."""

    igbps: int = 0
    donors_found: int = 0
    orphans: int = 0
    search_steps: int = 0


class OversetDriver:
    """Serial dynamic-overset driver over real flow solvers (2-D/3-D)."""

    def __init__(
        self,
        grids: list[CurvilinearGrid],
        flow: FlowConfig,
        search_lists: dict[int, list[int]],
        motions: dict[int, PrescribedMotion] | None = None,
        fringe_layers: int = 1,
        use_restart: bool = True,
    ) -> None:
        if not grids:
            raise ValueError("need at least one grid")
        ndim = grids[0].ndim
        if any(g.ndim != ndim for g in grids):
            raise ValueError("all grids must share one dimensionality")
        self.ndim = ndim
        self.nvar = 4 if ndim == 2 else 5
        solver_cls = Solver2D if ndim == 2 else Solver3D
        self.reference = list(grids)
        self.flow = flow
        self.search_lists = search_lists
        self.motions = motions or {}
        self.fringe_layers = fringe_layers
        self.solvers = [solver_cls(g, flow) for g in grids]
        self.restart = RestartCache() if use_restart else None
        self.time = 0.0
        self.step_count = 0
        self.last_report: ConnectivityReport | None = None
        self._refresh_connectivity()

    # ------------------------------------------------------------------

    @property
    def grids(self) -> list[CurvilinearGrid]:
        return [s.grid for s in self.solvers]

    def timestep(self) -> float:
        """Global timestep: the most restrictive component grid."""
        return min(s.timestep() for s in self.solvers)

    def step(self, dt: float | None = None) -> dict:
        """One coupled timestep: flow solve, move, reconnect."""
        if dt is None:
            dt = self.timestep()
        residuals = [s.step(dt) for s in self.solvers]
        self.time += dt
        self.step_count += 1
        moved = False
        for gi, motion in self.motions.items():
            xyz = motion.at(self.time).apply(self.reference[gi].xyz)
            self.solvers[gi].move_to(np.ascontiguousarray(xyz))
            moved = True
        if moved or self.step_count == 1:
            self._refresh_connectivity()
        self._exchange_fringe()
        return {
            "t": self.time,
            "dt": dt,
            "residuals": [r["residual"] for r in residuals],
            "connectivity": self.last_report,
        }

    # ------------------------------------------------------------------

    def _refresh_connectivity(self) -> None:
        grids = self.grids
        self.iblanks = cut_holes(grids)
        for s, ib in zip(self.solvers, self.iblanks):
            s.set_iblank(ib)
        self.igbp_sets = [
            find_igbps(g, gi, self.iblanks[gi], self.fringe_layers)
            for gi, g in enumerate(grids)
        ]
        report = ConnectivityReport()
        self.assignments: dict[int, dict] = {}
        for gi, s in enumerate(self.igbp_sets):
            report.igbps += s.count
            remaining = np.arange(s.count)
            n = s.count
            assign = {
                "donor_grid": np.full(n, -1, dtype=np.int64),
                "cells": np.zeros((n, self.ndim), dtype=np.int64),
                "fracs": np.zeros((n, self.ndim)),
            }
            for donor in self.search_lists.get(gi, []):
                if remaining.size == 0:
                    break
                hints = None
                if self.restart is not None:
                    hints = self.restart.hints(
                        gi, donor, s.flat_indices[remaining], ndim=self.ndim
                    )
                res = donor_search(
                    grids[donor].xyz, s.points[remaining], guesses=hints
                )
                report.search_steps += res.total_steps
                hit = res.found
                rows = remaining[hit]
                assign["donor_grid"][rows] = donor
                assign["cells"][rows] = res.cells[hit]
                assign["fracs"][rows] = res.fracs[hit]
                if self.restart is not None:
                    self.restart.store(
                        gi, donor, s.flat_indices[remaining],
                        res.cells, res.found,
                    )
                remaining = remaining[~hit]
            report.donors_found += n - remaining.size
            report.orphans += remaining.size
            self.assignments[gi] = assign
        self.last_report = report

    def _exchange_fringe(self) -> None:
        """Interpolate donor state onto every receiver's IGBPs."""
        for gi, s in enumerate(self.igbp_sets):
            if s.count == 0:
                continue
            assign = self.assignments[gi]
            values = np.zeros((s.count, self.nvar))
            filled = np.zeros(s.count, dtype=bool)
            for donor in sorted(set(assign["donor_grid"].tolist()) - {-1}):
                rows = np.nonzero(assign["donor_grid"] == donor)[0]
                values[rows] = interpolate(
                    self.solvers[donor].q,
                    assign["cells"][rows],
                    assign["fracs"][rows],
                )
                filled[rows] = True
            if filled.any():
                self.solvers[gi].set_fringe(
                    s.flat_indices[filled], values[filled]
                )

    # ------------------------------------------------------------------

    # -- checkpointing ---------------------------------------------------

    def snapshot(self) -> dict:
        """Fully independent, picklable snapshot of the coupled state.

        Captures solver state ``Q``, grid poses, the donor-restart
        memory and the current connectivity products, so
        :meth:`restore_state` resumes *exactly* where the snapshot was
        taken — the continued trajectory (including the final ``Q``) is
        bit-identical to an uninterrupted run, which the resilience
        checkpoint tests pin.  The dict pickles cleanly into a
        :class:`repro.resilience.checkpoint.Checkpoint` section.
        """
        import copy

        return {
            "time": self.time,
            "step_count": self.step_count,
            "q": [s.q.copy() for s in self.solvers],
            "solver_steps": [s.step_count for s in self.solvers],
            "xyz": [np.array(s.grid.xyz, copy=True) for s in self.solvers],
            "restart": copy.deepcopy(self.restart),
            "iblanks": [ib.copy() for ib in self.iblanks],
            "igbp_sets": copy.deepcopy(self.igbp_sets),
            "assignments": copy.deepcopy(self.assignments),
            "last_report": copy.deepcopy(self.last_report),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`snapshot` (no recomputation, exact resume)."""
        import copy

        self.time = float(state["time"])
        self.step_count = int(state["step_count"])
        for s, q, xyz, sc in zip(
            self.solvers, state["q"], state["xyz"], state["solver_steps"]
        ):
            s.move_to(np.ascontiguousarray(xyz))
            s.q = np.array(q, copy=True)
            s.step_count = int(sc)
        self.restart = copy.deepcopy(state["restart"])
        self.iblanks = [ib.copy() for ib in state["iblanks"]]
        for s, ib in zip(self.solvers, self.iblanks):
            s.set_iblank(ib)
        self.igbp_sets = copy.deepcopy(state["igbp_sets"])
        self.assignments = copy.deepcopy(state["assignments"])
        self.last_report = copy.deepcopy(state["last_report"])

    # ------------------------------------------------------------------

    def surface_forces(self, grid_index: int = 0, **kw) -> dict:
        return self.solvers[grid_index].surface_forces(**kw)

    def total_gridpoints(self) -> int:
        return sum(g.npoints for g in self.grids)

    def igbp_ratio(self) -> float:
        total = self.total_gridpoints()
        igbps = sum(s.count for s in self.igbp_sets)
        return igbps / total if total else 0.0


class Overset3D(OversetDriver):
    """Real-physics 3-D overset driver."""

    def __init__(
        self,
        grids: list[CurvilinearGrid],
        flow: FlowConfig,
        search_lists: dict[int, list[int]],
        **kw: Any,
    ) -> None:
        if grids and grids[0].ndim != 3:
            raise ValueError("Overset3D is 3-D only")
        super().__init__(grids, flow, search_lists, **kw)
