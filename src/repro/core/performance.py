"""Assembling the paper's performance tables from driver runs.

Each of Tables 1/3/4 reports, per node count: average Mflops/node,
parallel speedup (relative to the smallest partition tested), and the
percentage of time spent in DCF3D.  Figures 5/7/10/11 plot the speedup
of OVERFLOW, DCF3D and the combination separately.  This module turns a
set of :class:`repro.core.overflow_d1.RunResult` at different node
counts into those rows and series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.overflow_d1 import PHASE_DCF, PHASE_FLOW, RunResult


def serial_time_per_step(config) -> float:
    """Estimated time per step of the *serial* (single-processor) code
    on ``config.machine`` — the paper's Cray-YMP baseline in Table 6.

    One processor executes everything with no communication: flow-solve
    arithmetic on all gridpoints, grid motion, hole cutting, and the
    connectivity solve (request bookkeeping + donor service + a short
    warm-started walk per IGBP).
    """
    from repro.connectivity.holecut import cut_holes
    from repro.connectivity.igbp import find_igbps

    if config.machine.nodes != 1:
        raise ValueError("serial baseline wants a 1-node machine")
    work = config.work
    ndim = config.ndim
    flops = 0.0
    for g in config.grids:
        flops += work.flow_flops(g.npoints, g.viscous, g.turbulence, ndim)
        flops += work.holecut_flops_per_point * g.npoints
    for gi in config.motions:
        flops += work.motion_flops(config.grids[gi].npoints)
    iblanks = cut_holes(config.grids)
    igbps = sum(
        find_igbps(g, i, iblanks[i], config.fringe_layers).count
        for i, g in enumerate(config.grids)
    )
    per_igbp = (
        work.igbp_request_flops
        + work.igbp_service_flops
        + work.interp_flops_per_igbp
        + 2.0 * work.search_step_flops  # warm walk
    )
    flops += igbps * per_igbp
    return config.machine.compute_time(flops)


@dataclass
class PerformanceTable:
    """Rows of one performance table, in increasing node count."""

    case: str
    machine: str
    rows: list[dict] = field(default_factory=list)

    def headers(self) -> list[str]:
        return [
            "nodes",
            "gridpoints/node",
            "mflops/node",
            "speedup",
            "speedup_overflow",
            "speedup_dcf3d",
            "%dcf3d",
            "time/step(s)",
        ]

    def format(self) -> str:
        out = [f"{self.case} on {self.machine}"]
        hdr = self.headers()
        out.append("  ".join(f"{h:>16s}" for h in hdr))
        for r in self.rows:
            out.append(
                "  ".join(
                    f"{r[h]:>16.3f}" if isinstance(r[h], float) else f"{r[h]:>16d}"
                    for h in hdr
                )
            )
        return "\n".join(out)

    def to_csv(self) -> str:
        """CSV of the table — the raw series behind the paper's speedup
        figures (one row per node count; plot speedup_overflow,
        speedup_dcf3d and speedup against nodes for Figs. 5/7/10/11)."""
        hdr = self.headers()
        lines = [",".join(h.replace(" ", "_") for h in hdr)]
        for r in self.rows:
            lines.append(
                ",".join(
                    f"{r[h]:.6g}" if isinstance(r[h], float) else str(r[h])
                    for h in hdr
                )
            )
        return "\n".join(lines)


def speedup_table(
    runs: list[RunResult], total_gridpoints: int
) -> PerformanceTable:
    """Build the paper's table/figure content from runs at several node
    counts.  Speedups are relative to the smallest run, scaled by its
    node count ratio as in the paper (speedup of the base row = 1)."""
    if not runs:
        raise ValueError("no runs")
    runs = sorted(runs, key=lambda r: r.nprocs)
    base = runs[0]
    base_time = base.time_per_step
    base_flow = base.phase_elapsed(PHASE_FLOW) / base.nsteps
    base_dcf = base.phase_elapsed(PHASE_DCF) / base.nsteps
    table = PerformanceTable(case=base.case, machine=base.machine)
    for r in runs:
        flow_t = r.phase_elapsed(PHASE_FLOW) / r.nsteps
        dcf_t = r.phase_elapsed(PHASE_DCF) / r.nsteps
        table.rows.append(
            {
                "nodes": r.nprocs,
                "gridpoints/node": float(total_gridpoints / r.nprocs),
                "mflops/node": r.mflops_per_node,
                "speedup": base_time / r.time_per_step,
                "speedup_overflow": base_flow / flow_t if flow_t else float("nan"),
                "speedup_dcf3d": base_dcf / dcf_t if dcf_t else float("nan"),
                "%dcf3d": r.pct_dcf3d,
                "time/step(s)": r.time_per_step,
            }
        )
    return table
