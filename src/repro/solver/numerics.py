"""Low-level numerical kernels: vectorised tridiagonal solves and
difference operators.

The factored implicit scheme reduces each sweep to many independent
tridiagonal systems along grid lines; :func:`tridiag_solve` runs the
Thomas algorithm across all lines at once (lines on the last axis,
batched over the leading axes) — the vectorisation pattern the HPC
guides prescribe instead of Python-level loops.
"""

from __future__ import annotations

import numpy as np


def tridiag_solve(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray
) -> np.ndarray:
    """Solve batched tridiagonal systems with the Thomas algorithm.

    ``a`` (sub-), ``b`` (main), ``c`` (super-diagonal) and ``d`` (right
    hand side) all have shape (..., n); systems run along the last axis.
    ``a[..., 0]`` and ``c[..., -1]`` are ignored.  No pivoting: callers
    must supply diagonally dominant systems (the implicit operators here
    always are).
    """
    n = d.shape[-1]
    if n < 2:
        return d / b
    cp = np.empty_like(d)
    dp = np.empty_like(d)
    cp[..., 0] = c[..., 0] / b[..., 0]
    dp[..., 0] = d[..., 0] / b[..., 0]
    for k in range(1, n):
        denom = b[..., k] - a[..., k] * cp[..., k - 1]
        cp[..., k] = c[..., k] / denom
        dp[..., k] = (d[..., k] - a[..., k] * dp[..., k - 1]) / denom
    x = np.empty_like(d)
    x[..., -1] = dp[..., -1]
    for k in range(n - 2, -1, -1):
        x[..., k] = dp[..., k] - cp[..., k] * x[..., k + 1]
    return x


def tridiag_forward_chunk(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
    cp_prev: np.ndarray | None = None,
    dp_prev: np.ndarray | None = None,
):
    """Thomas forward elimination over one chunk of a longer system.

    ``cp_prev``/``dp_prev`` are the modified coefficients of the row
    immediately *before* this chunk (None for the first chunk).  Returns
    the full (cp, dp) arrays for the chunk — its last entries seed the
    next chunk downstream.  This is the per-processor piece of the
    pipelined distributed tridiagonal solve that keeps the factored
    implicit operator exact across subdomain boundaries ("implicitness
    is maintained across the subdomains", paper section 2.1).
    """
    n = d.shape[-1]
    cp = np.empty_like(d)
    dp = np.empty_like(d)
    if cp_prev is None:
        cp[..., 0] = c[..., 0] / b[..., 0]
        dp[..., 0] = d[..., 0] / b[..., 0]
    else:
        denom = b[..., 0] - a[..., 0] * cp_prev
        cp[..., 0] = c[..., 0] / denom
        dp[..., 0] = (d[..., 0] - a[..., 0] * dp_prev) / denom
    for k in range(1, n):
        denom = b[..., k] - a[..., k] * cp[..., k - 1]
        cp[..., k] = c[..., k] / denom
        dp[..., k] = (d[..., k] - a[..., k] * dp[..., k - 1]) / denom
    return cp, dp


def tridiag_backward_chunk(
    cp: np.ndarray,
    dp: np.ndarray,
    x_next: np.ndarray | None = None,
) -> np.ndarray:
    """Thomas back substitution over one chunk.

    ``x_next`` is the solution of the row immediately *after* this chunk
    (None for the last chunk).  Returns the chunk solution; its first
    entries seed the next chunk upstream.
    """
    n = dp.shape[-1]
    x = np.empty_like(dp)
    if x_next is None:
        x[..., -1] = dp[..., -1]
    else:
        x[..., -1] = dp[..., -1] - cp[..., -1] * x_next
    for k in range(n - 2, -1, -1):
        x[..., k] = dp[..., k] - cp[..., k] * x[..., k + 1]
    return x


def diff_central(f: np.ndarray, axis: int) -> np.ndarray:
    """Second-order central difference with one-sided ends, unit spacing."""
    f = np.asarray(f)
    out = np.empty_like(f, dtype=float)
    sl = [slice(None)] * f.ndim

    def at(s):
        sl2 = list(sl)
        sl2[axis] = s
        return tuple(sl2)

    out[at(slice(1, -1))] = 0.5 * (f[at(slice(2, None))] - f[at(slice(0, -2))])
    out[at(0)] = f[at(1)] - f[at(0)]
    out[at(-1)] = f[at(-1)] - f[at(-2)]
    return out


def second_difference(f: np.ndarray, axis: int) -> np.ndarray:
    """delta^2 f with zero at the ends (Dirichlet-style)."""
    f = np.asarray(f)
    out = np.zeros_like(f, dtype=float)
    sl = [slice(None)] * f.ndim

    def at(s):
        sl2 = list(sl)
        sl2[axis] = s
        return tuple(sl2)

    out[at(slice(1, -1))] = (
        f[at(slice(2, None))] - 2.0 * f[at(slice(1, -1))] + f[at(slice(0, -2))]
    )
    return out
