"""Physical boundary conditions for the component-grid solver.

Intergrid (overset) boundaries are not applied here: the OVERFLOW-D1
driver injects interpolated donor values through
:meth:`repro.solver.solver2d.Solver2D.set_fringe`.  This module handles
the physical kinds: solid wall, farfield, and the O-grid periodic seam.
"""

from __future__ import annotations

import numpy as np

from repro.solver.state import conservative, primitive


def apply_wall(
    q: np.ndarray,
    face: str,
    viscous: bool,
    gamma: float,
    normals: np.ndarray | None = None,
) -> None:
    """Solid wall on a j face, in place.

    Viscous grids get no-slip (zero velocity); inviscid grids get a slip
    (tangency) wall by projecting out the wall-normal velocity
    component, which requires the unit wall ``normals`` of shape
    (ni, 2).  Density and pressure are first-order extrapolated from the
    interior (zero normal gradient).
    """
    if face not in ("jmin", "jmax"):
        raise ValueError(f"wall supported on j faces only, got {face}")
    wall = 0 if face == "jmin" else -1
    interior = 1 if face == "jmin" else -2
    rho_i, u_i, v_i, p_i = primitive(q[:, interior], gamma)
    if viscous:
        u_w = np.zeros_like(u_i)
        v_w = np.zeros_like(v_i)
    else:
        if normals is None:
            raise ValueError("inviscid slip wall needs wall normals")
        vn = u_i * normals[:, 0] + v_i * normals[:, 1]
        u_w = u_i - vn * normals[:, 0]
        v_w = v_i - vn * normals[:, 1]
    q[:, wall] = conservative(rho_i, u_w, v_w, p_i, gamma)


def wall_normals(xyz: np.ndarray, face: str) -> np.ndarray:
    """Unit surface normals of a j-face wall, shape (ni, 2), oriented
    into the fluid.

    The normal is perpendicular to the wall tangent (central-differenced
    along i), signed so it points toward the first off-wall grid line.
    """
    if face == "jmin":
        wall = xyz[:, 0]
        off = xyz[:, 1]
    elif face == "jmax":
        wall = xyz[:, -1]
        off = xyz[:, -2]
    else:
        raise ValueError(f"wall supported on j faces only, got {face}")
    tangent = np.empty_like(wall)
    tangent[1:-1] = wall[2:] - wall[:-2]
    tangent[0] = wall[1] - wall[0]
    tangent[-1] = wall[-1] - wall[-2]
    n = np.stack([tangent[:, 1], -tangent[:, 0]], axis=-1)
    # Orient toward the fluid side.
    sign = np.sign(np.einsum("ij,ij->i", n, off - wall))
    n *= np.where(sign == 0, 1.0, sign)[:, None]
    norm = np.linalg.norm(n, axis=-1, keepdims=True)
    return n / np.maximum(norm, 1e-300)


_FACE_AXIS = {"i": 0, "j": 1, "k": 2}


def face_slicer(face: str, ndim: int, pos: int | None = None):
    """Indexing tuple selecting one logical face of an (ndim+1)-D state
    array; ``pos`` overrides the layer (default: the face itself)."""
    try:
        axis = _FACE_AXIS[face[0]]
    except (KeyError, IndexError):
        raise ValueError(f"unknown face {face}")
    if axis >= ndim or not (face.endswith("min") or face.endswith("max")):
        raise ValueError(f"unknown face {face}")
    if pos is None:
        pos = 0 if face.endswith("min") else -1
    sl: list = [slice(None)] * ndim
    sl[axis] = pos
    return tuple(sl)


def apply_farfield(q: np.ndarray, face: str, qinf: np.ndarray) -> None:
    """Freestream Dirichlet condition on one face (2-D or 3-D state
    arrays).  In place.

    The paper's background grids extend several chords from the body;
    fixing freestream there is the standard simple treatment.
    """
    q[face_slicer(face, q.ndim - 1)] = qinf


def apply_periodic_seam(q: np.ndarray, axis: int = 0) -> None:
    """O-grid seam: the first and last layers along ``axis`` are the
    same physical points; keep them identical (average enforces
    symmetry).  In place."""
    work = np.moveaxis(q, axis, 0)
    avg = 0.5 * (work[0] + work[-1])
    work[0] = avg
    work[-1] = avg


def wrap_periodic(arr: np.ndarray, ghosts: int = 2, axis: int = 0) -> np.ndarray:
    """Pad a periodic node array with wrap ghosts along ``axis``.

    The seam point is stored twice (layer 0 == layer n-1, period
    P = n-1), so the left ghosts replicate layers P-ghosts .. P-1 and
    the right ghosts replicate layers 1 .. ghosts.
    """
    if arr.shape[axis] < ghosts + 2:
        raise ValueError("array too short to wrap")
    work = np.moveaxis(arr, axis, 0)
    p = work.shape[0] - 1
    left = work[p - ghosts : p]
    right = work[1 : 1 + ghosts]
    out = np.concatenate([left, work, right], axis=0)
    return np.ascontiguousarray(np.moveaxis(out, 0, axis))


def unwrap_periodic(arr: np.ndarray, ghosts: int = 2, axis: int = 0) -> np.ndarray:
    """Inverse of :func:`wrap_periodic` (drops the ghost layers)."""
    sl: list = [slice(None)] * arr.ndim
    sl[axis] = slice(ghosts, -ghosts)
    return arr[tuple(sl)]
