"""3-D inviscid curvilinear fluxes (central + JST dissipation).

With the symmetric conservative metrics of
:mod:`repro.grids.gridmetrics3d`, the transformed Euler equations are

    d(J Q)/dt + sum_d d(Fhat_d)/d(xi_d) = 0,
    Fhat_d = khat_x F + khat_y G + khat_z H,   khat = J grad(xi_d),

and the discrete GCL guarantees exact freestream preservation with the
same central differencing used in 2-D.  The JST machinery
(:func:`repro.solver.flux.dissipation`, pressure switch) is
dimension-generic and reused directly.
"""

from __future__ import annotations

import numpy as np

from repro.grids.gridmetrics3d import Metrics3D
from repro.solver.flux import dissipation
from repro.solver.numerics import diff_central
from repro.solver.state import primitive3d


def physical_fluxes3d(q: np.ndarray, gamma: float):
    """Return (F, G, H) of shape (ni, nj, nk, 5)."""
    rho, u, v, w, p = primitive3d(q, gamma)
    e = q[..., 4]
    F = np.stack(
        [rho * u, rho * u * u + p, rho * u * v, rho * u * w, (e + p) * u],
        axis=-1,
    )
    G = np.stack(
        [rho * v, rho * u * v, rho * v * v + p, rho * v * w, (e + p) * v],
        axis=-1,
    )
    H = np.stack(
        [rho * w, rho * u * w, rho * v * w, rho * w * w + p, (e + p) * w],
        axis=-1,
    )
    return F, G, H


def spectral_radii3d(q: np.ndarray, m: Metrics3D, gamma: float):
    """Directional spectral radii (J-scaled), one array per direction."""
    rho, u, v, w, p = primitive3d(q, gamma)
    c = np.sqrt(gamma * p / rho)
    vel = np.stack([u, v, w], axis=-1)
    out = []
    for d in range(3):
        k = m.direction(d)
        ucontra = np.einsum("...i,...i->...", k, vel)
        norm = np.linalg.norm(k, axis=-1)
        out.append(np.abs(ucontra) + c * norm)
    return out


def inviscid_residual3d(
    q: np.ndarray, m: Metrics3D, gamma: float, k2: float, k4: float
) -> np.ndarray:
    """R = sum_d d(Fhat_d)/d(xi_d) - sum_d D_d  (dQ/dt = -R / J)."""
    F, G, H = physical_fluxes3d(q, gamma)
    r = np.zeros_like(q)
    for d in range(3):
        k = m.direction(d)
        fhat = (
            k[..., 0:1] * F + k[..., 1:2] * G + k[..., 2:3] * H
        )
        r += diff_central(fhat, axis=d)
    _, _, _, _, p = primitive3d(q, gamma)
    lam = spectral_radii3d(q, m, gamma)
    for d in range(3):
        r -= dissipation(q, p, lam[d], axis=d, k2=k2, k4=k4)
    return r
