"""Per-component-grid 3-D flow solver.

The 3-D counterpart of :class:`repro.solver.solver2d.Solver2D`:
Euler (optionally laminar thin-layer viscous) on a 3-D curvilinear
component grid, marched with the same factored implicit update — three
batched tridiagonal sweeps per step.  Supports the boundary inventory
the 3-D case grids use: farfield, overset (external fringe injection),
one periodic index direction, and walls on any face (no-slip viscous or
metric-normal tangency).  The Baldwin-Lomax model is 2-D-only here; the
performance study charges its cost through the work model.

This is the "real physics" path for the paper's 3-D geometries at
example scale — the benchmark tables use the calibrated work model
instead (DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np

from repro.grids.gridmetrics3d import metrics3d
from repro.grids.structured import CurvilinearGrid
from repro.solver import boundary as bc
from repro.solver.adi import implicit_sweep
from repro.solver.flux3d import inviscid_residual3d, spectral_radii3d
from repro.solver.state import (
    FlowConfig,
    conservative3d,
    primitive3d,
    sanity_check,
)
from repro.solver.viscous import laminar_viscosity

_GHOSTS = 2
_AXIS = {"i": 0, "j": 1, "k": 2}


class Solver3D:
    """Implicit compressible flow solver on one 3-D curvilinear grid."""

    def __init__(self, grid: CurvilinearGrid, config: FlowConfig):
        if grid.ndim != 3:
            raise ValueError("Solver3D needs a 3-D grid")
        if grid.turbulence:
            raise NotImplementedError(
                "Baldwin-Lomax is implemented for the 2-D solver only; "
                "3-D turbulent work is charged via the work model"
            )
        self.grid = grid
        self.config = config
        self.periodic_axis = self._periodic_axis(grid)
        self._setup_geometry(grid.xyz)
        qinf = config.freestream3d()
        self.q = np.broadcast_to(qinf, grid.dims + (5,)).copy()
        self.qinf = qinf
        self.iblank = np.ones(grid.dims, dtype=np.int8)
        self._frozen = qinf.copy()
        self.mu_laminar = (
            laminar_viscosity(config.mach, config.reynolds)
            if grid.viscous
            else 0.0
        )
        self.step_count = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _periodic_axis(grid: CurvilinearGrid) -> int | None:
        axes = {
            _AXIS[b.face[0]]
            for b in grid.boundaries
            if b.kind == "periodic"
        }
        if not axes:
            return None
        if len(axes) > 1:
            raise ValueError("only one periodic direction is supported")
        return axes.pop()

    def _setup_geometry(self, xyz: np.ndarray) -> None:
        self.xyz = np.ascontiguousarray(xyz)
        padded = self._pad(self.xyz)
        self.metrics = metrics3d(padded)
        self._wall_normals = {
            b.face: self._face_normals(b.face)
            for b in self.grid.boundaries
            if b.kind == "wall"
        }

    def _face_normals(self, face: str) -> np.ndarray:
        """Unit normals of a wall face, oriented into the fluid."""
        ndim = 3
        wall = self.xyz[bc.face_slicer(face, ndim)]
        off_pos = 1 if face.endswith("min") else -2
        off = self.xyz[bc.face_slicer(face, ndim, pos=off_pos)]
        # Surface tangents: the face array keeps the two in-face index
        # directions as its leading axes.
        t1 = np.gradient(wall, axis=0, edge_order=1)
        t2 = np.gradient(wall, axis=1, edge_order=1)
        n = np.cross(t1, t2)
        sign = np.sign(np.einsum("...i,...i->...", n, off - wall))
        n *= np.where(sign == 0, 1.0, sign)[..., None]
        norm = np.linalg.norm(n, axis=-1, keepdims=True)
        return n / np.maximum(norm, 1e-300)

    def _pad(self, arr: np.ndarray) -> np.ndarray:
        if self.periodic_axis is None:
            return arr
        return bc.wrap_periodic(arr, _GHOSTS, axis=self.periodic_axis)

    def _unpad(self, arr: np.ndarray) -> np.ndarray:
        if self.periodic_axis is None:
            return arr
        return bc.unwrap_periodic(arr, _GHOSTS, axis=self.periodic_axis)

    def move_to(self, xyz: np.ndarray) -> None:
        """Update node coordinates after rigid grid motion."""
        if xyz.shape != self.grid.xyz.shape:
            raise ValueError("moving a grid cannot change its shape")
        self.grid = self.grid.with_coordinates(xyz)
        self._setup_geometry(xyz)

    # ------------------------------------------------------------------

    def timestep(self) -> float:
        g = self.config.gas.gamma
        q = self._pad(self.q)
        lam = spectral_radii3d(q, self.metrics, g)
        dt_local = (
            self.config.cfl
            * self.metrics.jac_abs
            / (lam[0] + lam[1] + lam[2] + 1e-300)
        )
        return float(dt_local.min())

    def step(self, dt: float | None = None) -> dict:
        cfg = self.config
        g = cfg.gas.gamma
        if dt is None:
            dt = self.timestep()
        q = self._pad(self.q)
        m = self.metrics
        r = inviscid_residual3d(q, m, g, cfg.k2, cfg.k4)
        if self.grid.viscous:
            r -= self._thin_layer_viscous(q)

        rhs = -dt * r / m.jac[..., None]
        lam = spectral_radii3d(q, m, g)
        dq = rhs
        for d in range(3):
            dq = implicit_sweep(dq, dt * lam[d] / m.jac_abs, axis=d)
        dq = self._unpad(dq)

        active = (self.iblank == 1)[..., None]
        self.q += np.where(active, dq, 0.0)
        self.q[self.iblank == 0] = self._frozen
        self._apply_physical_bcs()
        sanity_check(self.q, g, where=f"grid {self.grid.name!r}")
        self.step_count += 1
        res = float(np.sqrt(np.mean(dq[..., 0] ** 2))) / max(dt, 1e-300)
        return {"dt": dt, "residual": res}

    # ------------------------------------------------------------------

    def _thin_layer_viscous(self, q: np.ndarray) -> np.ndarray:
        """Thin-layer shear terms along the wall-normal axis of the
        first wall face (zero when the grid has no wall)."""
        walls = self.grid.wall_faces()
        if not walls:
            return np.zeros_like(q)
        axis = _AXIS[walls[0].face[0]]
        g = self.config.gas.gamma
        rho, u, v, w, p = primitive3d(q, g)
        c2 = g * p / rho
        k = self.metrics.direction(axis)
        phi = np.einsum("...i,...i->...", k, k) / np.maximum(
            self.metrics.jac_abs, 1e-300
        )
        kappa = 1.0 / (self.config.gas.prandtl * (g - 1.0))
        mu = self.mu_laminar

        def half(f):
            lo = np.moveaxis(f, axis, 0)
            return 0.5 * (lo[:-1] + lo[1:])

        def diff(f):
            lo = np.moveaxis(f, axis, 0)
            return lo[1:] - lo[:-1]

        coef = mu * half(phi)
        du, dv, dw, dc2 = diff(u), diff(v), diff(w), diff(c2)
        uh, vh, wh = half(u), half(v), half(w)
        s = np.zeros(du.shape + (5,), dtype=float)
        s[..., 1] = coef * du
        s[..., 2] = coef * dv
        s[..., 3] = coef * dw
        s[..., 4] = coef * (
            uh * du + vh * dv + wh * dw + kappa * dc2
        )
        out_m = np.zeros(np.moveaxis(q, axis, 0).shape, dtype=float)
        out_m[1:-1] = s[1:] - s[:-1]
        return np.moveaxis(out_m, 0, axis)

    # ------------------------------------------------------------------

    def _apply_physical_bcs(self) -> None:
        g = self.config.gas.gamma
        for b in self.grid.boundaries:
            if b.kind == "farfield":
                bc.apply_farfield(self.q, b.face, self.qinf)
            elif b.kind == "wall":
                self._apply_wall(b.face)
        if self.periodic_axis is not None:
            bc.apply_periodic_seam(self.q, axis=self.periodic_axis)

    def _apply_wall(self, face: str) -> None:
        g = self.config.gas.gamma
        ndim = 3
        interior_pos = 1 if face.endswith("min") else -2
        q_i = self.q[bc.face_slicer(face, ndim, pos=interior_pos)]
        rho, u, v, w, p = primitive3d(q_i, g)
        if self.grid.viscous:
            u = np.zeros_like(u)
            v = np.zeros_like(v)
            w = np.zeros_like(w)
        else:
            n = self._wall_normals[face]
            vn = u * n[..., 0] + v * n[..., 1] + w * n[..., 2]
            u = u - vn * n[..., 0]
            v = v - vn * n[..., 1]
            w = w - vn * n[..., 2]
        self.q[bc.face_slicer(face, ndim)] = conservative3d(
            rho, u, v, w, p, g
        )

    # ------------------------------------------------------------------
    # driver interface (mirrors Solver2D)
    # ------------------------------------------------------------------

    def set_fringe(self, flat_indices: np.ndarray, values: np.ndarray) -> None:
        q_flat = self.q.reshape(-1, 5)
        q_flat[np.asarray(flat_indices, dtype=np.int64)] = values

    def set_iblank(self, iblank: np.ndarray) -> None:
        iblank = np.asarray(iblank, dtype=np.int8)
        if iblank.shape != self.grid.dims:
            raise ValueError("iblank shape mismatch")
        self.iblank = iblank

    def surface_forces(self, face: str | None = None) -> dict:
        """Pressure force on a wall face (default: the first wall)."""
        walls = self.grid.wall_faces()
        if not walls:
            raise ValueError(f"grid {self.grid.name!r} has no wall")
        face = face or walls[0].face
        g = self.config.gas.gamma
        _, _, _, _, p = primitive3d(self.q, g)
        p_wall = p[bc.face_slicer(face, 3)]
        wall_xyz = self.xyz[bc.face_slicer(face, 3)]
        # Face-cell area vectors from corner cross products.
        d1 = wall_xyz[1:, :-1] - wall_xyz[:-1, :-1]
        d2 = wall_xyz[:-1, 1:] - wall_xyz[:-1, :-1]
        area = np.cross(d1, d2)
        n = self._wall_normals[face][:-1, :-1]
        # Orient the area vectors along the into-body direction (-n).
        sign = np.sign(np.einsum("...i,...i->...", area, n))
        area *= -np.where(sign == 0, 1.0, sign)[..., None]
        p_mid = 0.25 * (
            p_wall[:-1, :-1] + p_wall[1:, :-1]
            + p_wall[:-1, 1:] + p_wall[1:, 1:]
        )
        force = (p_mid[..., None] * area).reshape(-1, 3).sum(axis=0)
        return {"fx": float(force[0]), "fy": float(force[1]),
                "fz": float(force[2])}
