"""Fine-grained data-parallel 2-D flow solve on the simulated machine.

The paper's OVERFLOW implementation uses "both coarse-grained
parallelism between grids and fine-grained parallelism within grids"
(section 2.1, Fig. 2): a grid's index space is split into subdomains,
halo faces are exchanged per sweep, and — crucially — "implicitness is
maintained across the subdomains on each component so the solution
convergence characteristics remain unchanged with different numbers of
processors".

This module realises that within-grid level for the 2-D solver: each
SimMPI rank owns one index-space box of a single grid, exchanges
two-deep halo layers (the JST stencil width), and the factored implicit
sweeps run as *pipelined distributed Thomas* solves
(:func:`repro.solver.numerics.tridiag_forward_chunk` /
``tridiag_backward_chunk``): forward elimination flows downstream
across each rank row, back substitution upstream, so the tridiagonal
systems are exact — not subdomain-truncated.  The partition-
independence claim is therefore *testable*: the distributed update
equals the serial :class:`repro.solver.solver2d.Solver2D` update to
round-off for any processor count
(``tests/solver/test_parallel2d.py``).

Limitations: physical (non-periodic) boundaries only — O-grids run
through the serial solver.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ExecutionBackend, get_backend
from repro.grids.gridmetrics import metrics2d
from repro.grids.structured import CurvilinearGrid
from repro.machine.spec import MachineSpec
from repro.solver import boundary as bc
from repro.solver.flux import inviscid_residual, spectral_radii
from repro.solver.numerics import (
    tridiag_backward_chunk,
    tridiag_forward_chunk,
)
from repro.solver.state import FlowConfig, sanity_check
from repro.solver.viscous import laminar_viscosity, viscous_residual
from repro.solver.workmodel import DEFAULT_WORK_MODEL

GHOSTS = 2
TAG_HALO = 401
TAG_PIPE_FWD = 402
TAG_PIPE_BWD = 403


def rank_lattice(dims: tuple[int, int], nparts: int) -> tuple[int, int]:
    """Split ``nparts`` into a (px, py) lattice minimising halo area."""
    best = None
    for px in range(1, nparts + 1):
        if nparts % px:
            continue
        py = nparts // px
        if dims[0] // px < GHOSTS + 1 or dims[1] // py < GHOSTS + 1:
            continue
        halo = (px - 1) * dims[1] + (py - 1) * dims[0]
        if best is None or halo < best[0]:
            best = (halo, px, py)
    if best is None:
        raise ValueError(
            f"cannot lay {nparts} ranks over a {dims} grid with "
            f"{GHOSTS}-deep halos"
        )
    return best[1], best[2]


def _splits(n: int, parts: int) -> list[tuple[int, int]]:
    """Near-equal contiguous ranges covering [0, n)."""
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, start + size))
        start += size
    return out


class ParallelSolver2D:
    """One component grid advanced by ``machine.nodes`` ranks."""

    def __init__(
        self,
        grid: CurvilinearGrid,
        config: FlowConfig,
        machine: MachineSpec,
        backend: str | ExecutionBackend = "sim",
    ):
        if grid.ndim != 2:
            raise ValueError("ParallelSolver2D needs a 2-D grid")
        if any(b.kind == "periodic" for b in grid.boundaries):
            raise ValueError("periodic grids are handled by the serial solver")
        self.grid = grid
        self.config = config
        self.machine = machine
        self.backend = (
            backend
            if isinstance(backend, ExecutionBackend)
            else get_backend(backend)
        )
        self.px, self.py = rank_lattice(grid.dims, machine.nodes)
        self.ix = _splits(grid.dims[0], self.px)
        self.jy = _splits(grid.dims[1], self.py)

    # ------------------------------------------------------------------

    def _coords(self, rank: int) -> tuple[int, int]:
        return rank % self.px, rank // self.px

    def _owned(self, rank: int):
        cx, cy = self._coords(rank)
        return self.ix[cx], self.jy[cy]

    # ------------------------------------------------------------------

    def run(self, nsteps: int, dt: float):
        """Advance ``nsteps`` of size ``dt``; returns (q_global, result).

        ``result`` is a :class:`repro.backend.BackendResult`; under the
        default ``sim`` backend its ``elapsed`` is modeled virtual time,
        under ``mp`` it is measured wall time (physics identical).
        """
        grid, cfg = self.grid, self.config
        qinf = cfg.freestream()
        mu_lam = (
            laminar_viscosity(cfg.mach, cfg.reynolds) if grid.viscous else 0.0
        )
        px, py = self.px, self.py
        xyz_global = grid.xyz
        g = cfg.gas.gamma
        lattice = self

        def program(comm):
            rank = comm.rank
            cx, cy = lattice._coords(rank)
            (i0, i1), (j0, j1) = lattice._owned(rank)
            nx, ny = i1 - i0, j1 - j0
            gl = GHOSTS if cx > 0 else 0
            gr = GHOSTS if cx < px - 1 else 0
            gb = GHOSTS if cy > 0 else 0
            gt = GHOSTS if cy < py - 1 else 0
            xyz = np.ascontiguousarray(
                xyz_global[i0 - gl : i1 + gr, j0 - gb : j1 + gt]
            )
            m = metrics2d(xyz)
            q = np.broadcast_to(qinf, xyz.shape[:2] + (4,)).copy()
            own = (slice(gl, gl + nx), slice(gb, gb + ny))

            west = rank - 1 if cx > 0 else None
            east = rank + 1 if cx < px - 1 else None
            south = rank - px if cy > 0 else None
            north = rank + px if cy < py - 1 else None

            def exchange_halos():
                q_own = q[own]
                for dst, block in (
                    (west, q_own[:GHOSTS]),
                    (east, q_own[-GHOSTS:]),
                    (south, q_own[:, :GHOSTS]),
                    (north, q_own[:, -GHOSTS:]),
                ):
                    if dst is not None:
                        payload = np.ascontiguousarray(block)
                        yield from comm.send(
                            dst, TAG_HALO, payload, nbytes=payload.nbytes
                        )
                if west is not None:
                    data, _ = yield from comm.recv(west, TAG_HALO)
                    q[:gl, gb : gb + ny] = data
                if east is not None:
                    data, _ = yield from comm.recv(east, TAG_HALO)
                    q[gl + nx :, gb : gb + ny] = data
                if south is not None:
                    data, _ = yield from comm.recv(south, TAG_HALO)
                    q[gl : gl + nx, :gb] = data
                if north is not None:
                    data, _ = yield from comm.recv(north, TAG_HALO)
                    q[gl : gl + nx, gb + ny :] = data

            def pipelined_sweep(d_own, nu_padded, axis):
                """Exact distributed (I + delta(nu)) solve along ``axis``.

                ``d_own`` is the right-hand side at owned points, laid
                out (nx, ny, 4); returns the solution in the same
                layout.  Coefficients come from the padded ``nu`` so
                interface couplings across rank boundaries match the
                serial operator exactly.
                """
                if axis == 0:
                    prev, nxt = west, east
                    first, last = cx == 0, cx == px - 1
                    o0, o1 = gl, gl + nx
                    c0, c1 = gb, gb + ny
                    # (cross=j, sweep=i)
                    nu_cs = np.moveaxis(nu_padded, 0, -1)[c0:c1]
                    d = np.moveaxis(np.swapaxes(d_own, 0, 1), -1, 0)
                else:
                    prev, nxt = south, north
                    first, last = cy == 0, cy == py - 1
                    o0, o1 = gb, gb + ny
                    c0, c1 = gl, gl + nx
                    nu_cs = nu_padded[c0:c1]
                    d = np.moveaxis(d_own, -1, 0)
                # d: (4, cross, sweep)
                half = 0.5 * (nu_cs[:, :-1] + nu_cs[:, 1:])
                span = o1 - o0
                lower = np.zeros((c1 - c0, span))
                upper = np.zeros((c1 - c0, span))
                if first:
                    lower[:, 1:] = -half[:, o0 : o1 - 1]
                else:
                    lower[:, :] = -half[:, o0 - 1 : o1 - 1]
                if last:
                    upper[:, :-1] = -half[:, o0 : o1 - 1]
                else:
                    upper[:, :] = -half[:, o0:o1]
                diag = 1.0 - lower - upper
                a4 = np.broadcast_to(lower, d.shape)
                b4 = np.broadcast_to(diag, d.shape)
                c4 = np.broadcast_to(upper, d.shape)

                if first:
                    cp, dp = tridiag_forward_chunk(a4, b4, c4, d)
                else:
                    seed, _ = yield from comm.recv(prev, TAG_PIPE_FWD)
                    cp, dp = tridiag_forward_chunk(
                        a4, b4, c4, d, seed[0], seed[1]
                    )
                if not last:
                    tail = (
                        np.ascontiguousarray(cp[..., -1]),
                        np.ascontiguousarray(dp[..., -1]),
                    )
                    yield from comm.send(
                        nxt, TAG_PIPE_FWD, tail, nbytes=2 * tail[0].nbytes
                    )
                    xnext, _ = yield from comm.recv(nxt, TAG_PIPE_BWD)
                    x = tridiag_backward_chunk(cp, dp, xnext)
                else:
                    x = tridiag_backward_chunk(cp, dp)
                if not first:
                    head = np.ascontiguousarray(x[..., 0])
                    yield from comm.send(
                        prev, TAG_PIPE_BWD, head, nbytes=head.nbytes
                    )
                # Back to (nx, ny, 4).
                out = np.moveaxis(x, 0, -1)  # (cross, sweep, 4)
                if axis == 0:
                    out = np.swapaxes(out, 0, 1)
                return np.ascontiguousarray(out)

            def apply_bcs():
                for b in grid.boundaries:
                    axis = {"i": 0, "j": 1}[b.face[0]]
                    if b.face.endswith("min"):
                        on_edge = cx == 0 if axis == 0 else cy == 0
                    else:
                        on_edge = cx == px - 1 if axis == 0 else cy == py - 1
                    if not on_edge:
                        continue
                    if b.kind == "farfield":
                        bc.apply_farfield(q, b.face, qinf)
                    elif b.kind == "wall":
                        normals = bc.wall_normals(xyz, b.face)
                        bc.apply_wall(q, b.face, grid.viscous, g, normals)

            # Virtual compute charge per step (the arithmetic itself runs
            # in host numpy; the simulated clock needs the work model).
            step_flops = DEFAULT_WORK_MODEL.flow_flops(
                nx * ny, grid.viscous, grid.turbulence, 2
            )

            # No pre-step BC application: the serial solver starts from
            # raw freestream and applies BCs at the end of each step;
            # match it exactly so partition-independence is checkable.
            for _ in range(nsteps):
                yield from comm.compute(
                    flops=step_flops, points_per_node=nx * ny
                )
                yield from exchange_halos()
                r = inviscid_residual(q, m, g, cfg.k2, cfg.k4)
                if grid.viscous:
                    r -= viscous_residual(q, m, g, cfg.gas.prandtl, mu_lam)
                rhs = (-dt * r / m.jac[..., None])[own]
                lam_xi, lam_eta = spectral_radii(q, m, g)
                dq = yield from pipelined_sweep(
                    rhs, dt * lam_xi / m.jac_abs, axis=0
                )
                dq = yield from pipelined_sweep(
                    dq, dt * lam_eta / m.jac_abs, axis=1
                )
                q[own] += dq
                apply_bcs()
                sanity_check(q[own], g, where=f"rank {rank}")
            return np.ascontiguousarray(q[own])

        out = self.backend.run_spmd(self.machine, program)
        q_global = np.empty(grid.dims + (4,), dtype=float)
        for rank, block in enumerate(out.returns):
            (i0, i1), (j0, j1) = self._owned(rank)
            q_global[i0:i1, j0:j1] = block
        return q_global, out
