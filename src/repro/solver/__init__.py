"""OVERFLOW-like structured-grid compressible flow solver.

The paper's flow solutions are computed by NASA's OVERFLOW: an implicit
structured-grid Euler/Navier-Stokes code, second-order in space and
first-order in time, marched with a diagonalized approximate
factorization scheme (paper section 2.1).  This subpackage implements a
2-D counterpart with the same architecture:

* :mod:`state` — conservative variables, gas model, freestream setup;
* :mod:`flux` — central differencing of the curvilinear inviscid fluxes
  with JST-style scalar artificial dissipation;
* :mod:`viscous` — thin-layer viscous fluxes in the wall-normal
  direction;
* :mod:`turbulence` — the Baldwin-Lomax algebraic model (the model the
  paper's store-separation case uses);
* :mod:`adi` — the factored implicit update: one scalar tridiagonal
  sweep per index direction, using the spectral radius of the flux
  Jacobians (the scalar-dissipation simplification of the
  Pulliam-Chaussee diagonal scheme; see DESIGN.md);
* :mod:`solver2d` — the per-grid solver: residual, update, boundary
  conditions, hole (iblank) masking, surface force integration;
* :mod:`workmodel` — flops/point/step cost model used when the 3-D
  cases are run on the simulated machine.
"""

from repro.solver.state import (
    FlowConfig,
    GasModel,
    conservative,
    conservative3d,
    primitive,
    primitive3d,
)
from repro.solver.solver2d import Solver2D
from repro.solver.solver3d import Solver3D
from repro.solver.parallel2d import ParallelSolver2D
from repro.solver.workmodel import WorkModel, DEFAULT_WORK_MODEL

__all__ = [
    "FlowConfig",
    "GasModel",
    "conservative",
    "conservative3d",
    "primitive",
    "primitive3d",
    "Solver2D",
    "Solver3D",
    "ParallelSolver2D",
    "WorkModel",
    "DEFAULT_WORK_MODEL",
]
