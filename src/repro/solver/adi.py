"""Factored implicit update (diagonalized approximate factorization).

OVERFLOW marches with the Pulliam-Chaussee diagonal scheme: the
Beam-Warming factored operator with the flux Jacobians replaced by
their eigen-decompositions, yielding scalar tridiagonal (pentadiagonal
with 4th-order implicit dissipation) solves per direction.  Because we
run scalar JST dissipation, we use the further classical simplification
of bounding each eigenvalue by the directional spectral radius — every
conservative variable then shares one diagonally-dominant tridiagonal
system per grid line:

    (I + dt/J * delta_xi(lam_xi)) (I + dt/J * delta_eta(lam_eta)) dQ
        = dt * RHS

The factored solve is unconditionally stable for this operator, keeps
the cost structure of the real scheme (two batched tridiagonal sweeps
per step), and — as in the paper — is applied over each processor's
whole component so convergence is independent of the partition.
"""

from __future__ import annotations

import numpy as np

from repro.solver.numerics import tridiag_solve


def implicit_sweep(rhs: np.ndarray, nu: np.ndarray, axis: int) -> np.ndarray:
    """One implicit factor: solve (I + delta(nu)) x = rhs along ``axis``.

    ``nu`` is the non-dimensional implicit coefficient dt*lam/J at the
    nodes; the tridiagonal stencil is [-nu_h(k-1/2), 1 + nu_h(k-1/2) +
    nu_h(k+1/2), -nu_h(k+1/2)] with interface averages, Dirichlet-style
    at the ends (boundary rows stay explicit).
    """
    if rhs.shape[:-1] != nu.shape:
        raise ValueError(
            f"rhs {rhs.shape} inconsistent with nu {nu.shape}"
        )
    # Move the sweep axis to position -2 (before the variable axis).
    work = np.moveaxis(rhs, axis, -2)
    nu_m = np.moveaxis(nu, axis, -1)

    n = nu_m.shape[-1]
    nu_half = 0.5 * (nu_m[..., :-1] + nu_m[..., 1:])  # interfaces, n-1
    lower = np.zeros_like(nu_m)
    upper = np.zeros_like(nu_m)
    lower[..., 1:] = -nu_half
    upper[..., :-1] = -nu_half
    diag = 1.0 - lower - upper  # 1 + sum of neighbour couplings

    # Batch the 4 conservative variables into the leading dims: systems
    # run along the last axis for tridiag_solve.
    d = np.moveaxis(work, -1, 0)  # (4, ..., n)
    x = tridiag_solve(
        np.broadcast_to(lower, d.shape),
        np.broadcast_to(diag, d.shape),
        np.broadcast_to(upper, d.shape),
        d,
    )
    out = np.moveaxis(x, 0, -1)
    return np.moveaxis(out, -2, axis)


def factored_update(
    rhs: np.ndarray,
    nu_xi: np.ndarray,
    nu_eta: np.ndarray,
) -> np.ndarray:
    """Apply both factors: xi sweep then eta sweep; returns dQ."""
    dq = implicit_sweep(rhs, nu_xi, axis=0)
    dq = implicit_sweep(dq, nu_eta, axis=1)
    return dq
