"""Per-component-grid 2-D Navier-Stokes solver.

One :class:`Solver2D` owns the flow state of one component grid —
exactly the unit of work OVERFLOW assigns to a processor group.  Each
:meth:`step` performs the paper's step (1): residual evaluation,
factored implicit update, physical boundary conditions.  Intergrid
boundary values arrive from outside via :meth:`set_fringe`; hole points
(cut by the connectivity solver) are masked through :meth:`set_iblank`.

Moving grids call :meth:`move_to` with new coordinates each timestep;
metrics are recomputed (grids move rigidly, so shapes never change).
"""

from __future__ import annotations

import numpy as np

from repro.grids.gridmetrics import metrics2d
from repro.grids.structured import CurvilinearGrid
from repro.solver import boundary as bc
from repro.solver.adi import factored_update
from repro.solver.flux import inviscid_residual, spectral_radii
from repro.solver.state import FlowConfig, primitive, sanity_check
from repro.solver.turbulence import baldwin_lomax
from repro.solver.viscous import laminar_viscosity, viscous_residual

_GHOSTS = 2


class Solver2D:
    """Implicit compressible flow solver on one curvilinear grid."""

    def __init__(self, grid: CurvilinearGrid, config: FlowConfig):
        if grid.ndim != 2:
            raise ValueError("Solver2D needs a 2-D grid")
        self.grid = grid
        self.config = config
        self.i_periodic = any(
            b.kind == "periodic" and b.face in ("imin", "imax")
            for b in grid.boundaries
        )
        self._setup_geometry(grid.xyz)
        qinf = config.freestream()
        self.q = np.broadcast_to(qinf, grid.dims + (4,)).copy()
        self.qinf = qinf
        self.iblank = np.ones(grid.dims, dtype=np.int8)
        self._frozen = qinf.copy()
        self.mu_laminar = (
            laminar_viscosity(config.mach, config.reynolds)
            if grid.viscous
            else 0.0
        )
        self.step_count = 0

    # ------------------------------------------------------------------

    def _setup_geometry(self, xyz: np.ndarray) -> None:
        self.xyz = np.ascontiguousarray(xyz)
        if self.i_periodic:
            padded = bc.wrap_periodic(self.xyz, _GHOSTS)
            self.metrics = metrics2d(padded)
        else:
            self.metrics = metrics2d(self.xyz)
        self._wall_normals = {
            b.face: bc.wall_normals(self.xyz, b.face)
            for b in self.grid.boundaries
            if b.kind == "wall"
        }

    def move_to(self, xyz: np.ndarray) -> None:
        """Update node coordinates after rigid grid motion."""
        if xyz.shape != self.grid.xyz.shape:
            raise ValueError("moving a grid cannot change its shape")
        self.grid = self.grid.with_coordinates(xyz)
        self._setup_geometry(xyz)

    # ------------------------------------------------------------------

    def timestep(self) -> float:
        """CFL-limited implicit timestep from the spectral radii."""
        g = self.config.gas.gamma
        q = self._padded_q()
        lam_xi, lam_eta = spectral_radii(q, self.metrics, g)
        dt_local = (
            self.config.cfl * self.metrics.jac_abs / (lam_xi + lam_eta + 1e-300)
        )
        return float(dt_local.min())

    def step(self, dt: float | None = None) -> dict:
        """Advance one implicit timestep; returns step diagnostics."""
        cfg = self.config
        g = cfg.gas.gamma
        if dt is None:
            dt = self.timestep()

        q = self._padded_q()
        m = self.metrics
        r = inviscid_residual(q, m, g, cfg.k2, cfg.k4)
        mu_t = None
        if self.grid.viscous:
            if self.grid.turbulence:
                mu_t = baldwin_lomax(
                    q, self._padded_xyz(), m, g, self.mu_laminar
                )
            r -= viscous_residual(
                q, m, g, cfg.gas.prandtl, self.mu_laminar, mu_t
            )

        rhs = -dt * r / m.jac[..., None]  # signed J: orientation-correct
        lam_xi, lam_eta = spectral_radii(q, m, g)
        nu_xi = dt * lam_xi / m.jac_abs
        nu_eta = dt * lam_eta / m.jac_abs
        dq = factored_update(rhs, nu_xi, nu_eta)
        dq = self._unpad(dq)

        active = (self.iblank == 1)[..., None]
        self.q += np.where(active, dq, 0.0)
        # Hole points stay frozen at a benign state.
        self.q[self.iblank == 0] = self._frozen
        self._apply_physical_bcs()
        sanity_check(self.q, g, where=f"grid {self.grid.name!r}")
        self.step_count += 1
        res = float(np.sqrt(np.mean(dq[..., 0] ** 2))) / max(dt, 1e-300)
        return {"dt": dt, "residual": res}

    # ------------------------------------------------------------------

    def _padded_q(self) -> np.ndarray:
        if self.i_periodic:
            return bc.wrap_periodic(self.q, _GHOSTS)
        return self.q

    def _padded_xyz(self) -> np.ndarray:
        if self.i_periodic:
            return bc.wrap_periodic(self.xyz, _GHOSTS)
        return self.xyz

    def _unpad(self, arr: np.ndarray) -> np.ndarray:
        if self.i_periodic:
            return bc.unwrap_periodic(arr, _GHOSTS)
        return arr

    def _apply_physical_bcs(self) -> None:
        g = self.config.gas.gamma
        for b in self.grid.boundaries:
            if b.kind == "wall":
                bc.apply_wall(
                    self.q, b.face, self.grid.viscous, g,
                    normals=self._wall_normals[b.face],
                )
            elif b.kind == "farfield":
                bc.apply_farfield(self.q, b.face, self.qinf)
            # overset faces are set externally; periodic handled below
        if self.i_periodic:
            bc.apply_periodic_seam(self.q)

    # ------------------------------------------------------------------
    # driver interface
    # ------------------------------------------------------------------

    def set_fringe(self, flat_indices: np.ndarray, values: np.ndarray) -> None:
        """Inject interpolated intergrid boundary values (step 3 of the
        paper's loop feeding step 1 of the next)."""
        flat_indices = np.asarray(flat_indices, dtype=np.int64)
        q_flat = self.q.reshape(-1, 4)
        q_flat[flat_indices] = values

    def set_iblank(self, iblank: np.ndarray) -> None:
        """Install a hole mask (1 = active, 0 = hole)."""
        iblank = np.asarray(iblank, dtype=np.int8)
        if iblank.shape != self.grid.dims:
            raise ValueError("iblank shape mismatch")
        self.iblank = iblank

    # ------------------------------------------------------------------

    def surface_forces(self, ref_point=(0.25, 0.0)) -> dict:
        """Integrate wall pressure into force and pitching moment.

        Returns physical-axis fx, fy and moment about ``ref_point``
        (positive counter-clockwise).  Requires a jmin wall.
        """
        if not any(
            b.face == "jmin" and b.kind == "wall" for b in self.grid.boundaries
        ):
            raise ValueError(f"grid {self.grid.name!r} has no jmin wall")
        g = self.config.gas.gamma
        _, _, _, p = primitive(self.q, g)
        wall_xy = self.xyz[:, 0]
        p_wall = p[:, 0]
        seg = wall_xy[1:] - wall_xy[:-1]
        p_mid = 0.5 * (p_wall[1:] + p_wall[:-1])
        mid = 0.5 * (wall_xy[1:] + wall_xy[:-1])
        # Rotate tangent by -90deg, then orient into the body: the +j
        # direction points into the fluid, so the into-body normal has
        # negative projection onto (first-off-wall - wall).
        normal = np.stack([seg[:, 1], -seg[:, 0]], axis=-1)
        off = 0.5 * (self.xyz[1:, 1] + self.xyz[:-1, 1]) - mid
        flip = np.sign(np.einsum("ij,ij->i", normal, off))
        normal *= -np.where(flip == 0, 1.0, flip)[:, None]
        df = p_mid[:, None] * normal
        force = df.sum(axis=0)
        rel = mid - np.asarray(ref_point, dtype=float)
        moment = float(np.sum(rel[:, 0] * df[:, 1] - rel[:, 1] * df[:, 0]))
        return {"fx": float(force[0]), "fy": float(force[1]), "moment": moment}

    def pressure_coefficient(self) -> np.ndarray:
        """Wall Cp = (p - p_inf) / (0.5 rho_inf V_inf^2) along the jmin
        wall (requires one).  The stagnation value is ~1 + O(M^2)."""
        if not any(
            b.face == "jmin" and b.kind == "wall" for b in self.grid.boundaries
        ):
            raise ValueError(f"grid {self.grid.name!r} has no jmin wall")
        g = self.config.gas.gamma
        _, _, _, p = primitive(self.q, g)
        p_inf = 1.0 / g
        q_inf = 0.5 * self.config.mach**2  # rho_inf = 1, V_inf = M
        return (p[:, 0] - p_inf) / max(q_inf, 1e-300)

    def force_coefficients(self, ref_point=(0.25, 0.0), chord: float = 1.0) -> dict:
        """Lift/drag/moment coefficients in the wind frame (normalised
        by 0.5 rho_inf V_inf^2 * chord)."""
        f = self.surface_forces(ref_point)
        q_inf = 0.5 * self.config.mach**2 * chord
        a = self.config.alpha
        ca, sa = np.cos(a), np.sin(a)
        drag = f["fx"] * ca + f["fy"] * sa
        lift = -f["fx"] * sa + f["fy"] * ca
        return {
            "cl": lift / max(q_inf, 1e-300),
            "cd": drag / max(q_inf, 1e-300),
            "cm": f["moment"] / max(q_inf * chord, 1e-300),
        }

    def residual_norm(self) -> float:
        """Instantaneous L2 of the steady residual (for convergence
        monitoring in examples)."""
        g = self.config.gas.gamma
        r = inviscid_residual(
            self._padded_q(), self.metrics, g, self.config.k2, self.config.k4
        )
        r = self._unpad(r)
        return float(np.sqrt(np.mean(r**2)))
