"""Flop/byte cost model for charging simulated machine time.

The performance benchmarks (Tables 1-6) run the paper's *parallel
algorithms* for real on the simulated machine but charge the *flow
solver arithmetic* through this model instead of executing a 1M-point
3-D Navier-Stokes solve in Python per partition per timestep.

Calibration: the paper's own measurements give the per-point cost.
Table 1/2 (airfoil, 12 nodes): 18.6 Mflop/s/node x 0.285 s/step x 12
nodes / 63.6K points ~ 1000 flops/point/step including connectivity,
so the 2-D viscous flow solve is ~900 flops/point/step.  3-D adds a
third sweep, a third flux direction, and more metric terms: roughly
1.8x per point.  The defaults below follow that calibration; every
constant can be overridden for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class WorkModel:
    """Cost constants for the flow, motion and connectivity phases."""

    # --- flow solver (per gridpoint per timestep) ---
    euler_flops_per_point: float = 800.0
    viscous_extra_flops: float = 260.0
    turbulence_extra_flops: float = 150.0
    ndim3_factor: float = 1.9          # 3-D / 2-D per-point cost ratio
    halo_exchanges_per_step: int = 2   # one per factored sweep direction
    bytes_per_point: int = 32          # 4 conservative vars, float64

    # --- grid motion (per gridpoint per timestep) ---
    motion_flops_per_point: float = 40.0  # rigid transform + metric update

    # --- connectivity (donor search) ---
    # Calibrated against the paper's own tables: Table 1 implies about
    # 5000 flops per IGBP per step for the 2-D airfoil (14% of 0.285 s
    # on 12 nodes over 2816 IGBPs) and Table 4 about 9000 flops/IGBP in
    # 3-D.  A pure Newton walk is a fraction of that; the rest is IGBP
    # list formation/tagging on the requester and stencil-quality
    # checks, coefficient computation and packing on the donor.
    search_step_flops: float = 400.0   # one stencil-walk/Newton iteration
    igbp_request_flops: float = 500.0  # requester-side cost per point sent
    igbp_service_flops: float = 1200.0  # donor-side fixed cost per point
    igbp_request_bytes: int = 40       # point coords + ids in a search msg
    donor_reply_bytes: int = 48        # donor cell + interpolation weights
    interp_flops_per_igbp: float = 30.0  # evaluating the interpolant
    holecut_flops_per_point: float = 60.0  # inside/outside tests per point

    # ------------------------------------------------------------------

    def flow_flops_per_point(
        self, viscous: bool, turbulence: bool, ndim: int
    ) -> float:
        """Per-point per-step flow-solver arithmetic."""
        flops = self.euler_flops_per_point
        if viscous:
            flops += self.viscous_extra_flops
        if turbulence:
            flops += self.turbulence_extra_flops
        if ndim == 3:
            flops *= self.ndim3_factor
        return flops

    def flow_flops(
        self, npoints: int, viscous: bool, turbulence: bool, ndim: int
    ) -> float:
        """Flow-solver flops for one subdomain for one timestep."""
        return npoints * self.flow_flops_per_point(viscous, turbulence, ndim)

    def halo_bytes(self, halo_points: int) -> int:
        """Bytes exchanged per halo face-swap round."""
        return halo_points * self.bytes_per_point

    def motion_flops(self, npoints: int) -> float:
        return npoints * self.motion_flops_per_point

    def search_flops(self, steps: int) -> float:
        """Donor-search arithmetic for a given number of walk steps."""
        return steps * self.search_step_flops

    def with_overrides(self, **kwargs) -> "WorkModel":
        return replace(self, **kwargs)


DEFAULT_WORK_MODEL = WorkModel()
