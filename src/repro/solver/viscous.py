"""Thin-layer viscous fluxes.

Body-fitted grids cluster tightly in the wall-normal (eta) direction,
where viscous gradients dominate; the thin-layer approximation keeps
only eta-derivatives in the shear terms — the standard OVERFLOW-era
treatment.  The viscous flux at the j+1/2 interface is

    S = mu_total * phi * [0, du, dv, u*du + v*dv + kappa * d(c^2)]

with phi = (eta_x^2 + eta_y^2) * J the grid factor, mu_total the sum of
laminar and eddy viscosity, and kappa = 1/(Pr (gamma-1)) the conduction
coefficient; the viscous residual is the eta-difference of S.

Nondimensionalisation: with rho_inf = c_inf = 1 and Reynolds number
based on the freestream speed (M * c_inf), the laminar viscosity is
mu = M / Re.
"""

from __future__ import annotations

import numpy as np

from repro.grids.gridmetrics import Metrics2D
from repro.solver.state import primitive


def laminar_viscosity(mach: float, reynolds: float) -> float:
    """Constant nondimensional laminar viscosity mu = M / Re."""
    if reynolds <= 0:
        raise ValueError(f"Reynolds number must be positive, got {reynolds}")
    return mach / reynolds


def viscous_residual(
    q: np.ndarray,
    m: Metrics2D,
    gamma: float,
    prandtl: float,
    mu_laminar: float,
    mu_turbulent: np.ndarray | None = None,
) -> np.ndarray:
    """Thin-layer viscous contribution V (so dQ/dt = (-R + V) / J).

    ``mu_turbulent`` is a node field of eddy viscosity (from
    Baldwin-Lomax) or None for laminar flow.
    """
    rho, u, v, p = primitive(q, gamma)
    c2 = gamma * p / rho  # squared sound speed ~ temperature
    mu = np.full_like(rho, mu_laminar)
    if mu_turbulent is not None:
        mu = mu + mu_turbulent
    phi = (m.eta_x**2 + m.eta_y**2) * m.jac
    kappa = 1.0 / (prandtl * (gamma - 1.0))

    # Interface (j+1/2) quantities.
    mu_h = 0.5 * (mu[:, :-1] + mu[:, 1:])
    phi_h = 0.5 * (phi[:, :-1] + phi[:, 1:])
    du = u[:, 1:] - u[:, :-1]
    dv = v[:, 1:] - v[:, :-1]
    dc2 = c2[:, 1:] - c2[:, :-1]
    u_h = 0.5 * (u[:, :-1] + u[:, 1:])
    v_h = 0.5 * (v[:, :-1] + v[:, 1:])

    coef = mu_h * phi_h
    s = np.zeros(q.shape[:-1] + (4,), dtype=float)[:, :-1]
    s[..., 1] = coef * du
    s[..., 2] = coef * dv
    s[..., 3] = coef * (u_h * du + v_h * dv + kappa * dc2)

    out = np.zeros_like(q)
    out[:, 1:-1] = s[:, 1:] - s[:, :-1]
    return out
