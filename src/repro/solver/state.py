"""Conservative flow state and the perfect-gas model.

State arrays are node-centered with shape (ni, nj, 4) holding
Q = [rho, rho*u, rho*v, e] nondimensionalised by freestream density and
sound speed (the OVERFLOW convention): rho_inf = 1, c_inf = 1, so the
freestream speed is the Mach number and freestream pressure is 1/gamma.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GasModel:
    """Calorically perfect gas."""

    gamma: float = 1.4
    prandtl: float = 0.72

    def pressure(self, q: np.ndarray) -> np.ndarray:
        """Static pressure from conservative variables."""
        rho = q[..., 0]
        ke = 0.5 * (q[..., 1] ** 2 + q[..., 2] ** 2) / rho
        return (self.gamma - 1.0) * (q[..., 3] - ke)

    def sound_speed(self, q: np.ndarray) -> np.ndarray:
        return np.sqrt(self.gamma * self.pressure(q) / q[..., 0])

    def temperature(self, q: np.ndarray) -> np.ndarray:
        """T ~ gamma * p / rho with the c_inf nondimensionalisation
        (freestream T = 1)."""
        return self.gamma * self.pressure(q) / q[..., 0]


@dataclass(frozen=True)
class FlowConfig:
    """Freestream and integration settings for one case.

    ``mach``/``alpha`` set the freestream; ``reynolds`` is per unit
    chord (ignored for inviscid grids); ``cfl`` sizes the implicit
    timestep; dissipation coefficients follow JST conventions.
    """

    mach: float = 0.8
    alpha: float = 0.0          # angle of attack, radians
    reynolds: float = 1.0e6
    gas: GasModel = GasModel()
    cfl: float = 5.0
    k2: float = 0.5             # 2nd-difference (shock) dissipation
    k4: float = 0.016           # 4th-difference (background) dissipation

    def freestream(self) -> np.ndarray:
        """Freestream conservative state (rho_inf=1, c_inf=1)."""
        g = self.gas.gamma
        rho = 1.0
        u = self.mach * np.cos(self.alpha)
        v = self.mach * np.sin(self.alpha)
        p = 1.0 / g
        e = p / (g - 1.0) + 0.5 * rho * (u * u + v * v)
        return np.array([rho, rho * u, rho * v, e])

    def freestream3d(self) -> np.ndarray:
        """3-D freestream: alpha pitches the velocity in the x-y plane."""
        g = self.gas.gamma
        u = self.mach * np.cos(self.alpha)
        v = self.mach * np.sin(self.alpha)
        p = 1.0 / g
        e = p / (g - 1.0) + 0.5 * (u * u + v * v)
        return np.array([1.0, u, v, 0.0, e])


def conservative(rho, u, v, p, gamma: float = 1.4) -> np.ndarray:
    """Pack primitives into Q; broadcasts over array inputs."""
    rho, u, v, p = np.broadcast_arrays(
        np.asarray(rho, float), np.asarray(u, float),
        np.asarray(v, float), np.asarray(p, float),
    )
    e = p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v)
    return np.stack([rho, rho * u, rho * v, e], axis=-1)


def primitive(q: np.ndarray, gamma: float = 1.4):
    """Unpack Q into (rho, u, v, p)."""
    rho = q[..., 0]
    u = q[..., 1] / rho
    v = q[..., 2] / rho
    p = (gamma - 1.0) * (q[..., 3] - 0.5 * rho * (u * u + v * v))
    return rho, u, v, p


def conservative3d(rho, u, v, w, p, gamma: float = 1.4) -> np.ndarray:
    """Pack 3-D primitives into Q = [rho, rho u, rho v, rho w, e]."""
    rho, u, v, w, p = np.broadcast_arrays(
        np.asarray(rho, float), np.asarray(u, float), np.asarray(v, float),
        np.asarray(w, float), np.asarray(p, float),
    )
    e = p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v + w * w)
    return np.stack([rho, rho * u, rho * v, rho * w, e], axis=-1)


def primitive3d(q: np.ndarray, gamma: float = 1.4):
    """Unpack 3-D Q into (rho, u, v, w, p)."""
    rho = q[..., 0]
    u = q[..., 1] / rho
    v = q[..., 2] / rho
    w = q[..., 3] / rho
    ke = 0.5 * rho * (u * u + v * v + w * w)
    p = (gamma - 1.0) * (q[..., 4] - ke)
    return rho, u, v, w, p


def sanity_check(q: np.ndarray, gamma: float = 1.4, where: str = "") -> None:
    """Raise ``FloatingPointError`` on non-physical states — a solver
    divergence should fail loudly, not propagate NaNs.  Handles both
    the 2-D (4-variable) and 3-D (5-variable) state layouts."""
    if not np.all(np.isfinite(q)):
        raise FloatingPointError(f"non-finite state {where}")
    if q.shape[-1] == 5:
        rho, _, _, _, p = primitive3d(q, gamma)
    else:
        rho, _, _, p = primitive(q, gamma)
    if rho.min() <= 0.0:
        raise FloatingPointError(f"non-positive density {where}")
    if p.min() <= 0.0:
        raise FloatingPointError(f"non-positive pressure {where}")
