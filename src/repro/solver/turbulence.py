"""Baldwin-Lomax algebraic turbulence model.

The model the paper's finned-store case runs ("Viscous terms are active
in all curvilinear grids with a Baldwin-Lomax turbulence model",
section 4.3).  It is a two-layer algebraic eddy-viscosity model
evaluated independently along each wall-normal grid line:

* inner layer:  mu_t = rho * (kappa * y * D)^2 * |omega|,
  D = 1 - exp(-y+/A+) the Van Driest damping;
* outer layer:  mu_t = K * Ccp * rho * F_wake * F_kleb(y),
  F_wake from the peak of F(y) = y * |omega| * D along the line;
* the profile switches from inner to outer at the first crossover.

Everything is vectorised across the i (around-body) index: each i is an
independent wall-normal line starting at j=0 (the wall).
"""

from __future__ import annotations

import numpy as np

from repro.grids.gridmetrics import Metrics2D
from repro.solver.numerics import diff_central
from repro.solver.state import primitive

# Standard Baldwin-Lomax constants.
KAPPA = 0.4
A_PLUS = 26.0
C_CP = 1.6
C_KLEB = 0.3
C_WK = 0.25
K_CLAUSER = 0.0168


def vorticity(q: np.ndarray, m: Metrics2D, gamma: float) -> np.ndarray:
    """|omega| = |v_x - u_y| on the nodes via chain-rule metrics."""
    _, u, v, _ = primitive(q, gamma)
    u_xi = diff_central(u, 0)
    u_eta = diff_central(u, 1)
    v_xi = diff_central(v, 0)
    v_eta = diff_central(v, 1)
    v_x = v_xi * m.xi_x + v_eta * m.eta_x
    u_y = u_xi * m.xi_y + u_eta * m.eta_y
    return np.abs(v_x - u_y)


def wall_distance(xyz: np.ndarray) -> np.ndarray:
    """Arc-length distance from the j=0 wall along each j line."""
    seg = np.linalg.norm(np.diff(xyz, axis=1), axis=-1)
    y = np.zeros(xyz.shape[:2], dtype=float)
    np.cumsum(seg, axis=1, out=y[:, 1:])
    return y


def baldwin_lomax(
    q: np.ndarray,
    xyz: np.ndarray,
    m: Metrics2D,
    gamma: float,
    mu_laminar: float,
) -> np.ndarray:
    """Eddy viscosity field mu_t (zero where the model is inactive)."""
    rho, u, v, _ = primitive(q, gamma)
    om = vorticity(q, m, gamma)
    y = wall_distance(xyz)

    # Wall quantities per line (j = 0).
    rho_w = rho[:, 0]
    om_w = np.maximum(om[:, 0], 1e-12)
    tau_w = mu_laminar * om_w
    u_tau = np.sqrt(tau_w / rho_w)
    yplus = rho_w[:, None] * u_tau[:, None] * y / mu_laminar
    damp = 1.0 - np.exp(-np.minimum(yplus, 200.0) / A_PLUS)

    # Inner layer.
    lmix = KAPPA * y * damp
    mut_inner = rho * lmix**2 * om

    # Outer layer: peak of F(y) = y |omega| D per line.
    F = y * om * damp
    jmax_idx = np.argmax(F, axis=1)
    lines = np.arange(F.shape[0])
    f_max = np.maximum(F[lines, jmax_idx], 1e-12)
    y_max = np.maximum(y[lines, jmax_idx], 1e-12)
    speed = np.sqrt(u * u + v * v)
    u_dif = speed.max(axis=1) - speed.min(axis=1)
    f_wake = np.minimum(
        y_max * f_max, C_WK * y_max * u_dif**2 / f_max
    )
    with np.errstate(over="ignore"):
        f_kleb = 1.0 / (
            1.0 + 5.5 * np.minimum((C_KLEB * y / y_max[:, None]), 1e3) ** 6
        )
    mut_outer = K_CLAUSER * C_CP * rho * f_wake[:, None] * f_kleb

    # Two-layer composite: inner until first crossover, outer after.
    use_outer = mut_inner > mut_outer
    crossed = np.cumsum(use_outer, axis=1) > 0
    mut = np.where(crossed, mut_outer, mut_inner)
    return np.maximum(mut, 0.0)
