"""Inviscid curvilinear fluxes: central differences + JST dissipation.

With J the grid Jacobian and forward metric derivatives (x_xi, y_xi,
x_eta, y_eta), the strong-conservation transformed Euler equations are

    d(J Q)/dt + dFhat/dxi + dGhat/deta = 0,
    Fhat =  y_eta * F - x_eta * G,
    Ghat = -y_xi  * F + x_xi  * G,

where F, G are the physical flux vectors.  Because J*xi_x = y_eta etc.,
the flux coefficients are exactly the forward metric derivatives — and
central-differenced metrics commute discretely, so a uniform freestream
is preserved to round-off (tested).

Artificial dissipation is the Jameson-Schmidt-Turkel blend of second
and fourth differences scaled by the directional spectral radius, with
a pressure-switch that turns on the second-difference term at shocks.
"""

from __future__ import annotations

import numpy as np

from repro.grids.gridmetrics import Metrics2D
from repro.solver.numerics import diff_central
from repro.solver.state import primitive


def physical_fluxes(q: np.ndarray, gamma: float):
    """Return (F, G) physical flux arrays of shape (ni, nj, 4)."""
    rho, u, v, p = primitive(q, gamma)
    e = q[..., 3]
    F = np.stack(
        [rho * u, rho * u * u + p, rho * u * v, (e + p) * u], axis=-1
    )
    G = np.stack(
        [rho * v, rho * u * v, rho * v * v + p, (e + p) * v], axis=-1
    )
    return F, G


def spectral_radii(q: np.ndarray, m: Metrics2D, gamma: float):
    """Directional spectral radii lam_xi, lam_eta (J-scaled).

    lam_xi = |Uhat| + c * sqrt(y_eta^2 + x_eta^2) with
    Uhat = y_eta*u - x_eta*v the J-scaled contravariant velocity.
    """
    rho, u, v, p = primitive(q, gamma)
    c = np.sqrt(gamma * p / rho)
    y_eta = m.xi_x * m.jac
    x_eta = -m.xi_y * m.jac
    y_xi = -m.eta_x * m.jac
    x_xi = m.eta_y * m.jac
    uhat = y_eta * u - x_eta * v
    vhat = -y_xi * u + x_xi * v
    lam_xi = np.abs(uhat) + c * np.sqrt(y_eta**2 + x_eta**2)
    lam_eta = np.abs(vhat) + c * np.sqrt(y_xi**2 + x_xi**2)
    return lam_xi, lam_eta


def _pressure_switch(p: np.ndarray, axis: int) -> np.ndarray:
    """JST shock sensor: normalised second difference of pressure."""
    num = np.zeros_like(p)
    den = np.ones_like(p)
    sl = [slice(None)] * p.ndim

    def at(s):
        out = list(sl)
        out[axis] = s
        return tuple(out)

    num[at(slice(1, -1))] = np.abs(
        p[at(slice(2, None))] - 2 * p[at(slice(1, -1))] + p[at(slice(0, -2))]
    )
    den[at(slice(1, -1))] = (
        p[at(slice(2, None))] + 2 * p[at(slice(1, -1))] + p[at(slice(0, -2))]
    )
    return num / den


def dissipation(
    q: np.ndarray,
    p: np.ndarray,
    lam: np.ndarray,
    axis: int,
    k2: float,
    k4: float,
) -> np.ndarray:
    """JST dissipation term D along ``axis`` (adds to the residual with
    a minus sign: residual = flux differences - D)."""
    nu = _pressure_switch(p, axis)

    def take(arr, s):
        sl = [slice(None)] * arr.ndim
        sl[axis] = s
        return arr[tuple(sl)]

    n = q.shape[axis]
    if n < 4:
        return np.zeros_like(q)

    # Interface values between k and k+1 (length n-1 along axis).
    lam_half = 0.5 * (take(lam, slice(0, -1)) + take(lam, slice(1, None)))
    nu_half = np.maximum(take(nu, slice(0, -1)), take(nu, slice(1, None)))
    eps2 = k2 * nu_half
    eps4 = np.maximum(0.0, k4 - eps2)

    dq = take(q, slice(1, None)) - take(q, slice(0, -1))  # first differences
    # Third differences centered at interfaces (zero at end interfaces).
    d3 = np.zeros_like(dq)
    inner = [slice(None)] * q.ndim
    inner[axis] = slice(1, -1)
    d3[tuple(inner)] = (
        take(dq, slice(2, None)) - 2 * take(dq, slice(1, -1)) + take(dq, slice(0, -2))
    )
    flux = lam_half[..., None] * (eps2[..., None] * dq - eps4[..., None] * d3)

    out = np.zeros_like(q)
    body = [slice(None)] * q.ndim
    body[axis] = slice(1, -1)
    out[tuple(body)] = take(flux, slice(1, None)) - take(flux, slice(0, -1))
    return out


def inviscid_residual(
    q: np.ndarray, m: Metrics2D, gamma: float, k2: float, k4: float
) -> np.ndarray:
    """R = dFhat/dxi + dGhat/deta - D_xi - D_eta  (so dQ/dt = -R / J)."""
    F, G = physical_fluxes(q, gamma)
    y_eta = (m.xi_x * m.jac)[..., None]
    x_eta = (-m.xi_y * m.jac)[..., None]
    y_xi = (-m.eta_x * m.jac)[..., None]
    x_xi = (m.eta_y * m.jac)[..., None]
    fhat = y_eta * F - x_eta * G
    ghat = -y_xi * F + x_xi * G
    r = diff_central(fhat, axis=0) + diff_central(ghat, axis=1)
    _, _, _, p = primitive(q, gamma)
    lam_xi, lam_eta = spectral_radii(q, m, gamma)
    r -= dissipation(q, p, lam_xi, axis=0, k2=k2, k4=k4)
    r -= dissipation(q, p, lam_eta, axis=1, k2=k2, k4=k4)
    return r
