"""Thin client for the ``repro serve`` daemon.

:class:`ServeClient` opens one unix-socket connection and speaks the
line-delimited JSON protocol synchronously: every method sends one
request frame and blocks for its response.  Multiple clients (or
threads each holding their own client) talk to the daemon
concurrently; one client instance is **not** thread-safe — it owns a
single request/response stream.

Errors are typed, never raw frames:

* :class:`ServeConnectError` — no daemon at the socket path (a clear
  actionable message, not a traceback);
* :class:`ServeProtocolError` — the server rejected a frame;
* :class:`JobFailedError` — the job itself failed; carries the typed
  ``kind/message/detail`` and, for ``RankFailure`` jobs, reconstructs a
  real :class:`repro.machine.faults.RankFailure` on ``.rank_failure``.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.serve.jobs import JobSpec
from repro.serve.protocol import (
    MAX_FRAME,
    check_socket_path,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeConnectError",
    "ServeProtocolError",
    "JobFailedError",
]


class ServeError(RuntimeError):
    """Base class for client-side serve errors."""


class ServeConnectError(ServeError):
    """Could not reach a daemon at the socket path."""


class ServeProtocolError(ServeError):
    """The server answered with a protocol-level error."""


class JobFailedError(ServeError):
    """The submitted job failed; carries the server's typed error."""

    def __init__(self, kind: str, message: str, detail: dict | None = None):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.detail = detail or {}

    @property
    def rank_failure(self):
        """A reconstructed :class:`RankFailure` when the job died of
        one, else ``None``."""
        if self.kind != "RankFailure" or not self.detail:
            return None
        from repro.machine.faults import RankFailure

        d = self.detail
        return RankFailure(
            failed={int(r): t for r, t in d.get("failed", {}).items()},
            time=d.get("time", 0.0),
            blocked=[tuple(b) for b in d.get("blocked", [])],
            completed=list(d.get("completed", [])),
            nranks=d.get("nranks", 0),
        )


class ServeClient:
    """One synchronous connection to a ``repro serve`` daemon."""

    def __init__(self, socket_path: str, timeout: float | None = 60.0):
        # A path over the sockaddr_un limit raises the typed
        # SocketPathTooLong (naming the path) before any connect.
        self.socket_path = check_socket_path(str(socket_path))
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(self.socket_path)
        except FileNotFoundError:
            self._sock.close()
            raise ServeConnectError(
                f"no server socket at {self.socket_path} — "
                f"is `repro serve` running?"
            ) from None
        except OSError as exc:
            self._sock.close()
            raise ServeConnectError(
                f"could not connect to {self.socket_path}: {exc} — "
                f"is `repro serve` running?"
            ) from None
        self._rfile = self._sock.makefile("rb")

    # ------------------------------------------------------------------

    def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        req = {"op": op, **fields}
        try:
            self._sock.sendall(encode_frame(req))
            line = self._rfile.readline(MAX_FRAME + 1)
        except OSError as exc:
            raise ServeConnectError(
                f"connection to {self.socket_path} lost: {exc}"
            ) from None
        if not line:
            raise ServeConnectError(
                f"server at {self.socket_path} closed the connection"
            )
        return decode_frame(line)

    @staticmethod
    def _raise_for(resp: dict[str, Any]) -> dict[str, Any]:
        if resp.get("ok"):
            return resp
        err = resp.get("error") or {}
        kind = err.get("kind", "ServeError")
        message = err.get("message", "unknown server error")
        detail = err.get("detail") or {}
        if kind in ("ProtocolError", "FrameTooLarge", "JobSpecError"):
            raise ServeProtocolError(f"{kind}: {message}")
        raise JobFailedError(kind, message, detail)

    # -------------------------------------------------------- operations

    def ping(self) -> dict[str, Any]:
        return self._raise_for(self._call("ping"))

    def submit(
        self,
        spec: JobSpec | dict,
        cache: bool = True,
        coalesce: bool = True,
    ) -> dict[str, Any]:
        """Enqueue a job (or get its cached/coalesced record).

        Returns the job record frame immediately; use :meth:`wait` for
        the result, or :meth:`run` for submit-and-wait in one call.
        """
        wire = spec.to_wire() if isinstance(spec, JobSpec) else spec
        return self._raise_for(
            self._call("submit", job=wire, cache=cache, coalesce=coalesce)
        )

    def wait(
        self,
        job_id: int | None = None,
        sha: str | None = None,
        timeout: float | None = None,
        payload: bool = True,
    ) -> dict[str, Any]:
        """Block until the job finishes; raises on job failure."""
        fields: dict[str, Any] = {"payload": payload}
        if job_id is not None:
            fields["id"] = job_id
        if sha is not None:
            fields["sha"] = sha
        if timeout is not None:
            fields["timeout"] = timeout
        resp = self._raise_for(self._call("wait", **fields))
        if resp.get("timed_out"):
            raise ServeError(
                f"timed out after {timeout}s waiting for job "
                f"{job_id if job_id is not None else sha}"
            )
        return resp

    def run(
        self,
        spec: JobSpec | dict,
        cache: bool = True,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Submit and wait; the one-call path most users want.

        The returned frame's ``payload`` field holds the canonical
        result text verbatim (``payload.encode()`` gives the exact
        bytes a direct :func:`repro.serve.jobs.run_job_bytes` returns
        for deterministic jobs).
        """
        rec = self.submit(spec, cache=cache)
        if rec.get("state") == "done":
            return rec
        return self.wait(job_id=rec["id"], timeout=timeout)

    def result(
        self, job_id: int | None = None, sha: str | None = None,
        payload: bool = True,
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {"payload": payload}
        if job_id is not None:
            fields["id"] = job_id
        if sha is not None:
            fields["sha"] = sha
        return self._raise_for(self._call("result", **fields))

    def jobs(self) -> list[dict[str, Any]]:
        return self._raise_for(self._call("jobs"))["jobs"]

    def stats(self) -> dict[str, Any]:
        return self._raise_for(self._call("stats"))

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self._raise_for(self._call("shutdown"))

    # ------------------------------------------------------------------

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:  # pragma: no cover
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
